//! A tour of the paper's three dichotomy tables: classify a gallery of
//! queries, dispatch each to its solver, and print which algorithm ran.
//!
//! ```text
//! cargo run --example dichotomy_tour
//! ```

use dap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Print the paper's tables verbatim.
    for problem in [
        Problem::ViewSideEffect,
        Problem::SourceSideEffect,
        Problem::AnnotationPlacement,
    ] {
        println!("— {problem} —");
        println!("{}", format_paper_table(problem));
    }

    let db = parse_database(
        "relation R(A, B) { (a1, b1), (a1, b2), (a2, b1) }
         relation S(B, C) { (b1, c1), (b2, c1), (b2, c2) }
         relation T(C, D) { (c1, d1), (c2, d2) }
         relation R2(A, B) { (a3, b1), (a1, b1) }",
    )?;

    let gallery: Vec<(&str, &str)> = vec![
        ("SP", "project(select(scan R, A = 'a1'), [B])"),
        ("SPU", "union(project(scan R, [A, B]), scan R2)"),
        ("SJ", "select(join(scan R, scan S), A = 'a1')"),
        (
            "SJU (JU)",
            "union(join(scan R, scan S), join(scan R2, scan S))",
        ),
        ("PJ", "project(join(scan R, scan S), [A, C])"),
        (
            "PJ chain ×3",
            "project(join(join(scan R, scan S), scan T), [A, D])",
        ),
        (
            "PJU",
            "union(project(join(scan R, scan S), [A, B]), scan R2)",
        ),
    ];

    println!(
        "{:14} {:7} {:>6} {:>6} {:>6}  solver used for source-minimal deletion",
        "query", "class", "view", "src", "annot"
    );
    for (label, text) in &gallery {
        let q = parse_query(text)?;
        let fp = OpFootprint::of(&q);
        let view = eval(&q, &db)?;
        let target = view.tuples[0].clone();
        let (sol, solver) = delete_min_source(&q, &db, &target)?;
        println!(
            "{:14} {:7} {:>6} {:>6} {:>6}  {} → |T|={}",
            label,
            fp.letters(),
            complexity(Problem::ViewSideEffect, &fp).to_string(),
            complexity(Problem::SourceSideEffect, &fp).to_string(),
            complexity(Problem::AnnotationPlacement, &fp).to_string(),
            solver,
            sol.source_cost(),
        );
    }

    // The annotation side of the dichotomy flips for JU: hard for deletion,
    // easy for placement.
    let ju = parse_query("union(join(scan R, scan S), join(scan R2, scan S))")?;
    let fp = OpFootprint::of(&ju);
    assert_eq!(complexity(Problem::ViewSideEffect, &fp), Complexity::NpHard);
    assert_eq!(
        complexity(Problem::AnnotationPlacement, &fp),
        Complexity::PolyTime
    );
    let view = eval(&ju, &db)?;
    let loc = ViewLoc::new(view.tuples[0].clone(), view.schema.attrs()[0].clone());
    let (placement, solver) = place_annotation(&ju, &db, &loc)?;
    println!("\nJU query placement [{solver}]: {placement}");
    println!("\nJU is the class where the two problems part ways: NP-hard deletion, poly-time annotation.");
    Ok(())
}
