//! The Section 2.1.1 scenario at scale: `Π_{user,file}(UserGroup ⋈
//! GroupFile)` and the question "can we revoke bob's access to a file
//! without collateral damage?"
//!
//! Demonstrates why the view side-effect problem is hard for PJ queries:
//! an output tuple can have many witnesses (projection) and each witness
//! many destructions (join), and the choices interact across tuples.
//!
//! ```text
//! cargo run --example usergroup_files
//! ```

use dap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slightly larger ACL world: four users, four groups, five files.
    let db = parse_database(
        "relation UserGroup(user, grp) {
             (ann, staff), (ann, admins),
             (bob, staff), (bob, dev),
             (cyd, dev), (cyd, interns),
             (dee, interns)
         }
         relation GroupFile(grp, file) {
             (staff, handbook), (staff, payroll),
             (admins, payroll), (admins, secrets),
             (dev, compiler), (dev, handbook),
             (interns, handbook)
         }",
    )?;
    let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])")?;
    let view = eval(&q, &db)?;
    println!(
        "Access view ({} rows):\n{}",
        view.len(),
        view.to_table_string("CanRead")
    );

    // For every (user, file) pair, can it be revoked side-effect-free, and
    // at what minimum cost otherwise?
    println!("revocation analysis:");
    println!(
        "{:22}  {:>9}  {:>12}  deleted memberships/shares",
        "view tuple", "witnesses", "side effects"
    );
    for t in view.tuples.clone() {
        let witnesses = minimal_witnesses(&q, &db, &t)?;
        let (sol, _) = delete_min_view_side_effects(&q, &db, &t)?;
        let pretty: Vec<String> = sol
            .deletions
            .iter()
            .map(|tid| format!("{}", db.tuple(tid).expect("valid")))
            .collect();
        println!(
            "{:22}  {:>9}  {:>12}  {}",
            t.to_string(),
            witnesses.len(),
            sol.view_cost(),
            pretty.join(" ")
        );
    }

    // Focus: revoking (bob, handbook) — bob reaches the handbook through
    // staff, dev; the handbook is also shared with interns.
    let t = tuple(["bob", "handbook"]);
    let (view_min, _) = delete_min_view_side_effects(&q, &db, &t)?;
    let (src_min, _) = delete_min_source(&q, &db, &t)?;
    println!("\nrevoking (bob, handbook):");
    println!(
        "  min view side effects: {} (deleting {} source tuples)",
        view_min.view_cost(),
        view_min.source_cost()
    );
    for dead in &view_min.view_side_effects {
        println!("    collateral: {dead}");
    }
    println!(
        "  min source deletions:  {} (causing {} view side effects)",
        src_min.source_cost(),
        src_min.view_cost()
    );

    // The two objectives genuinely conflict on this instance.
    assert!(view_min.view_cost() <= src_min.view_cost());
    assert!(src_min.source_cost() <= view_min.source_cost());
    Ok(())
}
