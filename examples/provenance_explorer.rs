//! A tour of the provenance layer: witnesses, where-provenance, Boolean
//! provenance expressions, the annotation store, and the key-constraint
//! fast path of §2.1.1.
//!
//! ```text
//! cargo run --example provenance_explorer
//! ```

use dap::core::deletion::keyed::{is_keyed, keyed_side_effect_free};
use dap::prelude::*;
use dap::provenance::{provenance_exprs, AnnotationStore};
use dap::relalg::FdCatalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An HR database with real key constraints.
    let db = parse_database(
        "relation Emp(eid, dept) {
             (e1, sales), (e2, sales), (e3, eng), (e4, eng)
         }
         relation Dept(dept, mgr) {
             (sales, ann), (eng, bob)
         }",
    )?;
    let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])")?;
    let view = eval(&q, &db)?;
    println!(
        "Who reports to whom:\n{}",
        view.to_table_string("ReportsTo")
    );

    // --- Boolean provenance expressions ------------------------------------
    println!("provenance expressions (witnesses as Boolean polynomials):");
    let exprs = provenance_exprs(&q, &db)?;
    for (t, e) in exprs.iter() {
        println!("  {t}  =  {e}");
    }

    // --- Key constraints make deletion polynomial (§2.1.1) ------------------
    let mut fds = FdCatalog::new();
    fds.add_key(&db, "Emp", &["eid"]);
    fds.add_key(&db, "Dept", &["dept"]);
    assert!(fds.validate(&db).is_ok());
    println!(
        "\nkeyed query (projection determines the join): {}",
        is_keyed(&q, &db, &fds)?
    );
    let t = tuple(["e1", "ann"]);
    let sol =
        keyed_side_effect_free(&q, &db, &fds, &t)?.expect("e1's row is independently deletable");
    println!("side-effect-free deletion of {t}: {sol}");

    // --- The annotation store ------------------------------------------------
    // A curator annotates the manager field of (e3, bob) in the VIEW; the
    // placement solver finds the best source location, and the store carries
    // it forward for every future reader.
    let mut store = AnnotationStore::new();
    let loc = ViewLoc::new(tuple(["e3", "bob"]), "mgr");
    let (placement, solver) = place_annotation(&q, &db, &loc)?;
    println!("\nannotating {loc} [{solver}]: {placement}");
    store.annotate(&db, placement.source.clone(), "promotion pending");
    let annotated = store.annotated_view(&q, &db)?;
    println!("annotated view:\n{annotated}");
    // bob manages e3 AND e4 — the annotation necessarily shows on both rows
    // (the minimal side effect the solver reported).
    assert_eq!(placement.cost(), 1);

    // Field-level note that stays private to one row: the eid field.
    let loc = ViewLoc::new(tuple(["e3", "bob"]), "eid");
    let (placement, _) = place_annotation(&q, &db, &loc)?;
    assert!(placement.is_side_effect_free());
    store.annotate(&db, placement.source.clone(), "badge reissued");
    println!(
        "after a second, private note:\n{}",
        store.annotated_view(&q, &db)?
    );

    // --- Where-provenance inspection -----------------------------------------
    let wp = where_provenance(&q, &db)?;
    let locs = wp
        .locations_of(&tuple(["e1", "ann"]), &"mgr".into())
        .expect("exists");
    println!("where-provenance of (e1, ann).mgr:");
    for l in locs {
        println!("  {l} = {}", l.value_in(&db).expect("exists"));
    }
    Ok(())
}
