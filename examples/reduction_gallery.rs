//! Regenerate the paper's Figures 1–3 from their formulas and *solve* them:
//! the hardness constructions as runnable artifacts.
//!
//! ```text
//! cargo run --example reduction_gallery
//! ```

use dap::core::deletion::view_side_effect::{side_effect_free, ExactOptions};
use dap::core::figures;
use dap::core::reductions::thm3_2;
use dap::prelude::*;
use dap::sat::{dpll, Clause, Cnf, Lit};
use dap::setcover::exact_hitting_set;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Figure 1: Theorem 2.1 (monotone 3SAT → PJ deletion) -------------
    let fig1 = figures::figure1();
    println!("=== Figure 1 — Π_A,C(R1 ⋈ R2) for {} ===", fig1.formula);
    println!("{}", figures::render_instance(&fig1.instance));
    let sol = side_effect_free(
        &fig1.instance.query,
        &fig1.instance.db,
        &fig1.instance.target,
        &ExactOptions::default(),
    )?
    .expect("the figure's formula is satisfiable");
    let assignment = fig1.decode(&sol.deletions);
    println!(
        "side-effect-free deletion found; decoded assignment: {:?}",
        assignment
            .iter()
            .enumerate()
            .map(|(i, b)| format!("x{}={}", i + 1, b))
            .collect::<Vec<_>>()
    );
    assert!(fig1.formula.eval(&assignment));

    // ---- Figure 2: Theorem 2.2 (monotone 3SAT → JU deletion) -------------
    let fig2 = figures::figure2();
    println!("\n=== Figure 2 — the JU construction for the same formula ===");
    let view = eval(&fig2.instance.query, &fig2.instance.db)?;
    println!("{}", view.to_table_string("Q(S)"));
    let sol = side_effect_free(
        &fig2.instance.query,
        &fig2.instance.db,
        &fig2.instance.target,
        &ExactOptions::default(),
    )?
    .expect("satisfiable");
    println!("deleting (T, F) side-effect-free: {sol}");
    assert!(fig2.formula.eval(&fig2.decode(&sol.deletions)));

    // ---- Figure 3: Theorem 2.5 (hitting set → PJ source deletion) --------
    let fig3 = figures::figure3();
    println!("\n=== Figure 3 — Π_C(R0 ⋈ R1 ⋈ … ⋈ Rn) ===");
    println!("{}", figures::render_instance(&fig3.instance));
    let optimum = exact_hitting_set(&fig3.hitting_set);
    let (sol, solver) = delete_min_source(
        &fig3.instance.query,
        &fig3.instance.db,
        &fig3.instance.target,
    )?;
    println!(
        "minimum hitting set size {} ⇔ minimum source deletion {} [{solver}]",
        optimum.len(),
        sol.source_cost()
    );
    assert_eq!(optimum.len(), sol.source_cost());

    // ---- Theorem 3.2 (3SAT → PJ annotation) ------------------------------
    let f = Cnf::new(
        4,
        vec![
            Clause::new([Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
            Clause::new([Lit::neg(2), Lit::pos(3), Lit::pos(0)]),
        ],
    );
    let red = thm3_2::reduce(&f).expect("connected formula");
    println!("\n=== Theorem 3.2 — annotate ((c1, c2), C1) ===");
    let view = eval(&red.instance.query, &red.instance.db)?;
    println!("{}", view.to_table_string("Q(S)"));
    let (placement, _) =
        place_annotation(&red.instance.query, &red.instance.db, &red.target_location)?;
    println!("best placement: {placement}");
    assert_eq!(
        placement.is_side_effect_free(),
        dpll::is_satisfiable(&f),
        "side-effect-free ⟺ satisfiable"
    );
    println!("\nall four reductions verified against their oracles.");
    Ok(())
}
