//! Quickstart: evaluate a view, trace provenance, delete a view tuple, and
//! place an annotation — the full API in one sitting.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Section 2.1.1, after [14]): users belong
    // to groups, groups share files.
    let db = parse_database(
        "relation UserGroup(user, grp) {
             (ann, staff), (bob, staff), (bob, dev)
         }
         relation GroupFile(grp, file) {
             (staff, report), (dev, main), (dev, report)
         }",
    )?;
    let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])")?;

    println!("== Source database ==\n{db}");
    let view = eval(&q, &db)?;
    println!("== View: {q} ==\n{}", view.to_table_string("V"));

    // --- Why-provenance: the witnesses of a view tuple --------------------
    let target = tuple(["bob", "report"]);
    let witnesses = minimal_witnesses(&q, &db, &target)?;
    println!("(bob, report) has {} minimal witnesses:", witnesses.len());
    for w in &witnesses {
        let ids: Vec<String> = w.iter().map(|tid| tid.to_string()).collect();
        println!("  {{{}}}", ids.join(", "));
    }

    // --- Deletion propagation ---------------------------------------------
    let (deletion, solver) = delete_min_view_side_effects(&q, &db, &target)?;
    println!("\nDelete (bob, report) minimizing view side effects [{solver}]:");
    println!("  {deletion}");
    for tid in &deletion.deletions {
        println!("    {tid} = {}", db.tuple(tid).expect("tid valid"));
    }

    let (deletion, solver) = delete_min_source(&q, &db, &target)?;
    println!("Delete (bob, report) minimizing source deletions [{solver}]:");
    println!("  {deletion}");

    // --- Annotation placement ----------------------------------------------
    // A curator wants to attach "this value looks wrong" to the `user` field
    // of (ann, report) in the VIEW. Which source field should carry it?
    let loc = ViewLoc::new(tuple(["ann", "report"]), "user");
    let (placement, solver) = place_annotation(&q, &db, &loc)?;
    println!("\nAnnotate {loc} [{solver}]:");
    println!("  {placement}");
    println!(
        "  i.e. write the annotation on attribute `{}` of source tuple {}",
        placement.source.attr,
        db.tuple(&placement.source.tid).expect("tid valid"),
    );

    // --- The dichotomy ------------------------------------------------------
    let fp = OpFootprint::of(&q);
    println!("\nQuery class: {fp}");
    for problem in [
        Problem::ViewSideEffect,
        Problem::SourceSideEffect,
        Problem::AnnotationPlacement,
    ] {
        println!("  {problem}: {}", complexity(problem, &fp));
    }
    Ok(())
}
