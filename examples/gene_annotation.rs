//! The paper's motivating scenario (§1, "Annotation Placement"): scientists
//! annotate *views* of shared curated databases — think a genome browser
//! fed by a join of a gene catalog and an experiment table — and the system
//! must decide where in the sources the annotation should live so it shows
//! up exactly where intended.
//!
//! ```text
//! cargo run --example gene_annotation
//! ```

use dap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature curated-database setup modeled on biological annotation
    // servers (BioDAS [9] in the paper): a gene catalog, a protein table
    // keyed by gene, and per-experiment expression calls.
    let db = parse_database(
        "relation Gene(gene, chromosome) {
             (brca1, chr17), (tp53, chr17), (egfr, chr7)
         }
         relation Protein(gene, protein) {
             (brca1, 'P38398'), (tp53, 'P04637'), (egfr, 'P00533')
         }
         relation Expression(gene, tissue, level) {
             (brca1, breast, high), (brca1, ovary, high),
             (tp53, breast, low), (egfr, lung, high), (egfr, breast, low)
         }",
    )?;

    // The browser view: which proteins are highly expressed where.
    let q = parse_query(
        "project(select(join(join(scan Gene, scan Protein), scan Expression),
                        level = 'high'),
                 [protein, tissue, chromosome])",
    )?;
    let view = eval(&q, &db)?;
    println!("Browser view:\n{}", view.to_table_string("HighExpression"));

    // A curator flags the chromosome field of (P38398, ovary, chr17):
    // "double-check this mapping". Where should the flag be stored?
    let loc = ViewLoc::new(tuple(["P38398", "ovary", "chr17"]), "chromosome");
    let wp = where_provenance(&q, &db)?;
    let candidates = wp
        .locations_of(&loc.tuple, &loc.attr)
        .expect("location exists")
        .clone();
    println!("candidate source locations for {loc}:");
    for c in &candidates {
        println!("  {c} (value {})", c.value_in(&db).expect("exists"));
    }

    let (placement, solver) = place_annotation(&q, &db, &loc)?;
    println!("\nchosen placement [{solver}]: {placement}");
    for v in &placement.side_effects {
        println!("  also annotates: {v}");
    }
    // Annotating Gene(brca1).chromosome spreads to BOTH brca1 rows (breast
    // and ovary) — the paper's point: the forward rules force a trade-off,
    // and the solver reports the minimal one.
    assert_eq!(placement.cost(), 1);

    // Contrast: annotating the tissue field is private to one view row.
    let loc = ViewLoc::new(tuple(["P38398", "ovary", "chr17"]), "tissue");
    let (placement, _) = place_annotation(&q, &db, &loc)?;
    println!("\nannotating {loc}: {placement}");
    assert!(placement.is_side_effect_free());

    // Deletion propagation in the same world: retract the (P38398, ovary)
    // finding.
    let t = tuple(["P38398", "ovary", "chr17"]);
    let (deletion, solver) = delete_min_view_side_effects(&q, &db, &t)?;
    println!("\nretracting {t} [{solver}]: {deletion}");
    for tid in &deletion.deletions {
        println!("  delete {} = {}", tid, db.tuple(tid).expect("valid"));
    }
    assert!(
        deletion.is_side_effect_free(),
        "the ovary call is independently retractable"
    );
    Ok(())
}
