//! Locations — the unit of annotation.
//!
//! The paper defines a location as a triple `(R, t, A)`: attribute `A` of
//! tuple `t` of relation `R`. In the source database, tuples have stable
//! identities ([`Tid`]), so a source location is a `(Tid, Attr)` pair. View
//! tuples are identified by value (the view is an anonymous set), so a view
//! location is a `(Tuple, Attr)` pair.

use dap_relalg::{Attr, Database, Schema, Tid, Tuple};
use std::fmt;

/// A location `(R, t, A)` in the **source** database.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLoc {
    /// The tuple's identity.
    pub tid: Tid,
    /// The attribute within the tuple.
    pub attr: Attr,
}

impl SourceLoc {
    /// Build a source location.
    pub fn new(tid: Tid, attr: impl Into<Attr>) -> SourceLoc {
        SourceLoc {
            tid,
            attr: attr.into(),
        }
    }

    /// Whether this location exists in `db` (the tuple exists and its
    /// relation's schema has the attribute).
    pub fn exists_in(&self, db: &Database) -> bool {
        db.tuple(&self.tid).is_some()
            && db
                .get(self.tid.rel.as_str())
                .is_some_and(|r| r.schema().contains(&self.attr))
    }

    /// The value stored at this location, if it exists.
    pub fn value_in<'a>(&self, db: &'a Database) -> Option<&'a dap_relalg::Value> {
        let rel = db.get(self.tid.rel.as_str())?;
        let idx = rel.schema().index_of(&self.attr)?;
        rel.tuple_at(self.tid.row).map(|t| t.get(idx))
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.tid, self.attr)
    }
}

impl fmt::Debug for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SourceLoc{self}")
    }
}

/// A location `(Q(S), t, A)` in the **view**: an output tuple (identified by
/// value) and one of its attributes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewLoc {
    /// The view tuple.
    pub tuple: Tuple,
    /// The annotated attribute.
    pub attr: Attr,
}

impl ViewLoc {
    /// Build a view location.
    pub fn new(tuple: Tuple, attr: impl Into<Attr>) -> ViewLoc {
        ViewLoc {
            tuple,
            attr: attr.into(),
        }
    }

    /// The value at this location, given the view's schema.
    pub fn value_under<'a>(&'a self, schema: &Schema) -> Option<&'a dap_relalg::Value> {
        self.tuple.value_of(schema, &self.attr)
    }
}

impl fmt::Display for ViewLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.tuple, self.attr)
    }
}

impl fmt::Debug for ViewLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ViewLoc{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, tuple, Value};

    fn db() -> Database {
        parse_database("relation R(A, B) { (a, x1), (a, x2) }").unwrap()
    }

    #[test]
    fn source_loc_existence_and_value() {
        let db = db();
        let tid = db.tid_of("R", &tuple(["a", "x2"])).unwrap();
        let loc = SourceLoc::new(tid.clone(), "B");
        assert!(loc.exists_in(&db));
        assert_eq!(loc.value_in(&db), Some(&Value::str("x2")));

        let missing_attr = SourceLoc::new(tid, "Z");
        assert!(!missing_attr.exists_in(&db));
        assert_eq!(missing_attr.value_in(&db), None);

        let missing_tuple = SourceLoc::new(Tid::new("R", 99), "A");
        assert!(!missing_tuple.exists_in(&db));
    }

    #[test]
    fn view_loc_value() {
        let schema = dap_relalg::schema(["A", "C"]);
        let loc = ViewLoc::new(tuple(["a", "c"]), "C");
        assert_eq!(loc.value_under(&schema), Some(&Value::str("c")));
        assert_eq!(
            ViewLoc::new(tuple(["a", "c"]), "Z").value_under(&schema),
            None
        );
    }

    #[test]
    fn ordering_and_display() {
        let l1 = SourceLoc::new(Tid::new("R", 0), "A");
        let l2 = SourceLoc::new(Tid::new("R", 1), "A");
        assert!(l1 < l2);
        assert_eq!(l1.to_string(), "(R#0, A)");
        assert_eq!(ViewLoc::new(tuple(["a"]), "A").to_string(), "((a), A)");
    }
}
