//! Where-provenance: for every view location, the set of source locations
//! whose annotations would propagate to it.
//!
//! This is the form of provenance the paper identifies with **annotation
//! placement** (Section 3): under the forward propagation rules, an
//! annotation placed on source location `ℓ` appears at view location `v` iff
//! `ℓ ∈ where(v)`. The computation runs on the generic annotated evaluator
//! ([`dap_relalg::eval_annotated`]) with the [`LocationsAnn`] instance — the
//! backward reading of the paper's five forward rules, batched over *all*
//! source locations in one pass; `crate::annotate` implements the forward
//! reading independently, and the two are cross-checked by tests.
//! `where_provenance_legacy` (cargo feature `legacy-oracles`) preserves the
//! original standalone walk as the differential-test oracle.

use crate::engine::LocationsAnn;
use crate::location::{SourceLoc, ViewLoc};
use dap_relalg::{eval_annotated, Attr, Database, Query, Result, Schema, Tuple};
#[cfg(feature = "legacy-oracles")]
use dap_relalg::{output_schema, Tid};
#[cfg(feature = "legacy-oracles")]
use std::collections::HashMap;
use std::collections::{BTreeMap, BTreeSet};

/// Per-attribute source-location sets for every output tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WhereProvenance {
    /// The view's schema.
    pub schema: Schema,
    /// For each output tuple, one location set per schema position.
    map: BTreeMap<Tuple, Vec<BTreeSet<SourceLoc>>>,
}

impl WhereProvenance {
    /// The output tuples, in sorted order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.map.keys()
    }

    /// The source locations that propagate to `(t, attr)`, if the view
    /// contains `t` and its schema contains `attr`.
    pub fn locations_of(&self, t: &Tuple, attr: &Attr) -> Option<&BTreeSet<SourceLoc>> {
        let idx = self.schema.index_of(attr)?;
        self.map.get(t).map(|sets| &sets[idx])
    }

    /// Iterate over `(tuple, per-position location sets)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &[BTreeSet<SourceLoc>])> {
        self.map.iter().map(|(t, sets)| (t, sets.as_slice()))
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Invert into the paper's relation `R(Q, S)` between source and view
    /// locations: all `(ℓ, v)` pairs such that an annotation on `ℓ`
    /// propagates to `v`.
    pub fn location_relation(&self) -> BTreeSet<(SourceLoc, ViewLoc)> {
        let mut out = BTreeSet::new();
        for (t, sets) in &self.map {
            for (idx, locs) in sets.iter().enumerate() {
                let attr = self.schema.attrs()[idx].clone();
                for loc in locs {
                    out.insert((loc.clone(), ViewLoc::new(t.clone(), attr.clone())));
                }
            }
        }
        out
    }

    /// Invert into a batched forward index in **one pass** over the view:
    /// every source location mapped to the full set of view locations it
    /// reaches. Use this instead of calling [`WhereProvenance::reached_from`]
    /// per candidate (which re-scans the whole view on every call) — the
    /// placement hot loop does.
    pub fn inverted(&self) -> BTreeMap<SourceLoc, BTreeSet<ViewLoc>> {
        let mut out: BTreeMap<SourceLoc, BTreeSet<ViewLoc>> = BTreeMap::new();
        for (t, sets) in &self.map {
            for (idx, locs) in sets.iter().enumerate() {
                let attr = &self.schema.attrs()[idx];
                for loc in locs {
                    out.entry(loc.clone())
                        .or_default()
                        .insert(ViewLoc::new(t.clone(), attr.clone()));
                }
            }
        }
        out
    }

    /// Like [`WhereProvenance::inverted`], but materializing only the
    /// source locations in `only` — still a single pass over the view.
    /// This is the single-target placement path: with `k` candidates it
    /// replaces `k` [`WhereProvenance::reached_from`] view scans by one,
    /// without paying the full-index allocation.
    pub fn inverted_for(
        &self,
        only: &BTreeSet<SourceLoc>,
    ) -> BTreeMap<SourceLoc, BTreeSet<ViewLoc>> {
        let mut out: BTreeMap<SourceLoc, BTreeSet<ViewLoc>> = BTreeMap::new();
        for (t, sets) in &self.map {
            for (idx, locs) in sets.iter().enumerate() {
                let attr = &self.schema.attrs()[idx];
                for loc in locs {
                    if only.contains(loc) {
                        out.entry(loc.clone())
                            .or_default()
                            .insert(ViewLoc::new(t.clone(), attr.clone()));
                    }
                }
            }
        }
        out
    }

    /// All view locations reached from `src` (forward propagation computed
    /// by inversion).
    pub fn reached_from(&self, src: &SourceLoc) -> BTreeSet<ViewLoc> {
        let mut out = BTreeSet::new();
        for (t, sets) in &self.map {
            for (idx, locs) in sets.iter().enumerate() {
                if locs.contains(src) {
                    out.insert(ViewLoc::new(t.clone(), self.schema.attrs()[idx].clone()));
                }
            }
        }
        out
    }
}

/// Compute the where-provenance of every location in `Q(db)`, in one pass
/// of the generic annotated evaluator.
pub fn where_provenance(q: &Query, db: &Database) -> Result<WhereProvenance> {
    let (schema, tuples, annots) = eval_annotated::<LocationsAnn>(q, db)?.into_parts();
    let map = tuples
        .into_iter()
        .zip(annots.into_iter().map(|a| a.0))
        .collect();
    Ok(WhereProvenance { schema, map })
}

/// The original standalone location walk, kept as the reference oracle for
/// the differential property tests (`tests/prop_provenance.rs`). Prefer
/// [`where_provenance`], which computes the same result on the shared
/// engine.
#[cfg(feature = "legacy-oracles")]
pub fn where_provenance_legacy(q: &Query, db: &Database) -> Result<WhereProvenance> {
    let catalog = db.catalog();
    output_schema(q, &catalog)?;
    let (schema, map) = walk(q, db)?;
    Ok(WhereProvenance { schema, map })
}

#[cfg(feature = "legacy-oracles")]
type LocSets = Vec<BTreeSet<SourceLoc>>;
#[cfg(feature = "legacy-oracles")]
type AnnMap = BTreeMap<Tuple, LocSets>;

#[cfg(feature = "legacy-oracles")]
fn merge_into(dst: &mut LocSets, src: &LocSets) {
    for (d, s) in dst.iter_mut().zip(src) {
        d.extend(s.iter().cloned());
    }
}

#[cfg(feature = "legacy-oracles")]
fn walk(q: &Query, db: &Database) -> Result<(Schema, AnnMap)> {
    match q {
        Query::Scan(rel) => {
            let r = db.require(rel)?;
            let attrs = r.schema().attrs().to_vec();
            let map = r
                .tuples()
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    let tid = Tid {
                        rel: r.name().clone(),
                        row,
                    };
                    let sets: LocSets = attrs
                        .iter()
                        .map(|a| {
                            [SourceLoc::new(tid.clone(), a.clone())]
                                .into_iter()
                                .collect()
                        })
                        .collect();
                    (t.clone(), sets)
                })
                .collect();
            Ok((r.schema().clone(), map))
        }
        Query::Select { input, pred } => {
            // The selection rule: annotations pass through untouched for
            // surviving tuples. Note the deliberate non-rule discussed in the
            // paper: σ_{A=A'} does NOT copy annotations between A and A'.
            let (schema, map) = walk(input, db)?;
            let mut out = AnnMap::new();
            for (t, sets) in map {
                if pred.eval(&schema, &t)? {
                    out.insert(t, sets);
                }
            }
            Ok((schema, out))
        }
        Query::Project { input, attrs } => {
            let (schema, map) = walk(input, db)?;
            let out_schema = schema.project(attrs)?;
            let positions = schema.positions_of(attrs)?;
            let mut out = AnnMap::new();
            for (t, sets) in map {
                let key = t.project_positions(&positions);
                let kept: LocSets = positions.iter().map(|&i| sets[i].clone()).collect();
                out.entry(key)
                    .and_modify(|existing| merge_into(existing, &kept))
                    .or_insert(kept);
            }
            Ok((out_schema, out))
        }
        Query::Join { left, right } => {
            let (ls, lmap) = walk(left, db)?;
            let (rs, rmap) = walk(right, db)?;
            let shared: Vec<Attr> = ls.shared_with(&rs);
            let out_schema = ls.join_with(&rs);
            let l_keys: Vec<usize> = shared
                .iter()
                .map(|a| ls.index_of(a).expect("shared"))
                .collect();
            let r_keys: Vec<usize> = shared
                .iter()
                .map(|a| rs.index_of(a).expect("shared"))
                .collect();
            let r_extra: Vec<usize> = rs
                .attrs()
                .iter()
                .enumerate()
                .filter(|(_, a)| !ls.contains(a))
                .map(|(i, _)| i)
                .collect();
            // For each left position that is a shared attribute, the right
            // position it merges with (the join rule sends annotations from
            // BOTH operands to a shared output attribute).
            let merge_from_right: Vec<Option<usize>> =
                ls.attrs().iter().map(|a| rs.index_of(a)).collect();
            let mut table: HashMap<Vec<dap_relalg::Value>, Vec<(&Tuple, &LocSets)>> =
                HashMap::with_capacity(rmap.len());
            for (t, sets) in &rmap {
                let key = r_keys.iter().map(|&i| t.get(i).clone()).collect::<Vec<_>>();
                table.entry(key).or_default().push((t, sets));
            }
            let mut out = AnnMap::new();
            for (lt, lsets) in &lmap {
                let key = l_keys
                    .iter()
                    .map(|&i| lt.get(i).clone())
                    .collect::<Vec<_>>();
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for (rt, rsets) in matches {
                    let joined = lt.join_concat(rt, &r_extra);
                    let mut sets: LocSets = Vec::with_capacity(out_schema.arity());
                    for (i, from_right) in merge_from_right.iter().enumerate() {
                        let mut s = lsets[i].clone();
                        if let Some(j) = from_right {
                            s.extend(rsets[*j].iter().cloned());
                        }
                        sets.push(s);
                    }
                    for &j in &r_extra {
                        sets.push(rsets[j].clone());
                    }
                    out.entry(joined)
                        .and_modify(|existing| merge_into(existing, &sets))
                        .or_insert(sets);
                }
            }
            Ok((out_schema, out))
        }
        Query::Union { left, right } => {
            let (ls, lmap) = walk(left, db)?;
            let (rs, rmap) = walk(right, db)?;
            let positions = rs.positions_of(ls.attrs())?;
            let mut out = lmap;
            for (t, sets) in rmap {
                let aligned_tuple = t.project_positions(&positions);
                let aligned_sets: LocSets = positions.iter().map(|&i| sets[i].clone()).collect();
                out.entry(aligned_tuple)
                    .and_modify(|existing| merge_into(existing, &aligned_sets))
                    .or_insert(aligned_sets);
            }
            Ok((ls, out))
        }
        Query::Rename { input, mapping } => {
            // The renaming rule: the annotation follows the attribute to its
            // new name; positionally nothing moves.
            let (schema, map) = walk(input, db)?;
            Ok((schema.rename(mapping)?, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{eval, parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    fn src(db: &Database, rel: &str, t: &Tuple, attr: &str) -> SourceLoc {
        SourceLoc::new(db.tid_of(rel, t).unwrap(), attr)
    }

    #[test]
    fn tuples_match_plain_eval() {
        let (q, db) = fixture();
        let wp = where_provenance(&q, &db).unwrap();
        let plain = eval(&q, &db).unwrap();
        let tuples: Vec<_> = wp.tuples().cloned().collect();
        assert_eq!(tuples, plain.tuples);
    }

    #[test]
    fn scan_locations_are_identities() {
        let (_, db) = fixture();
        let wp = where_provenance(&Query::scan("UserGroup"), &db).unwrap();
        let t = tuple(["ann", "staff"]);
        let locs = wp.locations_of(&t, &"user".into()).unwrap();
        assert_eq!(locs.len(), 1);
        assert_eq!(
            locs.iter().next().unwrap(),
            &src(&db, "UserGroup", &t, "user")
        );
    }

    #[test]
    fn projection_merges_locations() {
        let (q, db) = fixture();
        let wp = where_provenance(&q, &db).unwrap();
        // (bob, report).user is copied from BOTH UserGroup tuples for bob
        // (one witness via staff, one via dev).
        let locs = wp
            .locations_of(&tuple(["bob", "report"]), &"user".into())
            .unwrap();
        assert_eq!(locs.len(), 2);
        assert!(locs.contains(&src(&db, "UserGroup", &tuple(["bob", "staff"]), "user")));
        assert!(locs.contains(&src(&db, "UserGroup", &tuple(["bob", "dev"]), "user")));
        // (ann, report).file comes only from (staff, report).file.
        let locs = wp
            .locations_of(&tuple(["ann", "report"]), &"file".into())
            .unwrap();
        assert_eq!(locs.len(), 1);
        assert!(locs.contains(&src(&db, "GroupFile", &tuple(["staff", "report"]), "file")));
    }

    #[test]
    fn join_attribute_receives_from_both_sides() {
        let (_, db) = fixture();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        let wp = where_provenance(&q, &db).unwrap();
        let t = tuple(["ann", "staff", "report"]);
        let locs = wp.locations_of(&t, &"grp".into()).unwrap();
        assert_eq!(
            locs.len(),
            2,
            "shared attr gets annotations from both operands"
        );
        assert!(locs.contains(&src(&db, "UserGroup", &tuple(["ann", "staff"]), "grp")));
        assert!(locs.contains(&src(&db, "GroupFile", &tuple(["staff", "report"]), "grp")));
        // Non-shared attributes come from exactly one side.
        let locs = wp.locations_of(&t, &"user".into()).unwrap();
        assert_eq!(locs.len(), 1);
    }

    #[test]
    fn explicit_equality_does_not_transmit() {
        // The paper's example: σ_{A=B} does not copy annotations between A
        // and B even though they are equal in every surviving tuple.
        let db = parse_database("relation R(A, B) { (v, v), (v, w) }").unwrap();
        let q = parse_query("select(scan R, A = B)").unwrap();
        let wp = where_provenance(&q, &db).unwrap();
        let t = tuple(["v", "v"]);
        let a_locs = wp.locations_of(&t, &"A".into()).unwrap();
        let b_locs = wp.locations_of(&t, &"B".into()).unwrap();
        assert_eq!(a_locs.len(), 1);
        assert_eq!(b_locs.len(), 1);
        assert_ne!(a_locs, b_locs, "A and B keep distinct provenance");
    }

    #[test]
    fn union_merges_locations() {
        let db = parse_database(
            "relation R(A) { (v) }
             relation S(A) { (v), (w) }",
        )
        .unwrap();
        let q = parse_query("union(scan R, scan S)").unwrap();
        let wp = where_provenance(&q, &db).unwrap();
        let locs = wp.locations_of(&tuple(["v"]), &"A".into()).unwrap();
        assert_eq!(locs.len(), 2);
        let locs = wp.locations_of(&tuple(["w"]), &"A".into()).unwrap();
        assert_eq!(locs.len(), 1);
    }

    #[test]
    fn rename_carries_annotation_to_new_name() {
        let db = parse_database("relation R(A) { (v) }").unwrap();
        let q = parse_query("rename(scan R, {A -> X})").unwrap();
        let wp = where_provenance(&q, &db).unwrap();
        let locs = wp.locations_of(&tuple(["v"]), &"X".into()).unwrap();
        // The source location still names the ORIGINAL attribute A.
        assert_eq!(locs.iter().next().unwrap().attr, Attr::new("A"));
    }

    #[test]
    fn location_relation_and_reached_from_agree() {
        let (q, db) = fixture();
        let wp = where_provenance(&q, &db).unwrap();
        let rel = wp.location_relation();
        for tid in db.all_tids() {
            let r = db.get(tid.rel.as_str()).unwrap();
            for a in r.schema().attrs() {
                let s = SourceLoc::new(tid.clone(), a.clone());
                let reached = wp.reached_from(&s);
                let from_rel: BTreeSet<ViewLoc> = rel
                    .iter()
                    .filter(|(src, _)| src == &s)
                    .map(|(_, v)| v.clone())
                    .collect();
                assert_eq!(reached, from_rel);
            }
        }
    }

    #[test]
    fn constants_projected_away_leave_no_trace() {
        let (q, db) = fixture();
        let wp = where_provenance(&q, &db).unwrap();
        // No location of the view mentions a `grp` attribute source? They do
        // — through user/file only if grp were projected. Check that view
        // locations only reference existing source locations.
        for (_, sets) in wp.iter() {
            for set in sets {
                for loc in set {
                    assert!(loc.exists_in(&db));
                }
            }
        }
    }
}
