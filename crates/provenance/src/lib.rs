//! # dap-provenance — witnesses, why/where-provenance, annotations
//!
//! The provenance machinery underlying both problems in Buneman, Khanna &
//! Tan's *"On Propagation of Deletions and Annotations Through Views"* (PODS
//! 2002):
//!
//! * **Why-provenance** ([`why_provenance`]): for every output tuple, its
//!   minimal witnesses — the basis of deletion propagation (an output tuple
//!   dies iff every minimal witness is hit).
//! * **Where-provenance** ([`where_provenance`]): for every view *location*
//!   `(t, A)`, the source locations whose annotations propagate there — the
//!   basis of annotation placement.
//! * **Forward annotation propagation** ([`propagate`]): the paper's five
//!   propagation rules executed forwards, independently implemented and
//!   cross-checked against inverted where-provenance.
//! * **Lineage** ([`lineage()`](lineage::lineage)): the Cui–Widom baseline the paper contrasts
//!   with ([14, 15]).
//!
//! All of these are instances of **one** generic annotated evaluation: the
//! [`engine`] module supplies the [`dap_relalg::Annotation`] carriers
//! (witness sets, per-attribute location sets, tuple-id sets, Boolean
//! expressions) and `dap_relalg::eval_annotated` performs the single tree
//! walk. The original standalone walks survive as `*_legacy` oracles for
//! the differential property tests, behind the `legacy-oracles` cargo
//! feature (enabled by the test suites and CI, off in release builds).
//!
//! ```
//! use dap_provenance::{why_provenance, where_provenance};
//! use dap_relalg::{parse_database, parse_query, tuple};
//!
//! let db = parse_database(
//!     "relation R(A, B) { (a, x1), (a, x2) }
//!      relation S(B, C) { (x1, c), (x2, c) }",
//! ).unwrap();
//! let q = parse_query("project(join(scan R, scan S), [A, C])").unwrap();
//!
//! let why = why_provenance(&q, &db).unwrap();
//! assert_eq!(why.witnesses_of(&tuple(["a", "c"])).unwrap().len(), 2);
//!
//! let wp = where_provenance(&q, &db).unwrap();
//! assert_eq!(wp.locations_of(&tuple(["a", "c"]), &"A".into()).unwrap().len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod boolexpr;
pub mod engine;
pub mod lineage;
pub mod location;
pub mod store;
pub mod where_prov;
pub mod why;
pub mod witness;

pub use annotate::{propagate, propagate_all, PropagationIndex};
#[cfg(feature = "legacy-oracles")]
pub use boolexpr::provenance_exprs_legacy;
pub use boolexpr::{provenance_exprs, BoolExpr, ProvenanceExprs};
pub use engine::{ExprAnn, LineageAnn, LocationsAnn, WitnessesAnn};
pub use lineage::{
    lineage, lineage_from_why, lineage_size, lineage_support, participating_tids, Lineage,
};
pub use location::{SourceLoc, ViewLoc};
pub use store::{AnnotatedRow, AnnotatedView, AnnotationStore};
#[cfg(feature = "legacy-oracles")]
pub use where_prov::where_provenance_legacy;
pub use where_prov::{where_provenance, WhereProvenance};
#[cfg(feature = "legacy-oracles")]
pub use why::why_provenance_legacy;
pub use why::{minimal_witnesses, why_provenance, WhyProvenance};
pub use witness::{is_minimal_witness, is_sufficient, minimize, support, Witness};
