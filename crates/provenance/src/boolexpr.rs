//! Why-provenance as **positive Boolean expressions** over tuple variables.
//!
//! Every output tuple's derivation can be written as a monotone Boolean
//! formula whose variables are source tuples: joins multiply (AND), unions
//! and projections add (OR). The minimal witnesses of the paper are exactly
//! the prime implicants of this formula, and `t ∈ Q(S \ T)` iff the formula
//! is true under "deleted = false".
//!
//! The paper's conclusion calls for "other models of propagating
//! annotations"; this module is the Boolean/`PosBool` instance of what later
//! became the provenance-semiring framework, and doubles as an independent
//! cross-check of the witness machinery: DNF + absorption must equal the
//! minimal witness basis (tested).

use crate::witness::{minimize, Witness};
#[cfg(feature = "legacy-oracles")]
use dap_relalg::{output_schema, Attr};
use dap_relalg::{Database, Query, Result, Schema, Tid, Tuple};
#[cfg(feature = "legacy-oracles")]
use std::collections::HashMap;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A monotone (negation-free) Boolean expression over source tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoolExpr {
    /// The constant `false` (no derivation).
    False,
    /// The constant `true` (derivable from nothing — does not occur for
    /// SPJRU queries but completes the algebra).
    True,
    /// A source tuple variable.
    Var(Tid),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Conjunction with unit/absorbing-element simplification.
    pub fn and(self, other: BoolExpr) -> BoolExpr {
        match (self, other) {
            (BoolExpr::False, _) | (_, BoolExpr::False) => BoolExpr::False,
            (BoolExpr::True, e) | (e, BoolExpr::True) => e,
            (a, b) => BoolExpr::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with unit/absorbing-element simplification.
    pub fn or(self, other: BoolExpr) -> BoolExpr {
        match (self, other) {
            (BoolExpr::True, _) | (_, BoolExpr::True) => BoolExpr::True,
            (BoolExpr::False, e) | (e, BoolExpr::False) => e,
            (a, b) => BoolExpr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Evaluate under the valuation "tuple alive iff not in `deleted`".
    pub fn eval_deleted(&self, deleted: &BTreeSet<Tid>) -> bool {
        match self {
            BoolExpr::False => false,
            BoolExpr::True => true,
            BoolExpr::Var(tid) => !deleted.contains(tid),
            BoolExpr::And(a, b) => a.eval_deleted(deleted) && b.eval_deleted(deleted),
            BoolExpr::Or(a, b) => a.eval_deleted(deleted) || b.eval_deleted(deleted),
        }
    }

    /// Expand to DNF and apply absorption: the result is the set of prime
    /// implicants — which for provenance expressions is the minimal witness
    /// basis. Worst-case exponential, like witnesses themselves.
    pub fn prime_implicants(&self) -> Vec<Witness> {
        fn dnf(e: &BoolExpr) -> Vec<Witness> {
            match e {
                BoolExpr::False => vec![],
                BoolExpr::True => vec![BTreeSet::new()],
                BoolExpr::Var(tid) => vec![[tid.clone()].into_iter().collect()],
                BoolExpr::Or(a, b) => {
                    let mut out = dnf(a);
                    out.extend(dnf(b));
                    out
                }
                BoolExpr::And(a, b) => {
                    let left = dnf(a);
                    let right = dnf(b);
                    let mut out = Vec::with_capacity(left.len() * right.len());
                    for l in &left {
                        for r in &right {
                            out.push(l.iter().cloned().chain(r.iter().cloned()).collect());
                        }
                    }
                    out
                }
            }
        }
        minimize(dnf(self))
    }

    /// The variables mentioned.
    pub fn variables(&self) -> BTreeSet<Tid> {
        let mut out = BTreeSet::new();
        fn walk(e: &BoolExpr, out: &mut BTreeSet<Tid>) {
            match e {
                BoolExpr::False | BoolExpr::True => {}
                BoolExpr::Var(tid) => {
                    out.insert(tid.clone());
                }
                BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::False => write!(f, "0"),
            BoolExpr::True => write!(f, "1"),
            BoolExpr::Var(tid) => write!(f, "{tid}"),
            BoolExpr::And(a, b) => {
                let wrap = |e: &BoolExpr, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    if matches!(e, BoolExpr::Or(..)) {
                        write!(f, "({e})")
                    } else {
                        write!(f, "{e}")
                    }
                };
                wrap(a, f)?;
                write!(f, " · ")?;
                wrap(b, f)
            }
            BoolExpr::Or(a, b) => write!(f, "{a} + {b}"),
        }
    }
}

/// The provenance expressions of every output tuple of `q` on `db`.
#[derive(Clone, Debug)]
pub struct ProvenanceExprs {
    /// The view schema.
    pub schema: Schema,
    map: BTreeMap<Tuple, BoolExpr>,
}

impl ProvenanceExprs {
    /// The expression of `t`, if it is in the view.
    pub fn expr_of(&self, t: &Tuple) -> Option<&BoolExpr> {
        self.map.get(t)
    }

    /// Iterate over `(tuple, expression)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &BoolExpr)> {
        self.map.iter()
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Compute the provenance expression of every output tuple — a structural
/// analogue of [`crate::why_provenance`] that keeps the formula instead of
/// flattening to witnesses. Runs on the generic annotated evaluator with the
/// [`crate::engine::ExprAnn`] instance.
pub fn provenance_exprs(q: &Query, db: &Database) -> Result<ProvenanceExprs> {
    let (schema, tuples, annots) =
        dap_relalg::eval_annotated::<crate::engine::ExprAnn>(q, db)?.into_parts();
    let map = tuples
        .into_iter()
        .zip(annots.into_iter().map(|a| a.0))
        .collect();
    Ok(ProvenanceExprs { schema, map })
}

/// The original standalone expression walk, kept as the reference oracle
/// for the differential property tests. The engine and legacy expressions
/// may differ *structurally* (operand grouping), but are logically
/// equivalent — compare via [`BoolExpr::prime_implicants`] or
/// [`BoolExpr::eval_deleted`].
#[cfg(feature = "legacy-oracles")]
pub fn provenance_exprs_legacy(q: &Query, db: &Database) -> Result<ProvenanceExprs> {
    let catalog = db.catalog();
    output_schema(q, &catalog)?;
    let (schema, map) = walk(q, db)?;
    Ok(ProvenanceExprs { schema, map })
}

#[cfg(feature = "legacy-oracles")]
type ExprMap = BTreeMap<Tuple, BoolExpr>;

#[cfg(feature = "legacy-oracles")]
fn walk(q: &Query, db: &Database) -> Result<(Schema, ExprMap)> {
    match q {
        Query::Scan(rel) => {
            let r = db.require(rel)?;
            let map = r
                .tuples()
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    (
                        t.clone(),
                        BoolExpr::Var(Tid {
                            rel: r.name().clone(),
                            row,
                        }),
                    )
                })
                .collect();
            Ok((r.schema().clone(), map))
        }
        Query::Select { input, pred } => {
            let (schema, map) = walk(input, db)?;
            let mut out = ExprMap::new();
            for (t, e) in map {
                if pred.eval(&schema, &t)? {
                    out.insert(t, e);
                }
            }
            Ok((schema, out))
        }
        Query::Project { input, attrs } => {
            let (schema, map) = walk(input, db)?;
            let out_schema = schema.project(attrs)?;
            let positions = schema.positions_of(attrs)?;
            let mut out = ExprMap::new();
            for (t, e) in map {
                let key = t.project_positions(&positions);
                let merged = match out.remove(&key) {
                    Some(existing) => existing.or(e),
                    None => e,
                };
                out.insert(key, merged);
            }
            Ok((out_schema, out))
        }
        Query::Join { left, right } => {
            let (ls, lmap) = walk(left, db)?;
            let (rs, rmap) = walk(right, db)?;
            let shared: Vec<Attr> = ls.shared_with(&rs);
            let out_schema = ls.join_with(&rs);
            let l_keys: Vec<usize> = shared
                .iter()
                .map(|a| ls.index_of(a).expect("shared"))
                .collect();
            let r_keys: Vec<usize> = shared
                .iter()
                .map(|a| rs.index_of(a).expect("shared"))
                .collect();
            let r_extra: Vec<usize> = rs
                .attrs()
                .iter()
                .enumerate()
                .filter(|(_, a)| !ls.contains(a))
                .map(|(i, _)| i)
                .collect();
            let mut table: HashMap<Vec<dap_relalg::Value>, Vec<(&Tuple, &BoolExpr)>> =
                HashMap::with_capacity(rmap.len());
            for (t, e) in &rmap {
                let key = r_keys.iter().map(|&i| t.get(i).clone()).collect::<Vec<_>>();
                table.entry(key).or_default().push((t, e));
            }
            let mut out = ExprMap::new();
            for (lt, le) in &lmap {
                let key = l_keys
                    .iter()
                    .map(|&i| lt.get(i).clone())
                    .collect::<Vec<_>>();
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for (rt, re) in matches {
                    let joined = lt.join_concat(rt, &r_extra);
                    let product = le.clone().and((*re).clone());
                    let merged = match out.remove(&joined) {
                        Some(existing) => existing.or(product),
                        None => product,
                    };
                    out.insert(joined, merged);
                }
            }
            Ok((out_schema, out))
        }
        Query::Union { left, right } => {
            let (ls, lmap) = walk(left, db)?;
            let (rs, rmap) = walk(right, db)?;
            let positions = rs.positions_of(ls.attrs())?;
            let mut out = lmap;
            for (t, e) in rmap {
                let aligned = t.project_positions(&positions);
                let merged = match out.remove(&aligned) {
                    Some(existing) => existing.or(e),
                    None => e,
                };
                out.insert(aligned, merged);
            }
            Ok((ls, out))
        }
        Query::Rename { input, mapping } => {
            let (schema, map) = walk(input, db)?;
            Ok((schema.rename(mapping)?, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::why::why_provenance;
    use dap_relalg::{eval, parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn algebraic_simplification() {
        let v = BoolExpr::Var(Tid::new("R", 0));
        assert_eq!(BoolExpr::False.clone().and(v.clone()), BoolExpr::False);
        assert_eq!(BoolExpr::True.and(v.clone()), v);
        assert_eq!(BoolExpr::False.or(v.clone()), v);
        assert_eq!(BoolExpr::True.or(v.clone()), BoolExpr::True);
    }

    #[test]
    fn prime_implicants_equal_minimal_witnesses() {
        let (q, db) = fixture();
        let exprs = provenance_exprs(&q, &db).unwrap();
        let why = why_provenance(&q, &db).unwrap();
        assert_eq!(exprs.len(), why.len());
        for (t, e) in exprs.iter() {
            let implicants = e.prime_implicants();
            let witnesses = why.witnesses_of(t).unwrap();
            assert_eq!(implicants.as_slice(), witnesses, "mismatch for {t}");
        }
    }

    #[test]
    fn expression_eval_matches_reevaluation() {
        let (q, db) = fixture();
        let exprs = provenance_exprs(&q, &db).unwrap();
        let tids: Vec<Tid> = db.all_tids().collect();
        // All single and double deletions.
        let mut deletions: Vec<BTreeSet<Tid>> = Vec::new();
        for i in 0..tids.len() {
            deletions.push([tids[i].clone()].into_iter().collect());
            for j in (i + 1)..tids.len() {
                deletions.push([tids[i].clone(), tids[j].clone()].into_iter().collect());
            }
        }
        for deleted in deletions {
            let after = eval(&q, &db.without(&deleted)).unwrap();
            for (t, e) in exprs.iter() {
                assert_eq!(
                    e.eval_deleted(&deleted),
                    after.contains(t),
                    "expr {e} for {t} under deletion {deleted:?}"
                );
            }
        }
    }

    #[test]
    fn display_reads_like_a_polynomial() {
        let (q, db) = fixture();
        let exprs = provenance_exprs(&q, &db).unwrap();
        let e = exprs.expr_of(&tuple(["bob", "report"])).unwrap();
        let text = e.to_string();
        // Two derivations, each a product of two tuples.
        assert!(text.contains(" + "), "got {text}");
        assert!(text.contains(" · "), "got {text}");
    }

    #[test]
    fn variables_are_the_lineage() {
        let (q, db) = fixture();
        let exprs = provenance_exprs(&q, &db).unwrap();
        let e = exprs.expr_of(&tuple(["bob", "report"])).unwrap();
        assert_eq!(e.variables().len(), 4);
    }

    #[test]
    fn union_and_select_shapes() {
        let db = parse_database(
            "relation R(A) { (v) }
             relation S(A) { (v), (w) }",
        )
        .unwrap();
        let q = parse_query("union(scan R, scan S)").unwrap();
        let exprs = provenance_exprs(&q, &db).unwrap();
        // (v) = R#0 + S#0 — an OR of two variables.
        let e = exprs.expr_of(&tuple(["v"])).unwrap();
        assert!(matches!(e, BoolExpr::Or(..)));
        // (w) = S#1 — a bare variable.
        let e = exprs.expr_of(&tuple(["w"])).unwrap();
        assert!(matches!(e, BoolExpr::Var(_)));
    }
}
