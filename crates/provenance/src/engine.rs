//! The [`Annotation`] instances that turn `dap_relalg`'s generic annotated
//! evaluator into each of this crate's provenance semantics.
//!
//! One tree walk ([`dap_relalg::eval_annotated`]) serves every semantics;
//! this module only supplies the carriers and their (⊗, ⊕) structure:
//!
//! * [`WitnessesAnn`] — minimal witness sets (**why-provenance**, the
//!   deletion side of the paper, §2): join takes pairwise unions, merges
//!   concatenate, normalization keeps the inclusion-minimal basis.
//! * [`LocationsAnn`] — per-attribute source-location sets
//!   (**where-provenance**, the annotation side, §3): the five forward
//!   propagation rules, batched — *every* source location is propagated in
//!   the same pass.
//! * [`LineageAnn`] — flat contributing-tuple sets (Cui–Widom **lineage**,
//!   the \[14, 15\] baseline): participation semantics, equal to the
//!   variable set of the Boolean lineage expression.
//! * [`ExprAnn`] — positive **Boolean lineage expressions** over source
//!   tuples (join = ∧, merge = ∨): the `PosBool` instance the paper's
//!   conclusion gestures at.
//!
//! `dap_relalg::Unit` (plain evaluation) completes the set of five.
//! Differential property tests (`tests/prop_provenance.rs`) pin every
//! instance against its legacy single-purpose implementation.

use crate::boolexpr::BoolExpr;
use crate::location::SourceLoc;
use crate::witness::{minimize, Witness};
use dap_relalg::{Annotation, JoinLayout, Schema, Tid};
use std::collections::BTreeSet;

/// Minimal-witness-set annotation: the why-provenance instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WitnessesAnn(pub Vec<Witness>);

impl Annotation for WitnessesAnn {
    fn from_scan(tid: Tid, _schema: &Schema) -> Self {
        WitnessesAnn(vec![[tid].into_iter().collect()])
    }

    fn join(left: &Self, right: &Self, _layout: &JoinLayout) -> Self {
        // ⊗: every pairing of a left witness with a right witness.
        let mut out = Vec::with_capacity(left.0.len() * right.0.len());
        for lw in &left.0 {
            for rw in &right.0 {
                out.push(lw.iter().cloned().chain(rw.iter().cloned()).collect());
            }
        }
        WitnessesAnn(out)
    }

    fn project(&self, _positions: &[usize]) -> Self {
        self.clone()
    }

    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }

    fn normalize(&mut self) {
        self.0 = minimize(std::mem::take(&mut self.0));
    }
}

/// Per-attribute source-location-set annotation: the where-provenance
/// instance, which batches the paper's five forward rules over *all* source
/// locations at once.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocationsAnn(pub Vec<BTreeSet<SourceLoc>>);

impl Annotation for LocationsAnn {
    fn from_scan(tid: Tid, schema: &Schema) -> Self {
        LocationsAnn(
            schema
                .attrs()
                .iter()
                .map(|a| {
                    [SourceLoc::new(tid.clone(), a.clone())]
                        .into_iter()
                        .collect()
                })
                .collect(),
        )
    }

    fn join(left: &Self, right: &Self, layout: &JoinLayout) -> Self {
        // The join rule sends annotations from BOTH operands to a shared
        // output attribute; non-shared attributes come from one side.
        let mut out: Vec<BTreeSet<SourceLoc>> = Vec::with_capacity(layout.out_arity());
        for (i, from_right) in layout.merge_from_right.iter().enumerate() {
            let mut cell = left.0[i].clone();
            if let Some(j) = from_right {
                cell.extend(right.0[*j].iter().cloned());
            }
            out.push(cell);
        }
        for &j in &layout.right_extra {
            out.push(right.0[j].clone());
        }
        LocationsAnn(out)
    }

    fn project(&self, positions: &[usize]) -> Self {
        LocationsAnn(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    fn merge(&mut self, other: Self) {
        for (dst, src) in self.0.iter_mut().zip(other.0) {
            dst.extend(src);
        }
    }
}

/// Flat contributing-tuple-set annotation: Cui–Widom lineage (participation
/// semantics — every source tuple appearing in *some* derivation, minimal or
/// not). Equal to [`ExprAnn`]'s variable set, which the property tests
/// verify.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LineageAnn(pub BTreeSet<Tid>);

impl Annotation for LineageAnn {
    fn from_scan(tid: Tid, _schema: &Schema) -> Self {
        LineageAnn([tid].into_iter().collect())
    }

    fn join(left: &Self, right: &Self, _layout: &JoinLayout) -> Self {
        LineageAnn(left.0.union(&right.0).cloned().collect())
    }

    fn project(&self, _positions: &[usize]) -> Self {
        self.clone()
    }

    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

/// Positive-Boolean-expression annotation: joins multiply (AND), merges add
/// (OR). The prime implicants of the result are exactly the minimal witness
/// basis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExprAnn(pub BoolExpr);

impl Annotation for ExprAnn {
    fn from_scan(tid: Tid, _schema: &Schema) -> Self {
        ExprAnn(BoolExpr::Var(tid))
    }

    fn join(left: &Self, right: &Self, _layout: &JoinLayout) -> Self {
        ExprAnn(left.0.clone().and(right.0.clone()))
    }

    fn project(&self, _positions: &[usize]) -> Self {
        self.clone()
    }

    fn merge(&mut self, other: Self) {
        let existing = std::mem::replace(&mut self.0, BoolExpr::False);
        self.0 = existing.or(other.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{eval_annotated, parse_database, parse_query, tuple};

    fn fixture() -> (dap_relalg::Query, dap_relalg::Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn witness_instance_minimizes() {
        let (q, db) = fixture();
        let ann = eval_annotated::<WitnessesAnn>(&q, &db).unwrap();
        let ws = &ann.annotation_of(&tuple(["bob", "report"])).unwrap().0;
        assert_eq!(ws.len(), 2, "two minimal witnesses via staff and dev");
        for w in ws {
            assert_eq!(w.len(), 2);
        }
    }

    #[test]
    fn location_instance_routes_shared_join_attrs() {
        let (_, db) = fixture();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        let ann = eval_annotated::<LocationsAnn>(&q, &db).unwrap();
        let grp_idx = ann.schema.index_of(&"grp".into()).unwrap();
        let cells = &ann
            .annotation_of(&tuple(["ann", "staff", "report"]))
            .unwrap()
            .0;
        assert_eq!(cells[grp_idx].len(), 2, "shared attr fed from both sides");
    }

    #[test]
    fn lineage_instance_is_participation_semantics() {
        // Π_A(R) ⋈ R over R = {(a,b1),(a,b2)}: the output (a,b1) has the
        // single minimal witness {R#0}, but BOTH rows participate in some
        // derivation — lineage keeps both, unlike the witness support.
        let db = parse_database("relation R(A, B) { (a, b1), (a, b2) }").unwrap();
        let q = dap_relalg::Query::scan("R")
            .project(["A"])
            .join(dap_relalg::Query::scan("R"));
        let lin = eval_annotated::<LineageAnn>(&q, &db).unwrap();
        assert_eq!(lin.annotation_of(&tuple(["a", "b1"])).unwrap().0.len(), 2);
        let why = eval_annotated::<WitnessesAnn>(&q, &db).unwrap();
        let support: BTreeSet<Tid> = why
            .annotation_of(&tuple(["a", "b1"]))
            .unwrap()
            .0
            .iter()
            .flatten()
            .cloned()
            .collect();
        assert_eq!(support.len(), 1);
    }

    #[test]
    fn expr_instance_prime_implicants_match_witnesses() {
        let (q, db) = fixture();
        let exprs = eval_annotated::<ExprAnn>(&q, &db).unwrap();
        let why = eval_annotated::<WitnessesAnn>(&q, &db).unwrap();
        for (t, e) in exprs.iter() {
            assert_eq!(
                e.0.prime_implicants().as_slice(),
                why.annotation_of(t).unwrap().0.as_slice(),
                "mismatch for {t}"
            );
        }
    }
}
