//! An annotation store — the systems side of the paper's motivation.
//!
//! §1: annotators "may not have update privileges to the database so that
//! annotations have to be stored in a separate database", and "a query
//! cannot *see* the annotation, it can only transmit it". This module is
//! that separate database: free-text annotations keyed by source location,
//! plus the machinery to materialize an **annotated view** — every view
//! location paired with the annotations the forward rules deliver to it —
//! and to place new view-level annotations optimally via the placement
//! solvers (which callers invoke; the store only records the outcome).

use crate::location::{SourceLoc, ViewLoc};
use crate::where_prov::where_provenance;
use dap_relalg::{Database, Query, Result, Schema, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database plus out-of-band annotations on its locations.
#[derive(Clone, Debug, Default)]
pub struct AnnotationStore {
    notes: BTreeMap<SourceLoc, Vec<String>>,
}

impl AnnotationStore {
    /// An empty store.
    pub fn new() -> AnnotationStore {
        AnnotationStore::default()
    }

    /// Attach a note to a source location. Returns `false` (and stores
    /// nothing) if the location does not exist in `db`.
    pub fn annotate(&mut self, db: &Database, loc: SourceLoc, note: impl Into<String>) -> bool {
        if !loc.exists_in(db) {
            return false;
        }
        self.notes.entry(loc).or_default().push(note.into());
        true
    }

    /// The notes attached to a location.
    pub fn notes_at(&self, loc: &SourceLoc) -> &[String] {
        self.notes.get(loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of notes.
    pub fn len(&self) -> usize {
        self.notes.values().map(Vec::len).sum()
    }

    /// Whether the store holds no notes.
    pub fn is_empty(&self) -> bool {
        self.notes.is_empty()
    }

    /// All annotated locations.
    pub fn locations(&self) -> impl Iterator<Item = &SourceLoc> {
        self.notes.keys()
    }

    /// Materialize the annotated view of `q`: every output tuple with, per
    /// attribute, the notes that propagate there under the Section 3 rules.
    pub fn annotated_view(&self, q: &Query, db: &Database) -> Result<AnnotatedView> {
        let wp = where_provenance(q, db)?;
        let mut rows = Vec::new();
        for (t, sets) in wp.iter() {
            let mut per_attr: Vec<Vec<&str>> = Vec::with_capacity(sets.len());
            for locs in sets {
                let mut notes: Vec<&str> = Vec::new();
                for loc in locs {
                    for n in self.notes_at(loc) {
                        notes.push(n.as_str());
                    }
                }
                notes.sort_unstable();
                notes.dedup();
                per_attr.push(notes);
            }
            rows.push((t.clone(), per_attr));
        }
        Ok(AnnotatedView {
            schema: wp.schema.clone(),
            rows: rows
                .into_iter()
                .map(|(t, per_attr)| AnnotatedRow {
                    tuple: t,
                    notes: per_attr
                        .into_iter()
                        .map(|ns| ns.into_iter().map(String::from).collect())
                        .collect(),
                })
                .collect(),
        })
    }

    /// The view locations that currently carry at least one note under `q`.
    pub fn annotated_view_locations(&self, q: &Query, db: &Database) -> Result<BTreeSet<ViewLoc>> {
        let view = self.annotated_view(q, db)?;
        let mut out = BTreeSet::new();
        for row in &view.rows {
            for (idx, notes) in row.notes.iter().enumerate() {
                if !notes.is_empty() {
                    out.insert(ViewLoc::new(
                        row.tuple.clone(),
                        view.schema.attrs()[idx].clone(),
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// One row of an annotated view: the tuple plus per-attribute note lists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnnotatedRow {
    /// The output tuple.
    pub tuple: Tuple,
    /// Notes per schema position (deduplicated, sorted).
    pub notes: Vec<Vec<String>>,
}

/// A materialized view with annotations attached to its locations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnnotatedView {
    /// The view schema.
    pub schema: Schema,
    /// The annotated rows, in sorted tuple order.
    pub rows: Vec<AnnotatedRow>,
}

impl AnnotatedView {
    /// The notes visible at `(t, attr)`.
    pub fn notes_at(&self, t: &Tuple, attr: &dap_relalg::Attr) -> Option<&[String]> {
        let idx = self.schema.index_of(attr)?;
        self.rows
            .iter()
            .find(|r| &r.tuple == t)
            .map(|r| r.notes[idx].as_slice())
    }
}

impl fmt::Display for AnnotatedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            write!(f, "{}", row.tuple)?;
            let mut any = false;
            for (idx, notes) in row.notes.iter().enumerate() {
                for n in notes {
                    if !any {
                        write!(f, "   [")?;
                        any = true;
                    } else {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}: {n}", self.schema.attrs()[idx])?;
                }
            }
            if any {
                write!(f, "]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple, Tid};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn annotate_and_read_back() {
        let (_, db) = fixture();
        let mut store = AnnotationStore::new();
        let loc = SourceLoc::new(
            db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap(),
            "user",
        );
        assert!(store.annotate(&db, loc.clone(), "spelling?"));
        assert!(store.annotate(&db, loc.clone(), "verified 2026-06"));
        assert_eq!(store.notes_at(&loc), ["spelling?", "verified 2026-06"]);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn rejects_nonexistent_locations() {
        let (_, db) = fixture();
        let mut store = AnnotationStore::new();
        assert!(!store.annotate(&db, SourceLoc::new(Tid::new("UserGroup", 99), "user"), "x"));
        assert!(!store.annotate(&db, SourceLoc::new(Tid::new("UserGroup", 0), "nope"), "x"));
        assert!(store.is_empty());
    }

    #[test]
    fn annotated_view_carries_notes_forward() {
        let (q, db) = fixture();
        let mut store = AnnotationStore::new();
        let loc = SourceLoc::new(
            db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap(),
            "user",
        );
        store.annotate(&db, loc, "check identity");
        let view = store.annotated_view(&q, &db).unwrap();
        // (bob, main).user and (bob, report).user both receive the note.
        assert_eq!(
            view.notes_at(&tuple(["bob", "main"]), &"user".into())
                .unwrap(),
            ["check identity"]
        );
        assert_eq!(
            view.notes_at(&tuple(["bob", "report"]), &"user".into())
                .unwrap(),
            ["check identity"]
        );
        // ann's rows stay clean.
        assert!(view
            .notes_at(&tuple(["ann", "report"]), &"user".into())
            .unwrap()
            .is_empty());
        // The file attribute is untouched.
        assert!(view
            .notes_at(&tuple(["bob", "main"]), &"file".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn annotation_on_projected_away_attr_is_invisible() {
        let (q, db) = fixture();
        let mut store = AnnotationStore::new();
        let loc = SourceLoc::new(
            db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap(),
            "grp",
        );
        store.annotate(&db, loc, "ghost note");
        let locations = store.annotated_view_locations(&q, &db).unwrap();
        assert!(locations.is_empty(), "grp is projected away");
    }

    #[test]
    fn duplicate_notes_collapse_per_location() {
        let (q, db) = fixture();
        let mut store = AnnotationStore::new();
        // The same note text from two sources that merge at one view
        // location: (bob, report).user receives it through staff AND dev.
        for grp in ["staff", "dev"] {
            let loc = SourceLoc::new(
                db.tid_of("UserGroup", &tuple(["bob", grp])).unwrap(),
                "user",
            );
            store.annotate(&db, loc, "dup");
        }
        let view = store.annotated_view(&q, &db).unwrap();
        assert_eq!(
            view.notes_at(&tuple(["bob", "report"]), &"user".into())
                .unwrap(),
            ["dup"],
            "same text deduplicates at the merged location"
        );
    }

    #[test]
    fn display_lists_annotated_cells() {
        let (q, db) = fixture();
        let mut store = AnnotationStore::new();
        let loc = SourceLoc::new(
            db.tid_of("GroupFile", &tuple(["dev", "main"])).unwrap(),
            "file",
        );
        store.annotate(&db, loc, "stale?");
        let view = store.annotated_view(&q, &db).unwrap();
        let text = view.to_string();
        assert!(
            text.contains("(bob, main)   [file: stale?]"),
            "got:\n{text}"
        );
    }
}
