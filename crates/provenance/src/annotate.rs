//! Forward annotation propagation — the paper's Section 3 rules, implemented
//! *forwards* (an annotation is planted on one source location and carried
//! through the operator tree).
//!
//! This is deliberately an independent implementation from
//! [`crate::where_prov`], which computes the same relation backwards; the two
//! are cross-checked in tests and property tests. The forward direction is
//! also what an annotation *system* (the paper's motivating scenario —
//! biological annotation servers) would execute at query time.
//!
//! The rules, verbatim from the paper:
//!
//! * **Selection**: `(R, t', A)` propagates to `(σ_C(R), t, A)` if `t = t'`.
//! * **Projection**: `(R, t', A)` propagates to `(Π_B(R), t, A)` if `A ∈ B`
//!   and `t'.B = t`.
//! * **Join**: `(R1, t1, A)` (or `(R2, t2, A)`) propagates to
//!   `(R1 ⋈ R2, t, A)` if `t.R1 = t1` (or `t.R2 = t2`).
//! * **Union**: `(R1, t1, A)` (or `(R2, t2, A)`) propagates to
//!   `(R1 ∪ R2, t, A)` if `t = t1` (or `t = t2`).
//! * **Renaming**: `(R, t, A)` propagates to `(δ_θ(R), t', θ(A))` if `t' = t`.

use crate::location::{SourceLoc, ViewLoc};
use dap_relalg::{output_schema, Attr, Database, Query, Result, Schema, Tid, Tuple};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The result of propagating one source annotation forward: every view
/// location that carries it.
///
/// This walks the whole operator tree **per source location** — it is the
/// independent reference implementation the tests cross-check against. Hot
/// paths that ask about many locations should use [`propagate_all`], which
/// answers for *every* source location in one batched pass.
pub fn propagate(q: &Query, db: &Database, src: &SourceLoc) -> Result<BTreeSet<ViewLoc>> {
    let catalog = db.catalog();
    output_schema(q, &catalog)?;
    let (schema, map) = walk(q, db, src)?;
    let mut out = BTreeSet::new();
    for (t, marks) in map {
        for (idx, marked) in marks.iter().enumerate() {
            if *marked {
                out.insert(ViewLoc::new(t.clone(), schema.attrs()[idx].clone()));
            }
        }
    }
    Ok(out)
}

/// Forward propagation of **every** source location at once: one pass of the
/// generic annotated evaluator (the batched [`crate::where_provenance`]
/// instance), inverted into a source-location → reached-view-locations
/// index. Replaces `propagate`-per-location loops — the annotation-placement
/// hot path drops from `O(|locations|)` tree walks to one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PropagationIndex {
    /// The view's schema.
    pub schema: Schema,
    map: BTreeMap<SourceLoc, BTreeSet<ViewLoc>>,
}

impl PropagationIndex {
    /// The view locations reached from `src`, if any annotation placed on
    /// `src` reaches the view at all.
    pub fn reached(&self, src: &SourceLoc) -> Option<&BTreeSet<ViewLoc>> {
        self.map.get(src)
    }

    /// Like [`PropagationIndex::reached`], but owned and empty-defaulting —
    /// drop-in for a [`propagate`] call.
    pub fn reached_from(&self, src: &SourceLoc) -> BTreeSet<ViewLoc> {
        self.map.get(src).cloned().unwrap_or_default()
    }

    /// Iterate over `(source location, reached view locations)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SourceLoc, &BTreeSet<ViewLoc>)> {
        self.map.iter()
    }

    /// Number of source locations that reach the view.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no source location reaches the view.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Propagate annotations from **all** source locations through `q` in one
/// batched pass (see [`PropagationIndex`]).
pub fn propagate_all(q: &Query, db: &Database) -> Result<PropagationIndex> {
    let wp = crate::where_prov::where_provenance(q, db)?;
    Ok(PropagationIndex {
        map: wp.inverted(),
        schema: wp.schema,
    })
}

/// Marks per attribute position: `true` where the annotation is present.
type Marks = Vec<bool>;
type AnnMap = BTreeMap<Tuple, Marks>;

fn or_into(dst: &mut Marks, src: &Marks) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= *s;
    }
}

fn walk(q: &Query, db: &Database, src: &SourceLoc) -> Result<(Schema, AnnMap)> {
    match q {
        Query::Scan(rel) => {
            let r = db.require(rel)?;
            let attrs = r.schema().attrs().to_vec();
            let map = r
                .tuples()
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    let tid = Tid {
                        rel: r.name().clone(),
                        row,
                    };
                    let marks: Marks = attrs
                        .iter()
                        .map(|a| tid == src.tid && *a == src.attr)
                        .collect();
                    (t.clone(), marks)
                })
                .collect();
            Ok((r.schema().clone(), map))
        }
        Query::Select { input, pred } => {
            let (schema, map) = walk(input, db, src)?;
            let mut out = AnnMap::new();
            for (t, marks) in map {
                if pred.eval(&schema, &t)? {
                    out.insert(t, marks);
                }
            }
            Ok((schema, out))
        }
        Query::Project { input, attrs } => {
            let (schema, map) = walk(input, db, src)?;
            let out_schema = schema.project(attrs)?;
            let positions = schema.positions_of(attrs)?;
            let mut out = AnnMap::new();
            for (t, marks) in map {
                let key = t.project_positions(&positions);
                let kept: Marks = positions.iter().map(|&i| marks[i]).collect();
                out.entry(key)
                    .and_modify(|existing| or_into(existing, &kept))
                    .or_insert(kept);
            }
            Ok((out_schema, out))
        }
        Query::Join { left, right } => {
            let (ls, lmap) = walk(left, db, src)?;
            let (rs, rmap) = walk(right, db, src)?;
            let shared: Vec<Attr> = ls.shared_with(&rs);
            let out_schema = ls.join_with(&rs);
            let l_keys: Vec<usize> = shared
                .iter()
                .map(|a| ls.index_of(a).expect("shared"))
                .collect();
            let r_keys: Vec<usize> = shared
                .iter()
                .map(|a| rs.index_of(a).expect("shared"))
                .collect();
            let r_extra: Vec<usize> = rs
                .attrs()
                .iter()
                .enumerate()
                .filter(|(_, a)| !ls.contains(a))
                .map(|(i, _)| i)
                .collect();
            let merge_from_right: Vec<Option<usize>> =
                ls.attrs().iter().map(|a| rs.index_of(a)).collect();
            let mut table: HashMap<Vec<dap_relalg::Value>, Vec<(&Tuple, &Marks)>> =
                HashMap::with_capacity(rmap.len());
            for (t, marks) in &rmap {
                let key = r_keys.iter().map(|&i| t.get(i).clone()).collect::<Vec<_>>();
                table.entry(key).or_default().push((t, marks));
            }
            let mut out = AnnMap::new();
            for (lt, lmarks) in &lmap {
                let key = l_keys
                    .iter()
                    .map(|&i| lt.get(i).clone())
                    .collect::<Vec<_>>();
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for (rt, rmarks) in matches {
                    let joined = lt.join_concat(rt, &r_extra);
                    let mut marks: Marks = Vec::with_capacity(out_schema.arity());
                    for (i, from_right) in merge_from_right.iter().enumerate() {
                        let mut m = lmarks[i];
                        if let Some(j) = from_right {
                            m |= rmarks[*j];
                        }
                        marks.push(m);
                    }
                    for &j in &r_extra {
                        marks.push(rmarks[j]);
                    }
                    out.entry(joined)
                        .and_modify(|existing| or_into(existing, &marks))
                        .or_insert(marks);
                }
            }
            Ok((out_schema, out))
        }
        Query::Union { left, right } => {
            let (ls, lmap) = walk(left, db, src)?;
            let (rs, rmap) = walk(right, db, src)?;
            let positions = rs.positions_of(ls.attrs())?;
            let mut out = lmap;
            for (t, marks) in rmap {
                let aligned_tuple = t.project_positions(&positions);
                let aligned_marks: Marks = positions.iter().map(|&i| marks[i]).collect();
                out.entry(aligned_tuple)
                    .and_modify(|existing| or_into(existing, &aligned_marks))
                    .or_insert(aligned_marks);
            }
            Ok((ls, out))
        }
        Query::Rename { input, mapping } => {
            let (schema, map) = walk(input, db, src)?;
            Ok((schema.rename(mapping)?, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::where_prov::where_provenance;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    fn src(db: &Database, rel: &str, t: &Tuple, attr: &str) -> SourceLoc {
        SourceLoc::new(db.tid_of(rel, t).unwrap(), attr)
    }

    #[test]
    fn annotation_on_user_reaches_both_files() {
        let (q, db) = fixture();
        let s = src(&db, "UserGroup", &tuple(["bob", "dev"]), "user");
        let reached = propagate(&q, &db, &s).unwrap();
        // (bob,dev).user flows to bob's rows derived via dev: both main and
        // report.
        assert_eq!(reached.len(), 2);
        assert!(reached.contains(&ViewLoc::new(tuple(["bob", "main"]), "user")));
        assert!(reached.contains(&ViewLoc::new(tuple(["bob", "report"]), "user")));
    }

    #[test]
    fn annotation_on_projected_away_attr_disappears() {
        let (q, db) = fixture();
        let s = src(&db, "UserGroup", &tuple(["bob", "dev"]), "grp");
        assert!(propagate(&q, &db, &s).unwrap().is_empty());
    }

    #[test]
    fn annotation_on_nonexistent_location_reaches_nothing() {
        let (q, db) = fixture();
        let s = SourceLoc::new(Tid::new("UserGroup", 99), "user");
        assert!(propagate(&q, &db, &s).unwrap().is_empty());
    }

    #[test]
    fn forward_propagation_agrees_with_inverted_where_provenance() {
        // The structural consistency check: forward rules = backward rules.
        let (q, db) = fixture();
        let wp = where_provenance(&q, &db).unwrap();
        for tid in db.all_tids() {
            let r = db.get(tid.rel.as_str()).unwrap();
            for a in r.schema().attrs() {
                let s = SourceLoc::new(tid.clone(), a.clone());
                assert_eq!(
                    propagate(&q, &db, &s).unwrap(),
                    wp.reached_from(&s),
                    "disagreement for source location {s}"
                );
            }
        }
    }

    #[test]
    fn rename_moves_annotation_to_new_attribute_name() {
        let db = parse_database("relation R(A) { (v) }").unwrap();
        let q = parse_query("rename(scan R, {A -> X})").unwrap();
        let s = SourceLoc::new(db.tid_of("R", &tuple(["v"])).unwrap(), "A");
        let reached = propagate(&q, &db, &s).unwrap();
        assert_eq!(reached.len(), 1);
        assert!(reached.contains(&ViewLoc::new(tuple(["v"]), "X")));
    }

    #[test]
    fn union_spreads_annotation_to_merged_tuple() {
        let db = parse_database(
            "relation R(A) { (v) }
             relation S(A) { (v) }",
        )
        .unwrap();
        let q = parse_query("union(scan R, scan S)").unwrap();
        let s = SourceLoc::new(db.tid_of("S", &tuple(["v"])).unwrap(), "A");
        let reached = propagate(&q, &db, &s).unwrap();
        assert_eq!(reached.len(), 1, "the merged (v) carries the S annotation");
    }

    #[test]
    fn join_shared_attribute_from_either_side() {
        let (_, db) = fixture();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        let t = tuple(["ann", "staff", "report"]);
        let from_left = src(&db, "UserGroup", &tuple(["ann", "staff"]), "grp");
        let from_right = src(&db, "GroupFile", &tuple(["staff", "report"]), "grp");
        let reached_l = propagate(&q, &db, &from_left).unwrap();
        let reached_r = propagate(&q, &db, &from_right).unwrap();
        let view_loc = ViewLoc::new(t, "grp");
        assert!(reached_l.contains(&view_loc));
        assert!(reached_r.contains(&view_loc));
    }

    #[test]
    fn selection_with_explicit_equality_does_not_copy() {
        let db = parse_database("relation R(A, B) { (v, v) }").unwrap();
        let q = parse_query("select(scan R, A = B)").unwrap();
        let s = SourceLoc::new(db.tid_of("R", &tuple(["v", "v"])).unwrap(), "A");
        let reached = propagate(&q, &db, &s).unwrap();
        assert_eq!(reached.len(), 1);
        assert!(reached.contains(&ViewLoc::new(tuple(["v", "v"]), "A")));
        assert!(!reached.contains(&ViewLoc::new(tuple(["v", "v"]), "B")));
    }
}
