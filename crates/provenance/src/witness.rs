//! Witnesses — the paper's footnote 4: "A witness for a tuple `t` in a view
//! is a minimal subset `S'` of source data `S` such that `t ∈ Q(S')`".
//!
//! For a monotone query, `t ∈ Q(S \ T)` iff some minimal witness of `t`
//! survives `T` intact. Deletion propagation is therefore hitting-set
//! structure over minimal witnesses, which is why this module is the
//! foundation of the deletion solvers in `dap-core`.

use dap_relalg::{eval, Database, Query, Result, Tid, Tuple};
use std::collections::BTreeSet;

/// A set of source tuples sufficient to produce some output tuple.
pub type Witness = BTreeSet<Tid>;

/// Remove duplicates and non-minimal (superset) witnesses. The result is
/// sorted and contains only inclusion-minimal sets.
pub fn minimize(mut witnesses: Vec<Witness>) -> Vec<Witness> {
    // Sort by size so any superset appears after one of its subsets.
    witnesses.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    witnesses.dedup();
    let mut minimal: Vec<Witness> = Vec::with_capacity(witnesses.len());
    'outer: for w in witnesses {
        for kept in &minimal {
            // Distinct same-size sets (dedup removed equals) can't be
            // subsets — only strictly smaller kept sets need the check.
            // Skipping them makes the common all-singletons case linear.
            if kept.len() >= w.len() {
                break;
            }
            if kept.is_subset(&w) {
                continue 'outer;
            }
        }
        minimal.push(w);
    }
    minimal.sort();
    minimal
}

/// Whether `candidate` is a *sufficient* set for `t`: `t ∈ Q(candidate)`.
/// (A witness in the paper's sense is additionally minimal; see
/// [`is_minimal_witness`].)
pub fn is_sufficient(
    q: &Query,
    db: &Database,
    candidate: &BTreeSet<Tid>,
    t: &Tuple,
) -> Result<bool> {
    let restricted = db.restrict(candidate);
    Ok(eval(q, &restricted)?.contains(t))
}

/// Whether `candidate` is a minimal witness for `t`: sufficient, and no
/// proper subset is sufficient (checked by dropping one element at a time —
/// correct for monotone queries).
pub fn is_minimal_witness(
    q: &Query,
    db: &Database,
    candidate: &BTreeSet<Tid>,
    t: &Tuple,
) -> Result<bool> {
    if !is_sufficient(q, db, candidate, t)? {
        return Ok(false);
    }
    for drop in candidate {
        let mut smaller = candidate.clone();
        smaller.remove(drop);
        if is_sufficient(q, db, &smaller, t)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Union of all tuples appearing in any of the `witnesses` — the candidate
/// pool for deletions targeting the witnessed tuple.
pub fn support(witnesses: &[Witness]) -> BTreeSet<Tid> {
    witnesses.iter().flatten().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn minimize_removes_supersets_and_dupes() {
        let w = |tids: &[(&str, usize)]| -> Witness {
            tids.iter().map(|(r, i)| Tid::new(*r, *i)).collect()
        };
        let a = w(&[("R", 0)]);
        let ab = w(&[("R", 0), ("R", 1)]);
        let c = w(&[("R", 2)]);
        let out = minimize(vec![ab.clone(), a.clone(), c.clone(), a.clone()]);
        assert_eq!(out, vec![a, c]);
    }

    #[test]
    fn minimize_keeps_incomparable_sets() {
        let w = |tids: &[usize]| -> Witness { tids.iter().map(|i| Tid::new("R", *i)).collect() };
        let out = minimize(vec![w(&[0, 1]), w(&[1, 2]), w(&[0, 2])]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn sufficiency_and_minimality() {
        let (q, db) = fixture();
        let t = dap_relalg::tuple(["bob", "report"]);
        let ug_bob_staff = db
            .tid_of("UserGroup", &dap_relalg::tuple(["bob", "staff"]))
            .unwrap();
        let gf_staff = db
            .tid_of("GroupFile", &dap_relalg::tuple(["staff", "report"]))
            .unwrap();
        let ug_bob_dev = db
            .tid_of("UserGroup", &dap_relalg::tuple(["bob", "dev"]))
            .unwrap();

        let w: Witness = [ug_bob_staff.clone(), gf_staff.clone()]
            .into_iter()
            .collect();
        assert!(is_sufficient(&q, &db, &w, &t).unwrap());
        assert!(is_minimal_witness(&q, &db, &w, &t).unwrap());

        // A proper superset is sufficient but not minimal.
        let bigger: Witness = [ug_bob_staff.clone(), gf_staff.clone(), ug_bob_dev]
            .into_iter()
            .collect();
        assert!(is_sufficient(&q, &db, &bigger, &t).unwrap());
        assert!(!is_minimal_witness(&q, &db, &bigger, &t).unwrap());

        // Half a witness is not sufficient.
        let half: Witness = [ug_bob_staff].into_iter().collect();
        assert!(!is_sufficient(&q, &db, &half, &t).unwrap());
        assert!(!is_minimal_witness(&q, &db, &half, &t).unwrap());
    }

    #[test]
    fn support_unions_everything() {
        let w = |tids: &[usize]| -> Witness { tids.iter().map(|i| Tid::new("R", *i)).collect() };
        let s = support(&[w(&[0, 1]), w(&[1, 2])]);
        assert_eq!(s.len(), 3);
    }
}
