//! Why-provenance: the minimal-witness basis of every output tuple.
//!
//! This is the form of provenance the paper identifies with the **deletion**
//! problem (Section 1 and \[7\]): an output tuple survives a source deletion
//! `T` iff at least one of its minimal witnesses is disjoint from `T`.
//!
//! The computation runs on the generic annotated evaluator
//! ([`dap_relalg::eval_annotated`]) with the [`WitnessesAnn`] instance:
//! witness sets propagate through each operator and only inclusion-minimal
//! sets survive each step (sound for monotone queries — see the module
//! tests, which cross-check against brute-force witness verification).
//! `why_provenance_legacy` (cargo feature `legacy-oracles`) preserves the
//! original standalone walk as the differential-test oracle.

use crate::engine::WitnessesAnn;
#[cfg(feature = "legacy-oracles")]
use crate::witness::minimize;
use crate::witness::Witness;
use dap_relalg::{eval_annotated, Database, Query, Result, Schema, Tuple};
#[cfg(feature = "legacy-oracles")]
use dap_relalg::{output_schema, Attr, Tid};
use std::collections::BTreeMap;
#[cfg(feature = "legacy-oracles")]
use std::collections::HashMap;

/// The why-provenance of a whole view: for each output tuple, its minimal
/// witnesses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WhyProvenance {
    /// The view's schema.
    pub schema: Schema,
    map: BTreeMap<Tuple, Vec<Witness>>,
}

impl WhyProvenance {
    /// The output tuples, in sorted order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.map.keys()
    }

    /// Iterate over `(tuple, minimal witnesses)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &[Witness])> {
        self.map.iter().map(|(t, ws)| (t, ws.as_slice()))
    }

    /// The minimal witnesses of `t`, if `t` is in the view.
    pub fn witnesses_of(&self, t: &Tuple) -> Option<&[Witness]> {
        self.map.get(t).map(Vec::as_slice)
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of minimal witnesses across all output tuples (a size
    /// measure used by the benches).
    pub fn total_witnesses(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Assemble from precomputed `(tuple, minimal witnesses)` rows — the
    /// path a maintained `MaterializedPlan<WitnessesAnn>` uses to expose
    /// its current output as a [`WhyProvenance`] without re-evaluating.
    pub fn from_parts(
        schema: Schema,
        rows: impl IntoIterator<Item = (Tuple, Vec<Witness>)>,
    ) -> WhyProvenance {
        WhyProvenance {
            schema,
            map: rows.into_iter().collect(),
        }
    }

    /// Drop `t` from the view (a deletion side effect). Returns whether it
    /// was present.
    pub fn remove_tuple(&mut self, t: &Tuple) -> bool {
        self.map.remove(t).is_some()
    }

    /// Replace (or insert) the minimal witness basis of `t` — the patch a
    /// source deletion applies when some but not all of `t`'s derivations
    /// died.
    pub fn set_witnesses(&mut self, t: &Tuple, ws: Vec<Witness>) {
        self.map.insert(t.clone(), ws);
    }
}

/// Compute the why-provenance (minimal witness basis) of every output tuple
/// of `q` on `db`, in one pass of the generic annotated evaluator.
pub fn why_provenance(q: &Query, db: &Database) -> Result<WhyProvenance> {
    let (schema, tuples, annots) = eval_annotated::<WitnessesAnn>(q, db)?.into_parts();
    let map = tuples
        .into_iter()
        .zip(annots.into_iter().map(|a| a.0))
        .collect();
    Ok(WhyProvenance { schema, map })
}

/// The original standalone witness walk, kept as the reference oracle for
/// the differential property tests (`tests/prop_provenance.rs`). Prefer
/// [`why_provenance`], which computes the same result on the shared engine.
#[cfg(feature = "legacy-oracles")]
pub fn why_provenance_legacy(q: &Query, db: &Database) -> Result<WhyProvenance> {
    let catalog = db.catalog();
    output_schema(q, &catalog)?;
    let (schema, map) = walk(q, db)?;
    Ok(WhyProvenance { schema, map })
}

/// The minimal witnesses of a single output tuple (empty if `t` is not in
/// the view).
pub fn minimal_witnesses(q: &Query, db: &Database, t: &Tuple) -> Result<Vec<Witness>> {
    Ok(why_provenance(q, db)?
        .witnesses_of(t)
        .map(<[Witness]>::to_vec)
        .unwrap_or_default())
}

#[cfg(feature = "legacy-oracles")]
type AnnMap = BTreeMap<Tuple, Vec<Witness>>;

#[cfg(feature = "legacy-oracles")]
fn walk(q: &Query, db: &Database) -> Result<(Schema, AnnMap)> {
    match q {
        Query::Scan(rel) => {
            let r = db.require(rel)?;
            let map = r
                .tuples()
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    let w: Witness = [Tid {
                        rel: r.name().clone(),
                        row,
                    }]
                    .into_iter()
                    .collect();
                    (t.clone(), vec![w])
                })
                .collect();
            Ok((r.schema().clone(), map))
        }
        Query::Select { input, pred } => {
            let (schema, map) = walk(input, db)?;
            let mut out = AnnMap::new();
            for (t, ws) in map {
                if pred.eval(&schema, &t)? {
                    out.insert(t, ws);
                }
            }
            Ok((schema, out))
        }
        Query::Project { input, attrs } => {
            let (schema, map) = walk(input, db)?;
            let out_schema = schema.project(attrs)?;
            let positions = schema.positions_of(attrs)?;
            let mut out = AnnMap::new();
            for (t, ws) in map {
                let key = t.project_positions(&positions);
                out.entry(key).or_default().extend(ws);
            }
            for ws in out.values_mut() {
                *ws = minimize(std::mem::take(ws));
            }
            Ok((out_schema, out))
        }
        Query::Join { left, right } => {
            let (ls, lmap) = walk(left, db)?;
            let (rs, rmap) = walk(right, db)?;
            let shared: Vec<Attr> = ls.shared_with(&rs);
            let out_schema = ls.join_with(&rs);
            let l_keys: Vec<usize> = shared
                .iter()
                .map(|a| ls.index_of(a).expect("shared"))
                .collect();
            let r_keys: Vec<usize> = shared
                .iter()
                .map(|a| rs.index_of(a).expect("shared"))
                .collect();
            let r_extra: Vec<usize> = rs
                .attrs()
                .iter()
                .enumerate()
                .filter(|(_, a)| !ls.contains(a))
                .map(|(i, _)| i)
                .collect();
            let mut table: HashMap<Vec<dap_relalg::Value>, Vec<(&Tuple, &Vec<Witness>)>> =
                HashMap::with_capacity(rmap.len());
            for (t, ws) in &rmap {
                let key = r_keys.iter().map(|&i| t.get(i).clone()).collect::<Vec<_>>();
                table.entry(key).or_default().push((t, ws));
            }
            let mut out = AnnMap::new();
            for (lt, lws) in &lmap {
                let key = l_keys
                    .iter()
                    .map(|&i| lt.get(i).clone())
                    .collect::<Vec<_>>();
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for (rt, rws) in matches {
                    let joined = lt.join_concat(rt, &r_extra);
                    let combined: Vec<Witness> = lws
                        .iter()
                        .flat_map(|lw| {
                            rws.iter().map(move |rw| {
                                lw.iter().cloned().chain(rw.iter().cloned()).collect()
                            })
                        })
                        .collect();
                    out.entry(joined).or_default().extend(combined);
                }
            }
            for ws in out.values_mut() {
                *ws = minimize(std::mem::take(ws));
            }
            Ok((out_schema, out))
        }
        Query::Union { left, right } => {
            let (ls, lmap) = walk(left, db)?;
            let (rs, rmap) = walk(right, db)?;
            let positions = rs.positions_of(ls.attrs())?;
            let mut out = lmap;
            for (t, ws) in rmap {
                let aligned = t.project_positions(&positions);
                out.entry(aligned).or_default().extend(ws);
            }
            for ws in out.values_mut() {
                *ws = minimize(std::mem::take(ws));
            }
            Ok((ls, out))
        }
        Query::Rename { input, mapping } => {
            let (schema, map) = walk(input, db)?;
            Ok((schema.rename(mapping)?, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::{is_minimal_witness, is_sufficient};
    use dap_relalg::{eval, parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn tuples_match_plain_eval() {
        let (q, db) = fixture();
        let why = why_provenance(&q, &db).unwrap();
        let plain = eval(&q, &db).unwrap();
        let why_tuples: Vec<_> = why.tuples().cloned().collect();
        assert_eq!(why_tuples, plain.tuples);
        assert_eq!(why.schema, plain.schema);
    }

    #[test]
    fn projection_merges_witnesses() {
        let (q, db) = fixture();
        let why = why_provenance(&q, &db).unwrap();
        // (bob, report) derives via staff AND via dev: two minimal witnesses.
        let ws = why.witnesses_of(&tuple(["bob", "report"])).unwrap();
        assert_eq!(ws.len(), 2);
        // (ann, report) has exactly one.
        let ws = why.witnesses_of(&tuple(["ann", "report"])).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].len(), 2, "a join witness has one tuple per relation");
    }

    #[test]
    fn every_reported_witness_is_minimal_and_sufficient() {
        let (q, db) = fixture();
        let why = why_provenance(&q, &db).unwrap();
        for (t, ws) in why.iter() {
            assert!(!ws.is_empty());
            for w in ws {
                assert!(
                    is_sufficient(&q, &db, w, t).unwrap(),
                    "witness {w:?} for {t}"
                );
                assert!(
                    is_minimal_witness(&q, &db, w, t).unwrap(),
                    "minimality of {w:?} for {t}"
                );
            }
        }
    }

    #[test]
    fn scan_witnesses_are_singletons() {
        let (_, db) = fixture();
        let q = Query::scan("UserGroup");
        let why = why_provenance(&q, &db).unwrap();
        for (_, ws) in why.iter() {
            assert_eq!(ws.len(), 1);
            assert_eq!(ws[0].len(), 1);
        }
    }

    #[test]
    fn union_merges_across_branches() {
        let db = parse_database(
            "relation R(A) { (v), (w) }
             relation S(A) { (v) }",
        )
        .unwrap();
        let q = parse_query("union(scan R, scan S)").unwrap();
        let why = why_provenance(&q, &db).unwrap();
        // (v) has two singleton witnesses: one from R, one from S.
        assert_eq!(why.witnesses_of(&tuple(["v"])).unwrap().len(), 2);
        assert_eq!(why.witnesses_of(&tuple(["w"])).unwrap().len(), 1);
    }

    #[test]
    fn self_join_witnesses_stay_minimal() {
        let db = parse_database("relation R(A, B) { (a, b1), (a, b2) }").unwrap();
        // Π_A(R) ⋈ R: each output tuple's witness should not need both rows.
        let q = Query::scan("R").project(["A"]).join(Query::scan("R"));
        let why = why_provenance(&q, &db).unwrap();
        for (t, ws) in why.iter() {
            for w in ws {
                assert!(is_minimal_witness(&q, &db, w, t).unwrap());
            }
        }
        // (a,b1): {R#0} alone suffices (it matches itself through Π_A).
        let ws = why.witnesses_of(&tuple(["a", "b1"])).unwrap();
        assert_eq!(ws.iter().map(|w| w.len()).min(), Some(1));
    }

    #[test]
    fn select_filters_witness_map() {
        let (_, db) = fixture();
        let q = parse_query("select(scan UserGroup, user = 'bob')").unwrap();
        let why = why_provenance(&q, &db).unwrap();
        assert_eq!(why.len(), 2);
        assert!(why.witnesses_of(&tuple(["ann", "staff"])).is_none());
    }

    #[test]
    fn rename_keeps_witnesses() {
        let (_, db) = fixture();
        let q = parse_query("rename(scan UserGroup, {user -> member})").unwrap();
        let why = why_provenance(&q, &db).unwrap();
        assert_eq!(why.len(), 3);
        assert!(why.schema.contains(&"member".into()));
    }

    #[test]
    fn missing_tuple_has_no_witnesses() {
        let (q, db) = fixture();
        assert!(minimal_witnesses(&q, &db, &tuple(["zz", "zz"]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn total_witnesses_counts() {
        let (q, db) = fixture();
        let why = why_provenance(&q, &db).unwrap();
        // ann/report:1, bob/report:2, bob/main:1 → 4.
        assert_eq!(why.total_witnesses(), 4);
    }
}
