//! Cui–Widom-style lineage — the related-work baseline (\[14, 15\] in the
//! paper).
//!
//! The lineage of an output tuple `t` is, per source relation, the set of
//! tuples that participate in *some* derivation of `t`. For the monotone
//! fragment this is exactly the union of `t`'s minimal witnesses, grouped by
//! relation. The paper's Section 1 notes that \[14\] uses lineage "as a
//! starting point, to enumerate all candidate witnesses for a deletion" —
//! `dap-core::deletion` implements that enumeration as the baseline the
//! ablation bench compares against.

use crate::engine::LineageAnn;
use crate::why::{why_provenance, WhyProvenance};
use crate::witness::Witness;
use dap_relalg::{eval_annotated, Database, Query, RelName, Result, Tid, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Per-relation contributing tuples for one output tuple.
pub type Lineage = BTreeMap<RelName, BTreeSet<Tid>>;

/// Compute the lineage of `t` (empty if `t` is not in the view).
pub fn lineage(q: &Query, db: &Database, t: &Tuple) -> Result<Lineage> {
    let why = why_provenance(q, db)?;
    Ok(lineage_from_why(&why, t))
}

/// Lineage extracted from an already-computed why-provenance.
pub fn lineage_from_why(why: &WhyProvenance, t: &Tuple) -> Lineage {
    let mut out = Lineage::new();
    if let Some(witnesses) = why.witnesses_of(t) {
        for w in witnesses {
            for tid in w {
                out.entry(tid.rel.clone()).or_default().insert(tid.clone());
            }
        }
    }
    out
}

/// Flatten a lineage into a single tuple-id set — the candidate pool for
/// deletion search.
pub fn lineage_support(l: &Lineage) -> BTreeSet<Tid> {
    l.values().flatten().cloned().collect()
}

/// The **participation lineage** of every output tuple, computed in one pass
/// of the generic annotated evaluator (the `TidSet` instance): all source
/// tuples appearing in *some* derivation, minimal or not. This is Cui–Widom
/// lineage proper and equals the variable set of the tuple's Boolean
/// lineage expression; it is a superset of [`lineage_support`] of the
/// minimal-witness lineage (strictly larger exactly when a tuple
/// participates only in non-minimal derivations, e.g. through self-joins).
pub fn participating_tids(q: &Query, db: &Database) -> Result<BTreeMap<Tuple, BTreeSet<Tid>>> {
    let (_, tuples, annots) = eval_annotated::<LineageAnn>(q, db)?.into_parts();
    Ok(tuples
        .into_iter()
        .zip(annots.into_iter().map(|a| a.0))
        .collect())
}

/// The size of a lineage (total contributing tuples across relations).
pub fn lineage_size(l: &Lineage) -> usize {
    l.values().map(BTreeSet::len).sum()
}

/// All witnesses (not only minimal ones) contained in the lineage candidate
/// pool, enumerated the way the lineage-based baseline of \[14\] does:
/// try every subset of the per-relation lineage with one pick per relation
/// listed in `shape`. Only meaningful for single-branch join queries, where
/// a witness takes exactly one tuple from each joined relation; for other
/// shapes fall back to the minimal witness basis.
pub fn enumerate_join_witnesses(l: &Lineage, shape: &[RelName]) -> Vec<Witness> {
    // Cartesian product over the per-relation candidate sets.
    let pools: Vec<Vec<&Tid>> = shape
        .iter()
        .map(|r| l.get(r).map(|s| s.iter().collect()).unwrap_or_default())
        .collect();
    if pools.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut indices = vec![0usize; pools.len()];
    loop {
        let witness: Witness = indices
            .iter()
            .zip(&pools)
            .map(|(&i, pool)| pool[i].clone())
            .collect();
        out.push(witness);
        // Advance the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == pools.len() {
                return out;
            }
            indices[k] += 1;
            if indices[k] < pools[k].len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn lineage_groups_by_relation() {
        let (q, db) = fixture();
        let l = lineage(&q, &db, &tuple(["bob", "report"])).unwrap();
        assert_eq!(l.len(), 2);
        // bob/report derives from two UserGroup tuples and two GroupFile
        // tuples.
        assert_eq!(l.get("UserGroup").map(BTreeSet::len), Some(2));
        assert_eq!(l.get("GroupFile").map(BTreeSet::len), Some(2));
        assert_eq!(lineage_size(&l), 4);
        assert_eq!(lineage_support(&l).len(), 4);
    }

    #[test]
    fn lineage_of_missing_tuple_is_empty() {
        let (q, db) = fixture();
        let l = lineage(&q, &db, &tuple(["zz", "zz"])).unwrap();
        assert!(l.is_empty());
        assert_eq!(lineage_size(&l), 0);
    }

    #[test]
    fn single_witness_tuple_has_minimal_lineage() {
        let (q, db) = fixture();
        let l = lineage(&q, &db, &tuple(["ann", "report"])).unwrap();
        assert_eq!(lineage_size(&l), 2);
    }

    #[test]
    fn enumerate_join_witnesses_is_cartesian() {
        let (q, db) = fixture();
        let l = lineage(&q, &db, &tuple(["bob", "report"])).unwrap();
        let shape = vec![RelName::new("UserGroup"), RelName::new("GroupFile")];
        let candidates = enumerate_join_witnesses(&l, &shape);
        // 2 × 2 candidate combinations; only some are real witnesses — the
        // baseline has to test each, which is its cost.
        assert_eq!(candidates.len(), 4);
        let real: Vec<_> = candidates
            .iter()
            .filter(|w| {
                crate::witness::is_sufficient(&q, &db, w, &tuple(["bob", "report"])).unwrap()
            })
            .collect();
        assert_eq!(real.len(), 2);
    }

    #[test]
    fn enumerate_with_missing_relation_is_empty() {
        let (q, db) = fixture();
        let l = lineage(&q, &db, &tuple(["ann", "report"])).unwrap();
        let shape = vec![RelName::new("UserGroup"), RelName::new("Nope")];
        assert!(enumerate_join_witnesses(&l, &shape).is_empty());
    }
}
