//! Relation schemas: ordered lists of distinct attribute names.
//!
//! The paper works with named attributes and natural join, so a schema is a
//! *set* of attributes for compatibility questions, but we keep a
//! presentation order so tuples are positional and views print like the
//! paper's figures.

use crate::error::{RelalgError, Result};
use crate::name::Attr;
use std::collections::BTreeSet;
use std::fmt;

/// An ordered list of distinct attributes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Schema {
    attrs: Vec<Attr>,
}

impl Schema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new<I, A>(attrs: I) -> Result<Schema>
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        let attrs: Vec<Attr> = attrs.into_iter().map(Into::into).collect();
        let mut seen = BTreeSet::new();
        for a in &attrs {
            if !seen.insert(a.clone()) {
                return Err(RelalgError::DuplicateAttr { attr: a.clone() });
            }
        }
        Ok(Schema { attrs })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes (the 0-ary relation).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attributes in presentation order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Position of `attr` within the schema, if present.
    pub fn index_of(&self, attr: &Attr) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Whether `attr` occurs in the schema.
    pub fn contains(&self, attr: &Attr) -> bool {
        self.index_of(attr).is_some()
    }

    /// The attributes as a set (order-insensitive comparisons).
    pub fn attr_set(&self) -> BTreeSet<Attr> {
        self.attrs.iter().cloned().collect()
    }

    /// Whether two schemas contain the same attributes, in any order.
    /// This is the union-compatibility test.
    pub fn same_attr_set(&self, other: &Schema) -> bool {
        self.arity() == other.arity() && self.attr_set() == other.attr_set()
    }

    /// Attributes shared with `other`, in `self`'s order. These are the
    /// natural-join attributes.
    pub fn shared_with(&self, other: &Schema) -> Vec<Attr> {
        self.attrs
            .iter()
            .filter(|a| other.contains(a))
            .cloned()
            .collect()
    }

    /// The natural-join output schema: `self`'s attributes followed by
    /// `other`'s attributes that are not shared.
    pub fn join_with(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().filter(|a| !self.contains(a)).cloned());
        Schema { attrs }
    }

    /// Restrict to `attrs` (projection schema). Errors if any attribute is
    /// missing or listed twice.
    pub fn project(&self, attrs: &[Attr]) -> Result<Schema> {
        for a in attrs {
            if !self.contains(a) {
                return Err(RelalgError::UnknownAttr {
                    attr: a.clone(),
                    schema: self.clone(),
                });
            }
        }
        Schema::new(attrs.iter().cloned())
    }

    /// Apply an injective renaming `mapping` (old → new). Attributes not
    /// mentioned keep their names. Errors if a source is missing, a source is
    /// renamed twice, or the renamed schema has duplicate attributes.
    pub fn rename(&self, mapping: &[(Attr, Attr)]) -> Result<Schema> {
        let mut sources = BTreeSet::new();
        for (old, _) in mapping {
            if !self.contains(old) {
                return Err(RelalgError::UnknownAttr {
                    attr: old.clone(),
                    schema: self.clone(),
                });
            }
            if !sources.insert(old.clone()) {
                return Err(RelalgError::DuplicateRenameSource { attr: old.clone() });
            }
        }
        let renamed = self.attrs.iter().map(|a| {
            mapping
                .iter()
                .find(|(old, _)| old == a)
                .map(|(_, new)| new.clone())
                .unwrap_or_else(|| a.clone())
        });
        Schema::new(renamed)
    }

    /// Positions of `attrs` within this schema; errors on a missing attribute.
    pub fn positions_of(&self, attrs: &[Attr]) -> Result<Vec<usize>> {
        attrs
            .iter()
            .map(|a| {
                self.index_of(a).ok_or_else(|| RelalgError::UnknownAttr {
                    attr: a.clone(),
                    schema: self.clone(),
                })
            })
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema{self}")
    }
}

/// Convenience constructor used pervasively in tests and examples:
/// `schema(["A", "B"])`.
pub fn schema<I, A>(attrs: I) -> Schema
where
    I: IntoIterator<Item = A>,
    A: Into<Attr>,
{
    Schema::new(attrs).expect("duplicate attribute in schema literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicates() {
        assert!(Schema::new(["A", "B", "A"]).is_err());
        assert!(Schema::new(["A", "B"]).is_ok());
    }

    #[test]
    fn index_and_contains() {
        let s = schema(["A", "B", "C"]);
        assert_eq!(s.index_of(&"B".into()), Some(1));
        assert!(s.contains(&"C".into()));
        assert!(!s.contains(&"Z".into()));
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn union_compatibility_ignores_order() {
        let s = schema(["A", "B"]);
        let t = schema(["B", "A"]);
        let u = schema(["A", "C"]);
        assert!(s.same_attr_set(&t));
        assert!(!s.same_attr_set(&u));
    }

    #[test]
    fn join_schema_keeps_left_order_then_right_extras() {
        let left = schema(["A", "B"]);
        let right = schema(["B", "C"]);
        let j = left.join_with(&right);
        assert_eq!(j, schema(["A", "B", "C"]));
        assert_eq!(left.shared_with(&right), vec![Attr::new("B")]);
    }

    #[test]
    fn join_with_disjoint_is_cross_product_schema() {
        let left = schema(["A"]);
        let right = schema(["B"]);
        assert_eq!(left.join_with(&right), schema(["A", "B"]));
        assert!(left.shared_with(&right).is_empty());
    }

    #[test]
    fn project_validates_and_orders() {
        let s = schema(["A", "B", "C"]);
        assert_eq!(
            s.project(&["C".into(), "A".into()]).unwrap(),
            schema(["C", "A"])
        );
        assert!(s.project(&["Z".into()]).is_err());
        assert!(s.project(&["A".into(), "A".into()]).is_err());
    }

    #[test]
    fn rename_applies_and_validates() {
        let s = schema(["A", "B"]);
        let r = s.rename(&[("A".into(), "X".into())]).unwrap();
        assert_eq!(r, schema(["X", "B"]));
        // unknown source
        assert!(s.rename(&[("Z".into(), "X".into())]).is_err());
        // duplicate source
        assert!(s
            .rename(&[("A".into(), "X".into()), ("A".into(), "Y".into())])
            .is_err());
        // collision with untouched attribute
        assert!(s.rename(&[("A".into(), "B".into())]).is_err());
        // swap is fine (both renamed)
        let swapped = s
            .rename(&[("A".into(), "B".into()), ("B".into(), "A".into())])
            .unwrap();
        assert_eq!(swapped, schema(["B", "A"]));
    }

    #[test]
    fn positions_of_in_requested_order() {
        let s = schema(["A", "B", "C"]);
        assert_eq!(
            s.positions_of(&["C".into(), "A".into()]).unwrap(),
            vec![2, 0]
        );
        assert!(s.positions_of(&["Q".into()]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(schema(["A", "B"]).to_string(), "(A, B)");
        assert_eq!(Schema::new(Vec::<Attr>::new()).unwrap().to_string(), "()");
    }
}
