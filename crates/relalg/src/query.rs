//! The monotone SPJRU query AST: **S**elect, **P**roject, natural **J**oin,
//! **R**ename and **U**nion over base relations.
//!
//! This is exactly the fragment of relational algebra the paper studies. All
//! five operators are monotone, so `S' ⊆ S ⇒ Q(S') ⊆ Q(S)` — the property the
//! witness semantics of deletion propagation relies on (property-tested in
//! `eval.rs`).

use crate::name::{Attr, RelName};
use crate::predicate::Pred;
use std::fmt;

/// A monotone relational query.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// Scan a base relation.
    Scan(RelName),
    /// `σ_pred(input)`.
    Select {
        /// Input query.
        input: Box<Query>,
        /// Tuple-level predicate.
        pred: Pred,
    },
    /// `Π_attrs(input)` with set semantics (duplicates removed).
    Project {
        /// Input query.
        input: Box<Query>,
        /// Output attributes, in order.
        attrs: Vec<Attr>,
    },
    /// Natural join `left ⋈ right` on the shared attribute names.
    Join {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Set union `left ∪ right`; the branches must have the same attribute
    /// set (the right side is reordered to the left's attribute order).
    Union {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// Attribute renaming `δ_mapping(input)`, `mapping` is (old → new).
    Rename {
        /// Input query.
        input: Box<Query>,
        /// Injective old → new attribute mapping.
        mapping: Vec<(Attr, Attr)>,
    },
}

impl Query {
    /// Scan a base relation by name.
    pub fn scan(rel: impl Into<RelName>) -> Query {
        Query::Scan(rel.into())
    }

    /// Apply a selection predicate.
    pub fn select(self, pred: Pred) -> Query {
        Query::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// Project onto the named attributes.
    pub fn project<I, A>(self, attrs: I) -> Query
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        Query::Project {
            input: Box::new(self),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Natural join with another query.
    pub fn join(self, right: Query) -> Query {
        Query::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Set union with another query.
    pub fn union(self, right: Query) -> Query {
        Query::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Rename attributes (old → new pairs).
    pub fn rename<I, A, B>(self, mapping: I) -> Query
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<Attr>,
        B: Into<Attr>,
    {
        Query::Rename {
            input: Box::new(self),
            mapping: mapping
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// Union of several queries, left-associated. Panics on an empty list.
    pub fn union_all<I: IntoIterator<Item = Query>>(queries: I) -> Query {
        let mut it = queries.into_iter();
        let first = it.next().expect("union_all of zero queries");
        it.fold(first, Query::union)
    }

    /// Natural join of several queries, left-associated. Panics on an empty
    /// list.
    pub fn join_all<I: IntoIterator<Item = Query>>(queries: I) -> Query {
        let mut it = queries.into_iter();
        let first = it.next().expect("join_all of zero queries");
        it.fold(first, Query::join)
    }

    /// All base relations scanned by the query, in first-occurrence order
    /// (with duplicates for self-joins).
    pub fn scans(&self) -> Vec<RelName> {
        fn walk(q: &Query, out: &mut Vec<RelName>) {
            match q {
                Query::Scan(r) => out.push(r.clone()),
                Query::Select { input, .. }
                | Query::Project { input, .. }
                | Query::Rename { input, .. } => walk(input, out),
                Query::Join { left, right } | Query::Union { left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// The distinct base relations referenced.
    pub fn relations(&self) -> Vec<RelName> {
        let mut out = Vec::new();
        for r in self.scans() {
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// Number of AST nodes — a crude "query size" used by benches.
    pub fn node_count(&self) -> usize {
        match self {
            Query::Scan(_) => 1,
            Query::Select { input, .. }
            | Query::Project { input, .. }
            | Query::Rename { input, .. } => 1 + input.node_count(),
            Query::Join { left, right } | Query::Union { left, right } => {
                1 + left.node_count() + right.node_count()
            }
        }
    }
}

impl fmt::Display for Query {
    /// Functional syntax that the crate's parser accepts back
    /// (`parser::parse_query(q.to_string())` round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Scan(r) => write!(f, "scan {r}"),
            Query::Select { input, pred } => write!(f, "select({input}, {pred})"),
            Query::Project { input, attrs } => {
                write!(f, "project({input}, [")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "])")
            }
            Query::Join { left, right } => write!(f, "join({left}, {right})"),
            Query::Union { left, right } => write!(f, "union({left}, {right})"),
            Query::Rename { input, mapping } => {
                write!(f, "rename({input}, {{")?;
                for (i, (a, b)) in mapping.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} -> {b}")?;
                }
                write!(f, "}})")
            }
        }
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Query({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Section 2.1.1 query:
    /// `Π_{user,file}(UserGroup ⋈ GroupFile)`.
    fn usergroup_query() -> Query {
        Query::scan("UserGroup")
            .join(Query::scan("GroupFile"))
            .project(["user", "file"])
    }

    #[test]
    fn builders_compose() {
        let q = usergroup_query();
        match &q {
            Query::Project { attrs, input } => {
                assert_eq!(attrs.len(), 2);
                assert!(matches!(**input, Query::Join { .. }));
            }
            _ => panic!("expected project at root"),
        }
    }

    #[test]
    fn display_functional_syntax() {
        let q = usergroup_query();
        assert_eq!(
            q.to_string(),
            "project(join(scan UserGroup, scan GroupFile), [user, file])"
        );
        let q = Query::scan("R")
            .select(Pred::attr_eq_const("A", 1))
            .rename([("A", "B")]);
        assert_eq!(q.to_string(), "rename(select(scan R, A = 1), {A -> B})");
    }

    #[test]
    fn scans_and_relations() {
        let q = Query::scan("R")
            .join(Query::scan("R"))
            .union(Query::scan("S"));
        assert_eq!(q.scans().len(), 3);
        assert_eq!(q.relations().len(), 2);
    }

    #[test]
    fn union_all_and_join_all() {
        let q = Query::union_all(vec![Query::scan("A"), Query::scan("B"), Query::scan("C")]);
        assert_eq!(q.scans().len(), 3);
        assert!(matches!(q, Query::Union { .. }));
        let j = Query::join_all(vec![Query::scan("A"), Query::scan("B")]);
        assert!(matches!(j, Query::Join { .. }));
    }

    #[test]
    fn node_count() {
        assert_eq!(Query::scan("R").node_count(), 1);
        assert_eq!(usergroup_query().node_count(), 4);
    }
}
