//! Query classification: operator footprints, SPJU subclasses, and
//! chain-join detection (the poly-time special case of Theorem 2.6).
//!
//! The paper's dichotomy theorems are stated per *subclass* of SPJU queries —
//! which operators a query uses determines which complexity row it falls in.
//! This module computes that footprint; the complexity tables themselves live
//! in `dap-core::dichotomy`, next to the solvers they dispatch.

use crate::database::Catalog;
use crate::name::{Attr, RelName};
use crate::query::Query;
use std::collections::BTreeSet;
use std::fmt;

/// Which of the five monotone operators a query uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpFootprint {
    /// Uses selection (σ).
    pub select: bool,
    /// Uses projection (Π).
    pub project: bool,
    /// Uses natural join (⋈).
    pub join: bool,
    /// Uses union (∪).
    pub union_: bool,
    /// Uses renaming (δ).
    pub rename: bool,
}

impl OpFootprint {
    /// Compute the footprint of a query.
    pub fn of(q: &Query) -> OpFootprint {
        let mut fp = OpFootprint::default();
        fn walk(q: &Query, fp: &mut OpFootprint) {
            match q {
                Query::Scan(_) => {}
                Query::Select { input, .. } => {
                    fp.select = true;
                    walk(input, fp);
                }
                Query::Project { input, .. } => {
                    fp.project = true;
                    walk(input, fp);
                }
                Query::Join { left, right } => {
                    fp.join = true;
                    walk(left, fp);
                    walk(right, fp);
                }
                Query::Union { left, right } => {
                    fp.union_ = true;
                    walk(left, fp);
                    walk(right, fp);
                }
                Query::Rename { input, .. } => {
                    fp.rename = true;
                    walk(input, fp);
                }
            }
        }
        walk(q, &mut fp);
        fp
    }

    /// Uses both projection and join — the paper's "queries involving PJ".
    pub fn has_pj(&self) -> bool {
        self.project && self.join
    }

    /// Uses both join and union — the paper's "queries involving JU".
    pub fn has_ju(&self) -> bool {
        self.join && self.union_
    }

    /// Falls inside SPU (no join). Renaming is allowed; it never affects the
    /// paper's classification of the poly-time cases.
    pub fn is_spu(&self) -> bool {
        !self.join
    }

    /// Falls inside SJ (no project, no union).
    pub fn is_sj(&self) -> bool {
        !self.project && !self.union_
    }

    /// Falls inside SJU (no project).
    pub fn is_sju(&self) -> bool {
        !self.project
    }

    /// The conventional letter string, e.g. `"SPJ"` or `"JU"`.
    pub fn letters(&self) -> String {
        let mut s = String::new();
        if self.select {
            s.push('S');
        }
        if self.project {
            s.push('P');
        }
        if self.join {
            s.push('J');
        }
        if self.rename {
            s.push('R');
        }
        if self.union_ {
            s.push('U');
        }
        if s.is_empty() {
            s.push('-'); // bare scan
        }
        s
    }
}

impl fmt::Display for OpFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.letters())
    }
}

impl fmt::Debug for OpFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpFootprint({self})")
    }
}

/// A detected chain join (Theorem 2.6): a PJ query in normal form whose
/// joined relations can be ordered `R1, …, Rk` such that only consecutive
/// relations share attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChainJoin {
    /// The relations in chain order.
    pub order: Vec<RelName>,
    /// The outer projection attributes (`None` when the query has no
    /// projection — a pure J chain).
    pub project: Option<Vec<Attr>>,
}

/// Try to recognize `q` as a chain join: an optional outer `Project` over a
/// join tree of *distinct* base-relation scans, whose shared-attribute graph
/// is a simple path. Returns the chain order if so.
///
/// This mirrors Theorem 2.6's precondition: "PJ queries in normal form whose
/// joins on distinct relations form a chain".
pub fn detect_chain_join(q: &Query, catalog: &Catalog) -> Option<ChainJoin> {
    // Peel an optional outer projection.
    let (project, join_tree) = match q {
        Query::Project { input, attrs } => (Some(attrs.clone()), &**input),
        other => (None, other),
    };

    // The rest must be a join tree of plain scans.
    fn collect_scans(q: &Query, out: &mut Vec<RelName>) -> bool {
        match q {
            Query::Scan(r) => {
                out.push(r.clone());
                true
            }
            Query::Join { left, right } => collect_scans(left, out) && collect_scans(right, out),
            _ => false,
        }
    }
    let mut rels = Vec::new();
    if !collect_scans(join_tree, &mut rels) {
        return None;
    }
    // Distinct relations only (self-joins are outside the theorem).
    let distinct: BTreeSet<&RelName> = rels.iter().collect();
    if distinct.len() != rels.len() {
        return None;
    }
    if rels.len() == 1 {
        return Some(ChainJoin {
            order: rels,
            project,
        });
    }

    // Shared-attribute graph: vertex per relation, edge iff schemas share an
    // attribute. A chain order exists iff the graph is a simple path (then
    // non-consecutive relations share nothing by construction).
    let schemas: Vec<_> = rels.iter().map(|r| catalog.get(r)).collect();
    if schemas.iter().any(Option::is_none) {
        return None;
    }
    let n = rels.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let shares = !schemas[i]
                .expect("checked")
                .shared_with(schemas[j].expect("checked"))
                .is_empty();
            if shares {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    // Path graph: exactly two degree-1 endpoints, all others degree 2,
    // connected (which the degree condition plus edge count implies only if
    // we also walk it — do the walk).
    let degrees: Vec<usize> = adj.iter().map(Vec::len).collect();
    let endpoints: Vec<usize> = (0..n).filter(|&i| degrees[i] == 1).collect();
    if endpoints.len() != 2 || degrees.iter().any(|&d| d == 0 || d > 2) {
        return None;
    }
    // Walk from one endpoint; must visit every vertex exactly once.
    let mut order = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    let mut cur = endpoints[0];
    loop {
        order.push(cur);
        let next = adj[cur].iter().copied().find(|&v| v != prev);
        match next {
            Some(v) => {
                prev = cur;
                cur = v;
            }
            None => break,
        }
    }
    if order.len() != n {
        return None;
    }
    Some(ChainJoin {
        order: order.into_iter().map(|i| rels[i].clone()).collect(),
        project,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use crate::schema::schema;

    #[test]
    fn footprint_letters() {
        let q = Query::scan("R");
        assert_eq!(OpFootprint::of(&q).letters(), "-");
        let q = Query::scan("R")
            .select(Pred::True)
            .project(["A"])
            .join(Query::scan("S"))
            .union(Query::scan("T"))
            .rename([("A", "B")]);
        // The nested join/union/rename mark all operators.
        assert_eq!(OpFootprint::of(&q).letters(), "SPJRU");
    }

    #[test]
    fn subclass_predicates() {
        let pj = OpFootprint::of(&Query::scan("R").join(Query::scan("S")).project(["A"]));
        assert!(pj.has_pj() && !pj.has_ju() && !pj.is_spu() && !pj.is_sj());

        let ju = OpFootprint::of(
            &Query::scan("R")
                .join(Query::scan("S"))
                .union(Query::scan("T")),
        );
        assert!(ju.has_ju() && !ju.has_pj() && ju.is_sju());

        let spu = OpFootprint::of(
            &Query::scan("R")
                .select(Pred::True)
                .project(["A"])
                .union(Query::scan("T")),
        );
        assert!(spu.is_spu() && !spu.has_pj());

        let sj = OpFootprint::of(&Query::scan("R").select(Pred::True).join(Query::scan("S")));
        assert!(sj.is_sj() && sj.is_sju());
    }

    fn chain_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert("R1".into(), schema(["A", "B"]));
        c.insert("R2".into(), schema(["B", "C"]));
        c.insert("R3".into(), schema(["C", "D"]));
        c.insert("X".into(), schema(["A", "D"])); // would close a cycle
        c
    }

    #[test]
    fn detects_simple_chain() {
        let c = chain_catalog();
        let q = Query::scan("R1")
            .join(Query::scan("R2"))
            .join(Query::scan("R3"))
            .project(["A", "D"]);
        let chain = detect_chain_join(&q, &c).expect("chain");
        assert_eq!(
            chain.order,
            vec![RelName::new("R1"), RelName::new("R2"), RelName::new("R3")]
        );
        assert_eq!(
            chain.project.as_deref(),
            Some(&["A".into(), "D".into()][..])
        );
    }

    #[test]
    fn chain_order_independent_of_join_shape() {
        let c = chain_catalog();
        // Join written out of order: (R2 ⋈ R3) ⋈ R1 — still a chain.
        let q = Query::scan("R2")
            .join(Query::scan("R3"))
            .join(Query::scan("R1"));
        let chain = detect_chain_join(&q, &c).expect("chain");
        // Either endpoint may come first.
        let names: Vec<&str> = chain.order.iter().map(RelName::as_str).collect();
        assert!(names == ["R1", "R2", "R3"] || names == ["R3", "R2", "R1"]);
        assert!(chain.project.is_none());
    }

    #[test]
    fn rejects_cycle() {
        let c = chain_catalog();
        let q = Query::scan("R1")
            .join(Query::scan("R2"))
            .join(Query::scan("R3"))
            .join(Query::scan("X"));
        assert!(detect_chain_join(&q, &c).is_none());
    }

    #[test]
    fn rejects_disconnected_and_star() {
        let mut c = Catalog::new();
        c.insert("A1".into(), schema(["A"]));
        c.insert("A2".into(), schema(["B"]));
        let q = Query::scan("A1").join(Query::scan("A2"));
        assert!(
            detect_chain_join(&q, &c).is_none(),
            "cross product is not a chain"
        );

        let mut c = Catalog::new();
        c.insert("Hub".into(), schema(["A", "B", "C"]));
        c.insert("S1".into(), schema(["A"]));
        c.insert("S2".into(), schema(["B"]));
        c.insert("S3".into(), schema(["C"]));
        let q = Query::join_all(vec![
            Query::scan("Hub"),
            Query::scan("S1"),
            Query::scan("S2"),
            Query::scan("S3"),
        ]);
        assert!(detect_chain_join(&q, &c).is_none(), "star is not a chain");
    }

    #[test]
    fn rejects_self_join_and_non_scan_inputs() {
        let c = chain_catalog();
        let q = Query::scan("R1").join(Query::scan("R1"));
        assert!(detect_chain_join(&q, &c).is_none());
        let q = Query::scan("R1").select(Pred::True).join(Query::scan("R2"));
        assert!(detect_chain_join(&q, &c).is_none());
    }

    #[test]
    fn single_scan_is_a_trivial_chain() {
        let c = chain_catalog();
        let chain = detect_chain_join(&Query::scan("R1").project(["A"]), &c).expect("chain");
        assert_eq!(chain.order.len(), 1);
    }

    #[test]
    fn two_relation_chain() {
        let c = chain_catalog();
        let q = Query::scan("R1")
            .join(Query::scan("R2"))
            .project(["A", "C"]);
        let chain = detect_chain_join(&q, &c).expect("chain");
        assert_eq!(chain.order.len(), 2);
    }
}
