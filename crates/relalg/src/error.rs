//! Error type shared by the relational-algebra layer.

use crate::name::{Attr, RelName};
use crate::schema::Schema;
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelalgError>;

/// Everything that can go wrong constructing, type-checking, parsing or
/// evaluating a query.
#[derive(Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named self-descriptively
pub enum RelalgError {
    /// A schema or projection listed the same attribute twice.
    DuplicateAttr { attr: Attr },
    /// An attribute was referenced that the schema does not contain.
    UnknownAttr { attr: Attr, schema: Schema },
    /// A relation was referenced that the database does not contain.
    UnknownRelation { rel: RelName },
    /// A tuple's arity does not match its relation's schema.
    ArityMismatch {
        rel: RelName,
        expected: usize,
        got: usize,
    },
    /// Union applied to branches with different attribute sets.
    UnionIncompatible { left: Schema, right: Schema },
    /// The same attribute was used twice as a rename source.
    DuplicateRenameSource { attr: Attr },
    /// A comparison between values of different runtime types.
    TypeMismatch { context: String },
    /// Query text failed to parse.
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
    /// A user-supplied attribute used the reserved internal prefix `#`.
    ReservedAttr { attr: Attr },
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::DuplicateAttr { attr } => {
                write!(f, "duplicate attribute `{attr}`")
            }
            RelalgError::UnknownAttr { attr, schema } => {
                write!(f, "unknown attribute `{attr}` in schema {schema}")
            }
            RelalgError::UnknownRelation { rel } => {
                write!(f, "unknown relation `{rel}`")
            }
            RelalgError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected} of `{rel}`"
                )
            }
            RelalgError::UnionIncompatible { left, right } => {
                write!(
                    f,
                    "union branches have incompatible schemas {left} and {right}"
                )
            }
            RelalgError::DuplicateRenameSource { attr } => {
                write!(f, "attribute `{attr}` renamed more than once")
            }
            RelalgError::TypeMismatch { context } => {
                write!(f, "type mismatch: {context}")
            }
            RelalgError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            RelalgError::ReservedAttr { attr } => {
                write!(
                    f,
                    "attribute `{attr}` uses the reserved internal prefix '#'"
                )
            }
        }
    }
}

impl fmt::Debug for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelalgError({self})")
    }
}

impl std::error::Error for RelalgError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;

    #[test]
    fn messages_are_informative() {
        let e = RelalgError::UnknownAttr {
            attr: "Z".into(),
            schema: schema(["A", "B"]),
        };
        assert_eq!(e.to_string(), "unknown attribute `Z` in schema (A, B)");
        let e = RelalgError::UnknownRelation { rel: "R".into() };
        assert!(e.to_string().contains("`R`"));
        let e = RelalgError::Parse {
            line: 2,
            col: 5,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("2:5"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelalgError::DuplicateAttr { attr: "A".into() });
    }
}
