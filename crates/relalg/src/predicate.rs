//! Selection predicates.
//!
//! Selection on any tuple-level predicate is a monotone operator, so the
//! predicate language allows comparisons, conjunction, disjunction and
//! negation over a single tuple's attributes — the query as a whole stays in
//! the paper's monotone fragment.

use crate::error::{RelalgError, Result};
use crate::name::Attr;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// One side of a comparison: an attribute reference or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// The value of an attribute of the current tuple.
    Attr(Attr),
    /// A literal constant.
    Const(Value),
}

impl Operand {
    fn eval<'a>(&'a self, schema: &Schema, t: &'a Tuple) -> Result<&'a Value> {
        match self {
            Operand::Attr(a) => t
                .value_of(schema, a)
                .ok_or_else(|| RelalgError::UnknownAttr {
                    attr: a.clone(),
                    schema: schema.clone(),
                }),
            Operand::Const(v) => Ok(v),
        }
    }

    fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Operand::Attr(a) if !schema.contains(a) => Err(RelalgError::UnknownAttr {
                attr: a.clone(),
                schema: schema.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// Apply an attribute renaming (old → new) to attribute references.
    pub fn rename(&self, mapping: &[(Attr, Attr)]) -> Operand {
        match self {
            Operand::Attr(a) => {
                let renamed = mapping
                    .iter()
                    .find(|(old, _)| old == a)
                    .map(|(_, new)| new.clone())
                    .unwrap_or_else(|| a.clone());
                Operand::Attr(renamed)
            }
            Operand::Const(v) => Operand::Const(v.clone()),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            // SQL-style quoting: a literal quote is doubled, so the crate's
            // parser can read every printed predicate back.
            Operand::Const(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(self, l: &Value, r: &Value) -> Result<bool> {
        // Equality across types is simply false/true; ordering across types
        // is a type error (comparing `5 < 'a'` is almost certainly a bug).
        match self {
            CmpOp::Eq => Ok(l == r),
            CmpOp::Ne => Ok(l != r),
            _ => {
                if std::mem::discriminant(l) != std::mem::discriminant(r) {
                    return Err(RelalgError::TypeMismatch {
                        context: format!(
                            "ordered comparison between {} and {}",
                            l.type_name(),
                            r.type_name()
                        ),
                    });
                }
                Ok(match self {
                    CmpOp::Lt => l < r,
                    CmpOp::Le => l <= r,
                    CmpOp::Gt => l > r,
                    CmpOp::Ge => l >= r,
                    CmpOp::Eq | CmpOp::Ne => unreachable!(),
                })
            }
        }
    }

    /// The SQL-ish symbol for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A tuple-level selection predicate.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Always true (the neutral element for conjunction).
    True,
    /// A comparison between two operands.
    Cmp {
        /// Left operand.
        lhs: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: Operand,
    },
    /// Both sub-predicates hold.
    And(Box<Pred>, Box<Pred>),
    /// At least one sub-predicate holds.
    Or(Box<Pred>, Box<Pred>),
    /// The sub-predicate does not hold.
    Not(Box<Pred>),
}

impl Pred {
    /// `lhs op rhs` comparison.
    pub fn cmp(lhs: Operand, op: CmpOp, rhs: Operand) -> Pred {
        Pred::Cmp { lhs, op, rhs }
    }

    /// `attr = constant`, the most common selection shape.
    pub fn attr_eq_const(attr: impl Into<Attr>, v: impl Into<Value>) -> Pred {
        Pred::Cmp {
            lhs: Operand::Attr(attr.into()),
            op: CmpOp::Eq,
            rhs: Operand::Const(v.into()),
        }
    }

    /// `attr1 = attr2` equality between two attributes of the same tuple.
    pub fn attr_eq_attr(a: impl Into<Attr>, b: impl Into<Attr>) -> Pred {
        Pred::Cmp {
            lhs: Operand::Attr(a.into()),
            op: CmpOp::Eq,
            rhs: Operand::Attr(b.into()),
        }
    }

    /// Conjunction that collapses `True` operands.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    pub fn negate(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Evaluate against a tuple under `schema`.
    pub fn eval(&self, schema: &Schema, t: &Tuple) -> Result<bool> {
        match self {
            Pred::True => Ok(true),
            Pred::Cmp { lhs, op, rhs } => {
                let l = lhs.eval(schema, t)?;
                let r = rhs.eval(schema, t)?;
                op.apply(l, r)
            }
            Pred::And(a, b) => Ok(a.eval(schema, t)? && b.eval(schema, t)?),
            Pred::Or(a, b) => Ok(a.eval(schema, t)? || b.eval(schema, t)?),
            Pred::Not(p) => Ok(!p.eval(schema, t)?),
        }
    }

    /// Check all attribute references exist in `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Pred::True => Ok(()),
            Pred::Cmp { lhs, rhs, .. } => {
                lhs.validate(schema)?;
                rhs.validate(schema)
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Pred::Not(p) => p.validate(schema),
        }
    }

    /// All attributes referenced by the predicate, in first-occurrence order.
    pub fn referenced_attrs(&self) -> Vec<Attr> {
        fn walk(p: &Pred, out: &mut Vec<Attr>) {
            let mut push = |o: &Operand| {
                if let Operand::Attr(a) = o {
                    if !out.contains(a) {
                        out.push(a.clone());
                    }
                }
            };
            match p {
                Pred::True => {}
                Pred::Cmp { lhs, rhs, .. } => {
                    push(lhs);
                    push(rhs);
                }
                Pred::And(a, b) | Pred::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Pred::Not(q) => walk(q, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Apply an attribute renaming (old → new) to every attribute reference.
    pub fn rename(&self, mapping: &[(Attr, Attr)]) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::Cmp { lhs, op, rhs } => Pred::Cmp {
                lhs: lhs.rename(mapping),
                op: *op,
                rhs: rhs.rename(mapping),
            },
            Pred::And(a, b) => Pred::And(Box::new(a.rename(mapping)), Box::new(b.rename(mapping))),
            Pred::Or(a, b) => Pred::Or(Box::new(a.rename(mapping)), Box::new(b.rename(mapping))),
            Pred::Not(p) => Pred::Not(Box::new(p.rename(mapping))),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Pred::And(a, b) => write!(f, "({a} and {b})"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(p) => write!(f, "(not {p})"),
        }
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pred({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;
    use crate::tuple::tuple;

    fn s() -> Schema {
        schema(["A", "B", "N"])
    }

    fn t() -> Tuple {
        tuple([Value::str("a"), Value::str("b"), Value::int(5)])
    }

    #[test]
    fn constant_and_attr_comparisons() {
        assert!(Pred::attr_eq_const("A", "a").eval(&s(), &t()).unwrap());
        assert!(!Pred::attr_eq_const("A", "z").eval(&s(), &t()).unwrap());
        assert!(!Pred::attr_eq_attr("A", "B").eval(&s(), &t()).unwrap());
        let refl = Pred::attr_eq_attr("A", "A");
        assert!(refl.eval(&s(), &t()).unwrap());
    }

    #[test]
    fn ordering_comparisons() {
        let p = Pred::cmp(
            Operand::Attr("N".into()),
            CmpOp::Gt,
            Operand::Const(Value::int(3)),
        );
        assert!(p.eval(&s(), &t()).unwrap());
        let p = Pred::cmp(
            Operand::Attr("N".into()),
            CmpOp::Le,
            Operand::Const(Value::int(4)),
        );
        assert!(!p.eval(&s(), &t()).unwrap());
    }

    #[test]
    fn cross_type_equality_is_false_not_error() {
        let p = Pred::attr_eq_const("N", "five");
        assert!(!p.eval(&s(), &t()).unwrap());
    }

    #[test]
    fn cross_type_ordering_is_error() {
        let p = Pred::cmp(
            Operand::Attr("N".into()),
            CmpOp::Lt,
            Operand::Const(Value::str("five")),
        );
        assert!(matches!(
            p.eval(&s(), &t()),
            Err(RelalgError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn boolean_connectives() {
        let yes = Pred::attr_eq_const("A", "a");
        let no = Pred::attr_eq_const("B", "zzz");
        assert!(!yes.clone().and(no.clone()).eval(&s(), &t()).unwrap());
        assert!(yes.clone().or(no.clone()).eval(&s(), &t()).unwrap());
        assert!(no.clone().negate().eval(&s(), &t()).unwrap());
        assert!(Pred::True.eval(&s(), &t()).unwrap());
    }

    #[test]
    fn and_collapses_true() {
        let p = Pred::True.and(Pred::attr_eq_const("A", "a"));
        assert_eq!(p, Pred::attr_eq_const("A", "a"));
        let p = Pred::attr_eq_const("A", "a").and(Pred::True);
        assert_eq!(p, Pred::attr_eq_const("A", "a"));
    }

    #[test]
    fn validation_finds_unknown_attrs() {
        let p = Pred::attr_eq_const("Z", 1);
        assert!(p.validate(&s()).is_err());
        assert!(p.eval(&s(), &t()).is_err());
        let nested = Pred::True.and(Pred::attr_eq_attr("A", "Q").negate());
        assert!(nested.validate(&s()).is_err());
    }

    #[test]
    fn referenced_attrs_in_order_without_dupes() {
        let p = Pred::attr_eq_attr("B", "A").and(Pred::attr_eq_const("A", 1));
        assert_eq!(p.referenced_attrs(), vec![Attr::new("B"), Attr::new("A")]);
    }

    #[test]
    fn rename_rewrites_attr_refs() {
        let p = Pred::attr_eq_attr("A", "B").or(Pred::attr_eq_const("A", 1));
        let q = p.rename(&[("A".into(), "X".into())]);
        assert_eq!(q.referenced_attrs(), vec![Attr::new("X"), Attr::new("B")]);
    }

    #[test]
    fn display_reads_like_sql() {
        let p = Pred::attr_eq_const("A", "a").and(Pred::attr_eq_const("N", 5));
        assert_eq!(p.to_string(), "(A = 'a' and N = 5)");
        assert_eq!(Pred::True.to_string(), "true");
        assert_eq!(
            Pred::attr_eq_const("N", 5).negate().to_string(),
            "(not N = 5)"
        );
    }
}
