//! Databases: named collections of relations, plus the stable tuple identity
//! ([`Tid`]) that the deletion and provenance machinery is built on.

use crate::error::{RelalgError, Result};
use crate::name::RelName;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A stable identifier for one source tuple: relation name plus the row index
/// within that relation's sorted instance. Deleting a set of `Tid`s from a
/// database is the paper's source deletion `S \ T`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid {
    /// The relation the tuple lives in.
    pub rel: RelName,
    /// Stable row index within [`Relation::tuples`].
    pub row: usize,
}

impl Tid {
    /// Build a tuple id.
    pub fn new(rel: impl Into<RelName>, row: usize) -> Tid {
        Tid {
            rel: rel.into(),
            row,
        }
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.rel, self.row)
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tid({self})")
    }
}

/// Schema catalog: what the type checker needs to know about a database.
pub type Catalog = BTreeMap<RelName, Schema>;

/// A database instance: a set of named relations.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Database {
    rels: BTreeMap<RelName, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Build from an iterator of relations; errors on duplicate names.
    pub fn from_relations<I: IntoIterator<Item = Relation>>(rels: I) -> Result<Database> {
        let mut db = Database::new();
        for r in rels {
            db.add(r)?;
        }
        Ok(db)
    }

    /// Insert a relation; errors if the name is already present.
    pub fn add(&mut self, rel: Relation) -> Result<()> {
        if self.rels.contains_key(rel.name()) {
            return Err(RelalgError::DuplicateAttr {
                attr: rel.name().as_str().into(),
            });
        }
        self.rels.insert(rel.name().clone(), rel);
        Ok(())
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.rels.get(name)
    }

    /// Look up a relation, erroring like the evaluator does.
    pub fn require(&self, name: &RelName) -> Result<&Relation> {
        self.rels
            .get(name)
            .ok_or_else(|| RelalgError::UnknownRelation { rel: name.clone() })
    }

    /// All relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.rels.values()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.rels.len()
    }

    /// Total number of tuples across all relations (the paper's `|S|`).
    pub fn tuple_count(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// The schema catalog for type checking.
    pub fn catalog(&self) -> Catalog {
        self.rels
            .iter()
            .map(|(n, r)| (n.clone(), r.schema().clone()))
            .collect()
    }

    /// The tuple a [`Tid`] refers to, if it exists.
    pub fn tuple(&self, tid: &Tid) -> Option<&Tuple> {
        self.rels.get(&tid.rel).and_then(|r| r.tuple_at(tid.row))
    }

    /// The `Tid` of `t` within relation `rel`, if present.
    pub fn tid_of(&self, rel: &str, t: &Tuple) -> Option<Tid> {
        let r = self.rels.get(rel)?;
        r.row_of(t).map(|row| Tid {
            rel: r.name().clone(),
            row,
        })
    }

    /// Iterate over every tuple id in the database.
    pub fn all_tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.rels.values().flat_map(|r| {
            let name = r.name().clone();
            (0..r.len()).map(move |row| Tid {
                rel: name.clone(),
                row,
            })
        })
    }

    /// The sub-instance containing exactly the tuples named by `keep`
    /// (relations keep their schemas, so queries stay well-typed). Used to
    /// check witness candidates: `W` is a witness for `t` iff
    /// `t ∈ Q(restrict(S, W))`.
    pub fn restrict(&self, keep: &BTreeSet<Tid>) -> Database {
        let deletions: BTreeSet<Tid> = self.all_tids().filter(|tid| !keep.contains(tid)).collect();
        self.without(&deletions)
    }

    /// Render the database in the fixture syntax accepted by
    /// [`crate::parse_database`], so `parse_database(&db.to_fixture_string())`
    /// reproduces the instance exactly — including every [`Tid`], because
    /// relation instances are kept sorted and the round trip preserves the
    /// tuple sets. String values are always quoted (SQL-style, `''` for an
    /// embedded quote), so values like `'sp ace'`, `'true'` or `'7'` that a
    /// bare token would mis-lex survive. This is the durability layer's
    /// snapshot encoding for the source instance.
    pub fn to_fixture_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in self.rels.values() {
            let _ = write!(out, "relation {}(", r.name());
            for (i, a) in r.schema().attrs().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{a}");
            }
            out.push_str(") {");
            for (i, t) in r.tuples().iter().enumerate() {
                out.push_str(if i > 0 { ", (" } else { " (" });
                for (j, v) in t.values().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    match v {
                        crate::value::Value::Str(s) => {
                            out.push('\'');
                            out.push_str(&s.replace('\'', "''"));
                            out.push('\'');
                        }
                        other => {
                            let _ = write!(out, "{other}");
                        }
                    }
                }
                out.push(')');
            }
            out.push_str(" }\n");
        }
        out
    }

    /// The paper's `S \ T`: a copy of the database with the tuples named by
    /// `deletions` removed. Tids refer to *this* instance; the result
    /// re-packs row indices.
    pub fn without(&self, deletions: &BTreeSet<Tid>) -> Database {
        let mut by_rel: BTreeMap<&RelName, BTreeSet<usize>> = BTreeMap::new();
        for tid in deletions {
            by_rel.entry(&tid.rel).or_default().insert(tid.row);
        }
        let rels = self
            .rels
            .iter()
            .map(|(n, r)| {
                let rel = match by_rel.get(n) {
                    Some(rows) => r.without_rows(rows),
                    None => r.clone(),
                };
                (n.clone(), rel)
            })
            .collect();
        Database { rels }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rels.values().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            f.write_str(&r.to_table_string())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Database({} relations, {} tuples)",
            self.relation_count(),
            self.tuple_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;
    use crate::tuple::tuple;

    fn db() -> Database {
        Database::from_relations(vec![
            Relation::new(
                "R1",
                schema(["A", "B"]),
                vec![tuple(["a", "x1"]), tuple(["a", "x2"])],
            )
            .unwrap(),
            Relation::new("R2", schema(["B", "C"]), vec![tuple(["x1", "c"])]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_and_counts() {
        let db = db();
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.tuple_count(), 3);
        assert!(db.get("R1").is_some());
        assert!(db.get("Rx").is_none());
        assert!(db.require(&"Rx".into()).is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut d = db();
        let dup = Relation::empty("R1", schema(["Z"]));
        assert!(d.add(dup).is_err());
    }

    #[test]
    fn tids_round_trip() {
        let db = db();
        let tid = db.tid_of("R1", &tuple(["a", "x2"])).unwrap();
        assert_eq!(tid.row, 1);
        assert_eq!(db.tuple(&tid), Some(&tuple(["a", "x2"])));
        assert_eq!(db.tid_of("R1", &tuple(["zz", "zz"])), None);
        assert_eq!(db.tuple(&Tid::new("R1", 99)), None);
    }

    #[test]
    fn all_tids_enumerates_everything() {
        let db = db();
        let tids: Vec<Tid> = db.all_tids().collect();
        assert_eq!(tids.len(), 3);
        assert!(tids.contains(&Tid::new("R2", 0)));
    }

    #[test]
    fn without_removes_only_named_tuples() {
        let db = db();
        let t = db.tid_of("R1", &tuple(["a", "x1"])).unwrap();
        let out = db.without(&BTreeSet::from([t]));
        assert_eq!(out.get("R1").unwrap().len(), 1);
        assert_eq!(out.get("R2").unwrap().len(), 1);
        assert!(!out.get("R1").unwrap().contains(&tuple(["a", "x1"])));
        // original untouched
        assert_eq!(db.tuple_count(), 3);
    }

    #[test]
    fn without_empty_set_is_identity() {
        let db = db();
        assert_eq!(db.without(&BTreeSet::new()), db);
    }

    #[test]
    fn catalog_reflects_schemas() {
        let cat = db().catalog();
        assert_eq!(cat.get("R1"), Some(&schema(["A", "B"])));
    }

    #[test]
    fn tid_display() {
        assert_eq!(Tid::new("R1", 3).to_string(), "R1#3");
    }

    #[test]
    fn fixture_string_round_trips() {
        let db = db();
        let back = crate::parser::parse_database(&db.to_fixture_string()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn fixture_string_quotes_hostile_values() {
        use crate::value::Value;
        let db = Database::from_relations(vec![Relation::new(
            "R",
            schema(["A", "B", "C"]),
            vec![Tuple::new(vec![
                Value::str("sp ace"),
                Value::str("it's"),
                Value::str("7"),
            ])],
        )
        .unwrap()])
        .unwrap();
        let back = crate::parser::parse_database(&db.to_fixture_string()).unwrap();
        assert_eq!(back, db);
        // The string "7" must stay a string, not re-lex as an integer.
        assert_eq!(
            back.tuple(&Tid::new("R", 0)).unwrap().values()[2],
            Value::str("7")
        );
    }
}
