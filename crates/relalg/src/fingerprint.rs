//! Fixed-width **join-key fingerprints** over interned values — the data
//! layout the hot loops key their hash tables on.
//!
//! A join key used to be a `Vec<&Value>`: one heap allocation per probed
//! row, SipHash over every value, and pointer-chasing equality. With
//! strings interned ([`mod@crate::intern`]), every [`Value`] packs into one
//! `u64` *word* (tag bits + int bits / bool / dictionary id), and a key —
//! any ordered slice of tuple positions — folds into a single mixed `u64`
//! **fingerprint**. The join build/probe in [`crate::plan`] and
//! [`mod@crate::eval`], the ⊕-bucket and `root_index` maps, and the registry's
//! per-root taps all key on fingerprints through an identity-hash map
//! ([`FpMap`]): no per-row allocation, no byte-walking hash, one integer
//! compare per lookup. Fingerprints can collide, so every consumer keeps a
//! collision-checked fallback: candidates that share a fingerprint are
//! verified against the actual values (an `O(arity)` integer compare under
//! interning) before they count as equal.
//!
//! ## Layout modes
//!
//! [`LayoutMode`] selects the layout per *structure*, snapshotted at
//! construction so a table is never built under one mode and probed under
//! another:
//!
//! * [`LayoutMode::Fingerprint`] — the default described above.
//! * [`LayoutMode::Legacy`] — the pre-interning layout (`Vec<&Value>` keys
//!   under SipHash, content-addressed tuple maps), kept as the honest
//!   baseline for `report_hotpath` and the differential layout tests.
//! * [`LayoutMode::Collide`] — every fingerprint is the same constant, so
//!   *all* keys collide and the fallback path carries the entire workload.
//!   Test-only: correctness under `Collide` proves the collision handling
//!   is complete.
//!
//! The process default comes from `DAP_LAYOUT`
//! (`fingerprint`/`legacy`/`collide`, unset ⇒ fingerprint); tests and the
//! bench harness override it at runtime with [`force_layout`]. Every mode
//! produces **bit-identical results** — the mode moves constants, never
//! output.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// Which hot-path data layout the structure under construction uses. See
/// the module docs; snapshot it once per structure with
/// [`LayoutMode::current`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutMode {
    /// Fingerprinted keys over interned ids (the default).
    Fingerprint,
    /// The pre-interning layout: allocated `Vec<&Value>` keys, SipHash,
    /// content-addressed tuple maps. Baseline for benches and tests.
    Legacy,
    /// Fingerprinting with every fingerprint forced equal — exercises the
    /// collision-checked fallback end to end (test-only).
    Collide,
}

/// Runtime override slot: 0 = none (use the env default), else mode + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn env_default() -> LayoutMode {
    static DEFAULT: OnceLock<LayoutMode> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("DAP_LAYOUT") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "fingerprint" | "fp" => LayoutMode::Fingerprint,
            "legacy" => LayoutMode::Legacy,
            "collide" => LayoutMode::Collide,
            _ => {
                eprintln!(
                    "warning: ignoring unparsable DAP_LAYOUT={v:?} \
                     (expected fingerprint|legacy|collide; using fingerprint)"
                );
                LayoutMode::Fingerprint
            }
        },
        Err(_) => LayoutMode::Fingerprint,
    })
}

impl LayoutMode {
    /// The mode new structures should be built with: the [`force_layout`]
    /// override if set, else the `DAP_LAYOUT` environment default.
    pub fn current() -> LayoutMode {
        match FORCED.load(Ordering::Relaxed) {
            1 => LayoutMode::Fingerprint,
            2 => LayoutMode::Legacy,
            3 => LayoutMode::Collide,
            _ => env_default(),
        }
    }

    /// Whether this mode keys tables the pre-interning way.
    pub fn is_legacy(self) -> bool {
        matches!(self, LayoutMode::Legacy)
    }

    /// Fingerprint of the key formed by `positions` of `t`. Under
    /// [`LayoutMode::Collide`] every key fingerprints to the same constant.
    pub fn key_fp(self, t: &Tuple, positions: &[usize]) -> u64 {
        match self {
            LayoutMode::Collide => COLLIDE_FP,
            _ => fp_of(positions.iter().map(|&i| t.get(i))),
        }
    }

    /// Fingerprint of the whole tuple (all positions in order).
    pub fn tuple_fp(self, t: &Tuple) -> u64 {
        match self {
            LayoutMode::Collide => COLLIDE_FP,
            _ => fp_of(t.values().iter()),
        }
    }
}

/// Force every subsequently *constructed* structure into `mode` (pass
/// `None` to return to the `DAP_LAYOUT` default). Existing structures are
/// unaffected — each snapshots its mode at construction — so flipping the
/// override mid-flight is safe; it only changes what gets built next.
/// Process-global: intended for differential tests and the bench harness,
/// not for production configuration (use `DAP_LAYOUT` there).
pub fn force_layout(mode: Option<LayoutMode>) {
    let v = match mode {
        None => 0,
        Some(LayoutMode::Fingerprint) => 1,
        Some(LayoutMode::Legacy) => 2,
        Some(LayoutMode::Collide) => 3,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The constant all fingerprints collapse to under [`LayoutMode::Collide`].
const COLLIDE_FP: u64 = 0xC0111DE;

/// `splitmix64` finalizer — the standard 64-bit mixer; good avalanche from
/// one multiply-xor-shift round trip.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pack one value into a fixed-width word: a tag in the top bits so values
/// of different variants never alias, payload below (int bits, bool, or
/// the interned dictionary id).
#[inline]
fn value_word(v: &Value) -> u64 {
    match v {
        Value::Bool(b) => (1 << 62) | u64::from(*b),
        Value::Int(i) => (2 << 62) | (*i as u64 & ((1 << 62) - 1)),
        Value::Str(s) => (3 << 62) | u64::from(s.id()),
    }
}

/// Fold an ordered sequence of values into one fingerprint. Order matters
/// (the accumulator threads through the mixer), so `(a, b)` and `(b, a)`
/// fingerprint differently.
#[inline]
pub(crate) fn fp_of<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h: u64 = 0x5108_37AC_E2D4_9F13;
    for v in values {
        h = splitmix64(h ^ value_word(v));
    }
    h
}

/// Pass-through hasher for keys that are already well-mixed fingerprints:
/// `write_u64` stores the word, `finish` returns it. Using SipHash on top
/// of a fingerprint would re-pay the cost the fingerprint removed.
#[derive(Default, Clone)]
pub struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fingerprint maps are keyed on u64 only; this path would indicate
        // a mis-keyed map. Fold bytes anyway to stay correct.
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, w: u64) {
        self.0 = w;
    }
}

/// A hash map keyed by pre-mixed `u64` fingerprints (identity hash).
pub type FpMap<V> = HashMap<u64, V, BuildHasherDefault<FpHasher>>;

/// The seed's join-key representation, kept as the legacy baseline: one
/// allocated `Vec<&Value>` per row, hashed by **content** (string bytes,
/// not dictionary ids) the way the pre-interning `Value` hashed. Interning
/// changed `Value`'s own `Hash` to the cheap id form, so reproducing the
/// old cost model needs this explicit wrapper — without it the legacy
/// baseline would silently inherit the very optimization it exists to
/// measure against. Equality stays `Value` equality (ids), which is
/// hash-consistent: under a global dictionary, equal ids ⇔ equal content.
#[derive(PartialEq, Eq)]
pub(crate) struct ContentKey<'a>(pub(crate) Vec<&'a Value>);

impl std::hash::Hash for ContentKey<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Bool(b) => {
                    0u8.hash(state);
                    b.hash(state);
                }
                Value::Int(i) => {
                    1u8.hash(state);
                    i.hash(state);
                }
                Value::Str(s) => {
                    2u8.hash(state);
                    s.as_str().hash(state);
                }
            }
        }
    }
}

/// Values sharing one fingerprint: almost always exactly one, a spilled
/// list only on a genuine collision (or under [`LayoutMode::Collide`]).
/// Keeping the single-entry case inline means a fingerprint table of
/// mostly-unique keys — the normal join shape — does no per-key list
/// allocation at all.
#[derive(Clone, Debug)]
pub(crate) enum Bucket<T> {
    One(T),
    Many(Vec<T>),
}

impl<T: Copy> Bucket<T> {
    /// Append `v`, spilling to a list on the first collision.
    pub(crate) fn push(&mut self, v: T) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, v]),
            Bucket::Many(list) => list.push(v),
        }
    }

    /// The bucketed values, in insertion order.
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Bucket::One(v) => std::slice::from_ref(v),
            Bucket::Many(list) => list,
        }
    }
}

/// Slots sharing one fingerprint (see [`Bucket`]).
pub(crate) type SlotEntry = Bucket<usize>;

/// SipHash over the tuple's value *content* (string bytes, not interned
/// ids) — the per-operation hashing cost of the seed's
/// `HashMap<Arc<Tuple>, usize>` slot maps before interning. The legacy
/// layout keys on this so benchmarks against it measure the layout the
/// overhaul replaced, not one that silently inherits cheap id hashing.
pub(crate) fn content_fp(t: &Tuple) -> u64 {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ContentKey(t.values().iter().collect()).hash(&mut h);
    h.finish()
}

/// A tuple → slot index keyed on 64-bit key digests with
/// collision-checked fallback: interned fingerprints ([`fp_of`]) in the
/// fingerprint layouts, content SipHash ([`content_fp`]) in
/// [`LayoutMode::Legacy`]. Lookups resolve candidate slots against the
/// caller's tuple column — the map itself stores no tuple handles, which
/// also makes clears cheap.
#[derive(Clone, Debug)]
pub(crate) struct TupleSlotMap {
    mode: LayoutMode,
    map: FpMap<SlotEntry>,
}

impl TupleSlotMap {
    /// An empty map laid out per [`LayoutMode::current`].
    pub(crate) fn with_capacity(n: usize) -> TupleSlotMap {
        TupleSlotMap {
            mode: LayoutMode::current(),
            map: FpMap::with_capacity_and_hasher(n, BuildHasherDefault::default()),
        }
    }

    fn digest(&self, t: &Tuple) -> u64 {
        if self.mode.is_legacy() {
            content_fp(t)
        } else {
            self.mode.tuple_fp(t)
        }
    }

    /// Record that `t` lives at `slot`. The caller must not insert the
    /// same tuple twice (slot maps are built over distinct tuples; use
    /// [`TupleSlotMap::get`] first for get-or-insert flows).
    pub(crate) fn insert(&mut self, t: &Arc<Tuple>, slot: usize) {
        self.map
            .entry(self.digest(t))
            .and_modify(|b| b.push(slot))
            .or_insert(SlotEntry::One(slot));
    }

    /// The slot of `t`, if present. `tuples` is the slot → tuple column
    /// candidates are verified against.
    pub(crate) fn get(&self, t: &Tuple, tuples: &[Arc<Tuple>]) -> Option<usize> {
        self.map
            .get(&self.digest(t))?
            .as_slice()
            .iter()
            .copied()
            .find(|&s| *tuples[s] == *t)
    }

    /// Drop all entries but keep the allocation (steady-state reuse on
    /// the delta path).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple;

    #[test]
    fn value_words_are_tagged_per_variant() {
        // A bool, an int and a string whose payload bits coincide must
        // still fingerprint apart.
        let b = Value::bool(true);
        let i = Value::int(1);
        let s = Value::str("x");
        assert_ne!(value_word(&b), value_word(&i));
        assert_ne!(value_word(&i), value_word(&s));
        assert_ne!(value_word(&b), value_word(&s));
    }

    #[test]
    fn fingerprints_are_order_sensitive() {
        let ab = tuple(["a", "b"]);
        let ba = tuple(["b", "a"]);
        let mode = LayoutMode::Fingerprint;
        assert_ne!(mode.tuple_fp(&ab), mode.tuple_fp(&ba));
        assert_eq!(mode.tuple_fp(&ab), mode.tuple_fp(&tuple(["a", "b"])));
    }

    #[test]
    fn key_fp_selects_positions() {
        let t = tuple(["a", "b", "c"]);
        let mode = LayoutMode::Fingerprint;
        assert_eq!(mode.key_fp(&t, &[0]), mode.tuple_fp(&tuple(["a"])));
        assert_ne!(mode.key_fp(&t, &[0]), mode.key_fp(&t, &[1]));
    }

    #[test]
    fn collide_mode_flattens_every_fingerprint() {
        let mode = LayoutMode::Collide;
        assert_eq!(
            mode.tuple_fp(&tuple(["a"])),
            mode.tuple_fp(&tuple(["completely", "different"]))
        );
    }

    #[test]
    fn fp_hasher_passes_u64_through() {
        use std::hash::Hasher as _;
        let mut h = FpHasher::default();
        h.write_u64(0xDEAD_BEEF);
        assert_eq!(h.finish(), 0xDEAD_BEEF);
    }

    fn slots_of(tuples: &[Arc<Tuple>]) -> TupleSlotMap {
        let mut m = TupleSlotMap::with_capacity(tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            m.insert(t, i);
        }
        m
    }

    #[test]
    fn slot_map_round_trips_in_every_mode() {
        let tuples: Vec<Arc<Tuple>> = (0..64)
            .map(|i| Arc::new(tuple([format!("k{i}"), format!("v{}", i % 7)])))
            .collect();
        for mode in [
            LayoutMode::Fingerprint,
            LayoutMode::Legacy,
            LayoutMode::Collide,
        ] {
            force_layout(Some(mode));
            let m = slots_of(&tuples);
            for (i, t) in tuples.iter().enumerate() {
                assert_eq!(m.get(t, &tuples), Some(i), "{mode:?}");
            }
            assert_eq!(m.get(&tuple(["missing", "row"]), &tuples), None, "{mode:?}");
        }
        force_layout(None);
    }

    #[test]
    fn slot_map_clear_empties_but_stays_usable() {
        let tuples: Vec<Arc<Tuple>> = vec![Arc::new(tuple(["a"])), Arc::new(tuple(["b"]))];
        let mut m = slots_of(&tuples);
        m.clear();
        assert_eq!(m.get(&tuples[0], &tuples), None);
        m.insert(&tuples[1], 1);
        assert_eq!(m.get(&tuples[1], &tuples), Some(1));
    }
}
