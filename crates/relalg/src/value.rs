//! Atomic values stored in tuples.
//!
//! The paper's constructions use symbolic constants (`a`, `x1`, `c3`, `T`, `F`,
//! dummies `d`) and the examples use strings and numbers, so the value domain
//! is integers, strings and booleans. Strings are **globally interned**
//! ([`crate::intern::Sym`]): each distinct text is allocated once per
//! process and every occurrence shares the canonical handle, so cloning a
//! value bumps a refcount, equality and hashing are a single integer
//! compare on the dictionary id, and the hot-path fingerprints
//! ([`crate::fingerprint`]) pack a value into one `u64` word.

use crate::intern::{intern, Sym};
use std::fmt;

/// A single attribute value. Totally ordered across variants (Bool < Int <
/// Str) so relations have a deterministic iteration order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean constant (`true` / `false`).
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Interned string / symbolic constant.
    Str(Sym),
}

impl Value {
    /// Build a string value, interning the text: repeated constants share
    /// one allocation and compare by dictionary id.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(intern(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Build a boolean value.
    pub fn bool(b: bool) -> Value {
        Value::Bool(b)
    }

    /// The string content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short name for the value's runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_meaning() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("x1").to_string(), "x1");
        assert_eq!(Value::bool(true).to_string(), "true");
    }

    #[test]
    fn ordering_across_variants_is_total_and_stable() {
        let mut vs = vec![
            Value::str("a"),
            Value::int(3),
            Value::bool(false),
            Value::int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::bool(false),
                Value::int(-1),
                Value::int(3),
                Value::str("a")
            ]
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("abc").as_int(), None);
    }

    #[test]
    fn from_impls() {
        let v: Value = 5i64.into();
        assert_eq!(v, Value::int(5));
        let v: Value = "s".into();
        assert_eq!(v, Value::str("s"));
        let v: Value = true.into();
        assert_eq!(v, Value::bool(true));
        let v: Value = 5i32.into();
        assert_eq!(v, Value::int(5));
        let v: Value = String::from("owned").into();
        assert_eq!(v, Value::str("owned"));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::int(0).type_name(), "int");
        assert_eq!(Value::str("").type_name(), "str");
        assert_eq!(Value::bool(true).type_name(), "bool");
    }

    #[test]
    fn repeated_string_constants_share_one_allocation() {
        let a = Value::str("value-intern-shared");
        let b = Value::str("value-intern-shared");
        match (&a, &b) {
            (Value::Str(sa), Value::Str(sb)) => assert_eq!(sa.id(), sb.id()),
            _ => unreachable!(),
        }
        assert_eq!(a, b);
    }
}
