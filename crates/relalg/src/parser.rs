//! A small text syntax for queries and database fixtures.
//!
//! Query syntax (exactly what [`Query`]'s `Display` emits, so parsing and
//! printing round-trip):
//!
//! ```text
//! project(join(scan UserGroup, scan GroupFile), [user, file])
//! select(scan R, (A = 'a1' and N >= 5))
//! rename(scan R, {A -> X, B -> Y})
//! union(scan R, scan S)
//! ```
//!
//! Database fixture syntax (used by tests and examples; bare identifiers in
//! tuples are string constants, matching the paper's symbolic values):
//!
//! ```text
//! relation R1(A, B) { (a, x1), (a, x2) }
//! relation R2(B, C) { (x1, c) }
//! ```

use crate::database::Database;
use crate::error::{RelalgError, Result};
use crate::name::Attr;
use crate::predicate::{CmpOp, Operand, Pred};
use crate::query::Query;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Arrow,
    Cmp(CmpOp),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> RelalgError {
        RelalgError::Parse {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // `--` line comments.
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Tok> {
        self.skip_ws_and_comments();
        let Some(c) = self.peek() else {
            return Ok(Tok::Eof);
        };
        match c {
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b'[' => {
                self.bump();
                Ok(Tok::LBracket)
            }
            b']' => {
                self.bump();
                Ok(Tok::RBracket)
            }
            b'{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b'=' => {
                self.bump();
                Ok(Tok::Cmp(CmpOp::Eq))
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Tok::Cmp(CmpOp::Ne))
                } else {
                    Err(self.err("expected '=' after '!'"))
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Tok::Cmp(CmpOp::Le))
                } else {
                    Ok(Tok::Cmp(CmpOp::Lt))
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Tok::Cmp(CmpOp::Ge))
                } else {
                    Ok(Tok::Cmp(CmpOp::Gt))
                }
            }
            b'-' => {
                // `->` arrow or negative integer (comments were skipped).
                self.bump();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        Ok(Tok::Arrow)
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = self.lex_int()?;
                        Ok(Tok::Int(-n))
                    }
                    _ => Err(self.err("expected '>' or digits after '-'")),
                }
            }
            b'\'' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            // SQL-style doubled quote is a literal quote.
                            if self.peek() == Some(b'\'') {
                                self.bump();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated string literal")),
                    }
                }
                Ok(Tok::Str(s))
            }
            d if d.is_ascii_digit() => Ok(Tok::Int(self.lex_int()?)),
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'#' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'#' || c == b'.' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Tok::Ident(s))
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn lex_int(&mut self) -> Result<i64> {
        let mut n: i64 = 0;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(i64::from(c - b'0')))
                    .ok_or_else(|| self.err("integer literal overflows i64"))?;
                self.bump();
            } else {
                break;
            }
        }
        Ok(n)
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>> {
        let mut lexer = Lexer::new(src);
        let tok = lexer.next_tok()?;
        Ok(Parser { lexer, tok })
    }

    fn err(&self, message: impl Into<String>) -> RelalgError {
        self.lexer.err(message)
    }

    fn advance(&mut self) -> Result<Tok> {
        let next = self.lexer.next_tok()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if &self.tok == tok {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.tok)))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- queries ----

    fn query(&mut self) -> Result<Query> {
        let head = self.ident("a query operator")?;
        match head.as_str() {
            "scan" => Ok(Query::scan(self.ident("a relation name")?)),
            "select" => {
                self.expect(&Tok::LParen, "'('")?;
                let input = self.query()?;
                self.expect(&Tok::Comma, "','")?;
                let pred = self.pred()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(input.select(pred))
            }
            "project" => {
                self.expect(&Tok::LParen, "'('")?;
                let input = self.query()?;
                self.expect(&Tok::Comma, "','")?;
                self.expect(&Tok::LBracket, "'['")?;
                let mut attrs: Vec<Attr> = Vec::new();
                if self.tok != Tok::RBracket {
                    loop {
                        attrs.push(self.ident("an attribute")?.into());
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(input.project(attrs))
            }
            "join" | "union" => {
                self.expect(&Tok::LParen, "'('")?;
                let left = self.query()?;
                self.expect(&Tok::Comma, "','")?;
                let right = self.query()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(if head == "join" {
                    left.join(right)
                } else {
                    left.union(right)
                })
            }
            "rename" => {
                self.expect(&Tok::LParen, "'('")?;
                let input = self.query()?;
                self.expect(&Tok::Comma, "','")?;
                self.expect(&Tok::LBrace, "'{'")?;
                let mut mapping: Vec<(Attr, Attr)> = Vec::new();
                if self.tok != Tok::RBrace {
                    loop {
                        let old = self.ident("an attribute")?;
                        self.expect(&Tok::Arrow, "'->'")?;
                        let new = self.ident("an attribute")?;
                        mapping.push((old.into(), new.into()));
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace, "'}'")?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(input.rename(mapping))
            }
            other => Err(self.err(format!("unknown query operator `{other}`"))),
        }
    }

    // ---- predicates ----

    fn pred(&mut self) -> Result<Pred> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<Pred> {
        let mut p = self.and_pred()?;
        while self.tok == Tok::Ident("or".into()) {
            self.advance()?;
            p = p.or(self.and_pred()?);
        }
        Ok(p)
    }

    fn and_pred(&mut self) -> Result<Pred> {
        let mut p = self.not_pred()?;
        while self.tok == Tok::Ident("and".into()) {
            self.advance()?;
            let rhs = self.not_pred()?;
            p = Pred::And(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn not_pred(&mut self) -> Result<Pred> {
        match &self.tok {
            Tok::Ident(s) if s == "not" => {
                self.advance()?;
                Ok(self.not_pred()?.negate())
            }
            Tok::LParen => {
                self.advance()?;
                let p = self.pred()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(p)
            }
            Tok::Ident(s) if s == "true" => {
                // Either the `true` predicate or a boolean operand compared
                // with something. Peek at the next token to decide.
                self.advance()?;
                if let Tok::Cmp(_) = self.tok {
                    self.comparison_tail(Operand::Const(Value::bool(true)))
                } else {
                    Ok(Pred::True)
                }
            }
            _ => {
                let lhs = self.operand()?;
                self.comparison_tail(lhs)
            }
        }
    }

    fn comparison_tail(&mut self, lhs: Operand) -> Result<Pred> {
        match self.advance()? {
            Tok::Cmp(op) => {
                let rhs = self.operand()?;
                Ok(Pred::Cmp { lhs, op, rhs })
            }
            other => Err(self.err(format!("expected a comparison operator, found {other:?}"))),
        }
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.advance()? {
            Tok::Ident(s) if s == "true" => Ok(Operand::Const(Value::bool(true))),
            Tok::Ident(s) if s == "false" => Ok(Operand::Const(Value::bool(false))),
            Tok::Ident(s) => Ok(Operand::Attr(s.into())),
            Tok::Int(i) => Ok(Operand::Const(Value::int(i))),
            Tok::Str(s) => Ok(Operand::Const(Value::str(s))),
            other => Err(self.err(format!("expected an operand, found {other:?}"))),
        }
    }

    // ---- database fixtures ----

    fn database(&mut self) -> Result<Database> {
        let mut db = Database::new();
        while self.tok != Tok::Eof {
            let kw = self.ident("`relation`")?;
            if kw != "relation" {
                return Err(self.err(format!("expected `relation`, found `{kw}`")));
            }
            let name = self.ident("a relation name")?;
            self.expect(&Tok::LParen, "'('")?;
            let mut attrs: Vec<Attr> = Vec::new();
            if self.tok != Tok::RParen {
                loop {
                    attrs.push(self.ident("an attribute")?.into());
                    if self.tok == Tok::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "')'")?;
            let schema = Schema::new(attrs)?;
            self.expect(&Tok::LBrace, "'{'")?;
            let mut tuples = Vec::new();
            while self.tok == Tok::LParen {
                self.advance()?;
                let mut values: Vec<Value> = Vec::new();
                if self.tok != Tok::RParen {
                    loop {
                        values.push(self.value()?);
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "')'")?;
                tuples.push(Tuple::new(values));
                if self.tok == Tok::Comma {
                    self.advance()?;
                }
            }
            self.expect(&Tok::RBrace, "'}'")?;
            db.add(Relation::new(name, schema, tuples)?)?;
        }
        Ok(db)
    }

    fn value(&mut self) -> Result<Value> {
        match self.advance()? {
            // Bare identifiers are symbolic string constants, like the
            // paper's `a`, `x1`, `c3`.
            Tok::Ident(s) if s == "true" => Ok(Value::bool(true)),
            Tok::Ident(s) if s == "false" => Ok(Value::bool(false)),
            Tok::Ident(s) => Ok(Value::str(s)),
            Tok::Str(s) => Ok(Value::str(s)),
            Tok::Int(i) => Ok(Value::int(i)),
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }

    fn finish<T>(self, value: T) -> Result<T> {
        if self.tok == Tok::Eof {
            Ok(value)
        } else {
            Err(self.err(format!("trailing input: {:?}", self.tok)))
        }
    }
}

/// Parse a query from its text form.
pub fn parse_query(src: &str) -> Result<Query> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.finish(q)
}

/// Parse a selection predicate from its text form.
pub fn parse_pred(src: &str) -> Result<Pred> {
    let mut p = Parser::new(src)?;
    let pred = p.pred()?;
    p.finish(pred)
}

/// Parse a database fixture (a sequence of `relation … { … }` blocks).
pub fn parse_database(src: &str) -> Result<Database> {
    let mut p = Parser::new(src)?;
    let db = p.database()?;
    p.finish(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;
    use crate::tuple::tuple;

    #[test]
    fn parses_scan_and_nested_operators() {
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        assert_eq!(
            q,
            Query::scan("UserGroup")
                .join(Query::scan("GroupFile"))
                .project(["user", "file"])
        );
    }

    #[test]
    fn parses_select_with_predicate() {
        let q = parse_query("select(scan R, (A = 'a1' and N >= 5))").unwrap();
        match q {
            Query::Select { pred, .. } => {
                assert_eq!(pred.to_string(), "(A = 'a1' and N >= 5)");
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parses_rename_and_union() {
        let q = parse_query("union(rename(scan R, {A -> X, B -> Y}), scan S)").unwrap();
        assert_eq!(
            q,
            Query::scan("R")
                .rename([("A", "X"), ("B", "Y")])
                .union(Query::scan("S"))
        );
        let q = parse_query("rename(scan R, {})").unwrap();
        assert_eq!(q, Query::scan("R").rename(Vec::<(&str, &str)>::new()));
    }

    #[test]
    fn display_round_trips() {
        let queries = vec![
            Query::scan("R"),
            Query::scan("R").select(Pred::attr_eq_const("A", "a'quote")),
            Query::scan("R").select(
                Pred::attr_eq_attr("A", "B")
                    .or(Pred::attr_eq_const("N", -3))
                    .and(Pred::True)
                    .negate(),
            ),
            Query::scan("R").project(["A", "B"]).join(Query::scan("S")),
            Query::scan("R")
                .rename([("A", "X")])
                .union(Query::scan("S")),
        ];
        for q in queries {
            let text = q.to_string();
            let parsed =
                parse_query(&text).unwrap_or_else(|e| panic!("failed to re-parse `{text}`: {e}"));
            assert_eq!(parsed, q, "round trip failed for `{text}`");
        }
    }

    #[test]
    fn pred_corner_cases() {
        assert_eq!(parse_pred("true").unwrap(), Pred::True);
        let p = parse_pred("true = B").unwrap();
        assert_eq!(p.to_string(), "true = B");
        let p = parse_pred("A != 'x' or not B < 3").unwrap();
        assert_eq!(p.to_string(), "(A != 'x' or (not B < 3))");
        // `and` binds tighter than `or`.
        let p = parse_pred("A = 1 or B = 2 and C = 3").unwrap();
        assert_eq!(p.to_string(), "(A = 1 or (B = 2 and C = 3))");
    }

    #[test]
    fn parses_database_fixture() {
        let db = parse_database(
            "-- Figure 1's R1 fragment
             relation R1(A, B) { (a, x1), (a, x2) }
             relation R2(B, C) { (x1, c) }
             relation Empty(Z) { }",
        )
        .unwrap();
        assert_eq!(db.relation_count(), 3);
        let r1 = db.get("R1").unwrap();
        assert_eq!(r1.schema(), &schema(["A", "B"]));
        assert!(r1.contains(&tuple(["a", "x2"])));
        assert!(db.get("Empty").unwrap().is_empty());
    }

    #[test]
    fn fixture_values_mix_types() {
        let db =
            parse_database("relation R(A, B, C) { (a, 1, true), ('sp ace', -2, false) }").unwrap();
        let r = db.get("R").unwrap();
        assert!(r.contains(&Tuple::new(vec![
            Value::str("a"),
            Value::int(1),
            Value::bool(true)
        ])));
        assert!(r.contains(&Tuple::new(vec![
            Value::str("sp ace"),
            Value::int(-2),
            Value::bool(false)
        ])));
    }

    #[test]
    fn string_escaping_round_trip() {
        let q = parse_query("select(scan R, A = 'it''s')").unwrap();
        match &q {
            Query::Select { pred, .. } => match pred {
                Pred::Cmp {
                    rhs: Operand::Const(v),
                    ..
                } => {
                    assert_eq!(v.as_str(), Some("it's"));
                }
                _ => panic!("expected comparison"),
            },
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn error_positions() {
        let err = parse_query("project(scan R, [A").unwrap_err();
        assert!(matches!(err, RelalgError::Parse { .. }));
        let err = parse_query("frobnicate(scan R)").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        let err = parse_database("relation R(A) { (1) } garbage").unwrap_err();
        assert!(err.to_string().contains("relation"));
        let err = parse_query("scan R extra").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn lexer_errors() {
        assert!(parse_query("select(scan R, A ! B)").is_err());
        assert!(parse_query("select(scan R, A = 'unterminated)").is_err());
        assert!(parse_query("select(scan R, A = 99999999999999999999)").is_err());
        assert!(parse_query("select(scan R, A @ B)").is_err());
    }
}
