//! Set-semantics relation instances.
//!
//! A relation is a schema plus a *sorted, deduplicated* vector of tuples.
//! Sorting gives deterministic iteration (tests, figures, benches) and a
//! stable row index used as tuple identity by the provenance layer.

use crate::error::{RelalgError, Result};
use crate::name::RelName;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeSet;
use std::fmt;

/// A named relation instance with set semantics.
#[derive(Clone)]
pub struct Relation {
    name: RelName,
    schema: Schema,
    /// Sorted and deduplicated; the index of a tuple in this vector is its
    /// stable row id within the instance.
    tuples: Vec<Tuple>,
    /// Lazily materialized `Arc` handles over `tuples`, row-aligned. Plan
    /// builds share these instead of deep-cloning every base tuple per
    /// build — the second and every later plan over the same instance
    /// (registry fan-out, deletion contexts, benches) bumps refcounts
    /// only. The cell itself sits behind an `Arc` so *clones of the
    /// relation share one cache*: a deletion context cloning its database
    /// still reuses (and back-fills) the caller's handles. Not part of
    /// the relation's value (see the manual [`PartialEq`]).
    shared: std::sync::Arc<std::sync::OnceLock<Vec<std::sync::Arc<Tuple>>>>,
}

/// Equality is over name, schema and tuples; the lazily-filled shared
/// handle cache is a materialization detail, never part of the value.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.name == other.name && self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// Build a relation, sorting and deduplicating `tuples`. Errors if any
    /// tuple's arity disagrees with the schema.
    pub fn new<N, I>(name: N, schema: Schema, tuples: I) -> Result<Relation>
    where
        N: Into<RelName>,
        I: IntoIterator<Item = Tuple>,
    {
        let name = name.into();
        let set: BTreeSet<Tuple> = tuples.into_iter().collect();
        for t in &set {
            if t.arity() != schema.arity() {
                return Err(RelalgError::ArityMismatch {
                    rel: name.clone(),
                    expected: schema.arity(),
                    got: t.arity(),
                });
            }
        }
        Ok(Relation {
            name,
            schema,
            tuples: set.into_iter().collect(),
            shared: std::sync::Arc::new(std::sync::OnceLock::new()),
        })
    }

    /// An empty relation over `schema`.
    pub fn empty(name: impl Into<RelName>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            shared: std::sync::Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &RelName {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Tuples in sorted order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Row-aligned shared handles over [`Relation::tuples`], materialized
    /// once per instance and reused by every plan built over it.
    pub fn shared_tuples(&self) -> &[std::sync::Arc<Tuple>] {
        self.shared.get_or_init(|| {
            self.tuples
                .iter()
                .map(|t| std::sync::Arc::new(t.clone()))
                .collect()
        })
    }

    /// The tuple at stable row index `row`.
    pub fn tuple_at(&self, row: usize) -> Option<&Tuple> {
        self.tuples.get(row)
    }

    /// The stable row index of `t`, if present (binary search).
    pub fn row_of(&self, t: &Tuple) -> Option<usize> {
        self.tuples.binary_search(t).ok()
    }

    /// Whether the relation contains `t`.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.row_of(t).is_some()
    }

    /// A copy of this relation without the rows in `rows`. Row indices refer
    /// to *this* instance; the result has its own (re-packed) indices.
    pub fn without_rows(&self, rows: &BTreeSet<usize>) -> Relation {
        let tuples: Vec<Tuple> = self
            .tuples
            .iter()
            .enumerate()
            .filter(|(i, _)| !rows.contains(i))
            .map(|(_, t)| t.clone())
            .collect();
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            tuples,
            shared: std::sync::Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// A copy of this relation with `extra` tuples inserted.
    pub fn with_tuples<I: IntoIterator<Item = Tuple>>(&self, extra: I) -> Result<Relation> {
        Relation::new(
            self.name.clone(),
            self.schema.clone(),
            self.tuples.iter().cloned().chain(extra),
        )
    }

    /// Render as an aligned text table in the style of the paper's figures:
    ///
    /// ```text
    /// R1
    /// A  B
    /// a  x1
    /// a  x2
    /// ```
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> = self.schema.attrs().iter().map(|a| a.to_string()).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(self.name.as_str());
        out.push('\n');
        let push_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', w - cell.len()));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push_row(&headers, &mut out);
        for row in &rows {
            push_row(row, &mut out);
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table_string())
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({} {} with {} tuples)",
            self.name,
            self.schema,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;
    use crate::tuple::tuple;

    fn r1() -> Relation {
        Relation::new(
            "R1",
            schema(["A", "B"]),
            vec![tuple(["a", "x2"]), tuple(["a", "x1"]), tuple(["a", "x1"])],
        )
        .unwrap()
    }

    #[test]
    fn dedups_and_sorts() {
        let r = r1();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0], tuple(["a", "x1"]));
        assert_eq!(r.tuples()[1], tuple(["a", "x2"]));
    }

    #[test]
    fn arity_checked() {
        let err = Relation::new("R", schema(["A"]), vec![tuple(["a", "b"])]);
        assert!(matches!(err, Err(RelalgError::ArityMismatch { .. })));
    }

    #[test]
    fn stable_rows_and_lookup() {
        let r = r1();
        assert_eq!(r.row_of(&tuple(["a", "x2"])), Some(1));
        assert_eq!(r.tuple_at(1), Some(&tuple(["a", "x2"])));
        assert!(r.contains(&tuple(["a", "x1"])));
        assert!(!r.contains(&tuple(["b", "x1"])));
        assert_eq!(r.row_of(&tuple(["zz", "zz"])), None);
    }

    #[test]
    fn without_rows_removes_by_index() {
        let r = r1();
        let out = r.without_rows(&BTreeSet::from([0]));
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple(["a", "x2"])));
        // original untouched
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn with_tuples_adds_and_dedups() {
        let r = r1();
        let out = r
            .with_tuples(vec![tuple(["b", "y"]), tuple(["a", "x1"])])
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn table_rendering_matches_paper_style() {
        let r = r1();
        let expected = "R1\nA  B\na  x1\na  x2\n";
        assert_eq!(r.to_table_string(), expected);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty("E", schema(["X"]));
        assert!(r.is_empty());
        assert_eq!(r.to_table_string(), "E\nX\n");
    }
}
