//! Set-semantics evaluation of SPJRU queries.
//!
//! The evaluator materializes every intermediate result. That is a deliberate
//! choice: the paper's hardness results for annotation placement are in
//! *combined* complexity, where the blow-up happens exactly in these
//! intermediates, and the benches measure that blow-up.

use crate::database::Database;
use crate::error::Result;
use crate::name::Attr;
use crate::query::Query;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::typecheck::output_schema;
use std::collections::{BTreeSet, HashMap};

/// A materialized query result: an anonymous relation (schema + sorted tuple
/// set).
#[derive(Clone, PartialEq, Eq)]
pub struct ResultSet {
    /// Output schema.
    pub schema: Schema,
    /// Sorted, deduplicated output tuples.
    pub tuples: Vec<Tuple>,
}

impl ResultSet {
    fn from_set(schema: Schema, set: BTreeSet<Tuple>) -> ResultSet {
        ResultSet {
            schema,
            tuples: set.into_iter().collect(),
        }
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether `t` occurs in the result (binary search).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// The output tuples as a `BTreeSet` (for set-algebraic comparisons).
    pub fn tuple_set(&self) -> BTreeSet<Tuple> {
        self.tuples.iter().cloned().collect()
    }

    /// Convert to a named relation (for display / further querying).
    pub fn into_relation(self, name: &str) -> Relation {
        Relation::new(name, self.schema, self.tuples).expect("result arity is consistent")
    }

    /// Render as an aligned table titled `name`, like the paper's figures.
    pub fn to_table_string(&self, name: &str) -> String {
        self.clone().into_relation(name).to_table_string()
    }
}

impl std::fmt::Debug for ResultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResultSet({} tuples over {})", self.len(), self.schema)
    }
}

/// Evaluate `q` against `db`, producing a materialized result.
pub fn eval(q: &Query, db: &Database) -> Result<ResultSet> {
    let catalog = db.catalog();
    // Type-check up front so evaluation can't fail halfway through on a
    // schema error.
    output_schema(q, &catalog)?;
    eval_unchecked(q, db)
}

fn eval_unchecked(q: &Query, db: &Database) -> Result<ResultSet> {
    match q {
        Query::Scan(rel) => {
            let r = db.require(rel)?;
            Ok(ResultSet {
                schema: r.schema().clone(),
                tuples: r.tuples().to_vec(),
            })
        }
        Query::Select { input, pred } => {
            let input = eval_unchecked(input, db)?;
            let mut out = BTreeSet::new();
            for t in &input.tuples {
                if pred.eval(&input.schema, t)? {
                    out.insert(t.clone());
                }
            }
            Ok(ResultSet::from_set(input.schema, out))
        }
        Query::Project { input, attrs } => {
            let input = eval_unchecked(input, db)?;
            let schema = input.schema.project(attrs)?;
            let positions = input.schema.positions_of(attrs)?;
            let out: BTreeSet<Tuple> = input
                .tuples
                .iter()
                .map(|t| t.project_positions(&positions))
                .collect();
            Ok(ResultSet::from_set(schema, out))
        }
        Query::Join { left, right } => {
            let l = eval_unchecked(left, db)?;
            let r = eval_unchecked(right, db)?;
            Ok(hash_join(&l, &r))
        }
        Query::Union { left, right } => {
            let l = eval_unchecked(left, db)?;
            let r = eval_unchecked(right, db)?;
            // Align the right branch to the left branch's attribute order.
            let positions = r.schema.positions_of(l.schema.attrs())?;
            let mut out: BTreeSet<Tuple> = l.tuples.iter().cloned().collect();
            out.extend(r.tuples.iter().map(|t| t.project_positions(&positions)));
            Ok(ResultSet::from_set(l.schema, out))
        }
        Query::Rename { input, mapping } => {
            let input = eval_unchecked(input, db)?;
            let schema = input.schema.rename(mapping)?;
            Ok(ResultSet {
                schema,
                tuples: input.tuples,
            })
        }
    }
}

/// Natural hash join: build on the smaller input, probe with the larger.
pub(crate) fn hash_join(l: &ResultSet, r: &ResultSet) -> ResultSet {
    let shared: Vec<Attr> = l.schema.shared_with(&r.schema);
    let schema = l.schema.join_with(&r.schema);
    let l_keys: Vec<usize> = shared
        .iter()
        .map(|a| l.schema.index_of(a).expect("shared attr"))
        .collect();
    let r_keys: Vec<usize> = shared
        .iter()
        .map(|a| r.schema.index_of(a).expect("shared attr"))
        .collect();
    // Positions of the right tuple's non-shared attributes, in schema order.
    let r_extra: Vec<usize> = r
        .schema
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !l.schema.contains(a))
        .map(|(i, _)| i)
        .collect();

    // Build the hash table on the right side, probe with the left, so output
    // construction (left ++ right-extras) stays simple.
    let mode = crate::fingerprint::LayoutMode::current();
    let mut out = BTreeSet::new();
    if mode.is_legacy() {
        // Pre-interning layout: allocated borrowed-slice keys under
        // SipHash over the key *content* (string bytes, not ids).
        use crate::fingerprint::ContentKey;
        fn key_of<'a>(t: &'a Tuple, keys: &[usize]) -> ContentKey<'a> {
            ContentKey(keys.iter().map(|&i| t.get(i)).collect())
        }
        let mut table: HashMap<ContentKey, Vec<&Tuple>> = HashMap::with_capacity(r.tuples.len());
        for t in &r.tuples {
            table.entry(key_of(t, &r_keys)).or_default().push(t);
        }
        for lt in &l.tuples {
            if let Some(matches) = table.get(&key_of(lt, &l_keys)) {
                for rt in matches {
                    out.insert(lt.join_concat(rt, &r_extra));
                }
            }
        }
    } else {
        // Fingerprinted keys: no per-row key allocation, identity hash.
        // Candidates sharing a fingerprint are verified against the actual
        // key values (an integer compare per attribute under interning).
        use crate::fingerprint::Bucket;
        let mut table: crate::fingerprint::FpMap<Bucket<&Tuple>> =
            crate::fingerprint::FpMap::with_capacity_and_hasher(r.tuples.len(), Default::default());
        for t in &r.tuples {
            table
                .entry(mode.key_fp(t, &r_keys))
                .and_modify(|b| b.push(t))
                .or_insert(Bucket::One(t));
        }
        for lt in &l.tuples {
            if let Some(matches) = table.get(&mode.key_fp(lt, &l_keys)) {
                for rt in matches.as_slice() {
                    let keys_match = l_keys
                        .iter()
                        .zip(&r_keys)
                        .all(|(&lk, &rk)| lt.get(lk) == rt.get(rk));
                    if keys_match {
                        out.insert(lt.join_concat(rt, &r_extra));
                    }
                }
            }
        }
    }
    ResultSet::from_set(schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use crate::schema::schema;
    use crate::tuple::tuple;

    /// The running example of Section 2.1.1: users, groups and files.
    fn usergroup_db() -> Database {
        Database::from_relations(vec![
            Relation::new(
                "UserGroup",
                schema(["user", "group"]),
                vec![
                    tuple(["ann", "staff"]),
                    tuple(["bob", "staff"]),
                    tuple(["bob", "dev"]),
                ],
            )
            .unwrap(),
            Relation::new(
                "GroupFile",
                schema(["group", "file"]),
                vec![
                    tuple(["staff", "report.txt"]),
                    tuple(["dev", "main.rs"]),
                    tuple(["dev", "report.txt"]),
                ],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn scan_returns_relation() {
        let db = usergroup_db();
        let out = eval(&Query::scan("UserGroup"), &db).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema, schema(["user", "group"]));
    }

    #[test]
    fn select_filters() {
        let db = usergroup_db();
        let q = Query::scan("UserGroup").select(Pred::attr_eq_const("user", "bob"));
        let out = eval(&q, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple(["bob", "dev"])));
    }

    #[test]
    fn project_dedups() {
        let db = usergroup_db();
        let q = Query::scan("UserGroup").project(["group"]);
        let out = eval(&q, &db).unwrap();
        assert_eq!(out.len(), 2); // staff appears twice before dedup
    }

    #[test]
    fn natural_join_on_shared_attr() {
        let db = usergroup_db();
        let q = Query::scan("UserGroup").join(Query::scan("GroupFile"));
        let out = eval(&q, &db).unwrap();
        assert_eq!(out.schema, schema(["user", "group", "file"]));
        assert_eq!(out.len(), 4);
        assert!(out.contains(&tuple(["bob", "dev", "main.rs"])));
        assert!(!out.contains(&tuple(["ann", "dev", "main.rs"])));
    }

    #[test]
    fn paper_query_user_file() {
        let db = usergroup_db();
        let q = Query::scan("UserGroup")
            .join(Query::scan("GroupFile"))
            .project(["user", "file"]);
        let out = eval(&q, &db).unwrap();
        // (bob, report.txt) has two witnesses (via staff and via dev).
        assert_eq!(out.len(), 3);
        assert!(out.contains(&tuple(["bob", "report.txt"])));
        assert!(out.contains(&tuple(["ann", "report.txt"])));
        assert!(out.contains(&tuple(["bob", "main.rs"])));
    }

    #[test]
    fn join_with_disjoint_schemas_is_cross_product() {
        let db = Database::from_relations(vec![
            Relation::new("L", schema(["A"]), vec![tuple(["1"]), tuple(["2"])]).unwrap(),
            Relation::new("R", schema(["B"]), vec![tuple(["x"]), tuple(["y"])]).unwrap(),
        ])
        .unwrap();
        let out = eval(&Query::scan("L").join(Query::scan("R")), &db).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn self_join_is_identity_on_set_semantics() {
        let db = usergroup_db();
        let q = Query::scan("UserGroup").join(Query::scan("UserGroup"));
        let out = eval(&q, &db).unwrap();
        assert_eq!(
            out.tuple_set(),
            eval(&Query::scan("UserGroup"), &db).unwrap().tuple_set()
        );
    }

    #[test]
    fn union_aligns_attribute_order() {
        let db = Database::from_relations(vec![
            Relation::new("L", schema(["A", "B"]), vec![tuple(["1", "2"])]).unwrap(),
            Relation::new(
                "R",
                schema(["B", "A"]),
                vec![tuple(["2", "1"]), tuple(["9", "8"])],
            )
            .unwrap(),
        ])
        .unwrap();
        let out = eval(&Query::scan("L").union(Query::scan("R")), &db).unwrap();
        // (1,2) from L coincides with R's (B=2, A=1) after alignment.
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple(["1", "2"])));
        assert!(out.contains(&tuple(["8", "9"])));
    }

    #[test]
    fn rename_changes_schema_not_tuples() {
        let db = usergroup_db();
        let q = Query::scan("UserGroup").rename([("user", "member")]);
        let out = eval(&q, &db).unwrap();
        assert_eq!(out.schema, schema(["member", "group"]));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn rename_enables_union_across_relations() {
        let db = usergroup_db();
        // δ renames GroupFile(group,file) to (user,group)-compatible shape.
        let q = Query::scan("UserGroup")
            .union(Query::scan("GroupFile").rename([("group", "user"), ("file", "group")]));
        let out = eval(&q, &db).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn eval_type_errors_surface() {
        let db = usergroup_db();
        let q = Query::scan("Nope");
        assert!(eval(&q, &db).is_err());
        let q = Query::scan("UserGroup").project(["nope"]);
        assert!(eval(&q, &db).is_err());
    }

    #[test]
    fn monotonicity_on_example() {
        // S' ⊆ S ⇒ Q(S') ⊆ Q(S) — spot check; the property test in
        // tests/prop_eval.rs covers random instances.
        let db = usergroup_db();
        let q = Query::scan("UserGroup")
            .join(Query::scan("GroupFile"))
            .project(["user", "file"]);
        let full = eval(&q, &db).unwrap().tuple_set();
        let tid = db.tid_of("UserGroup", &tuple(["bob", "staff"])).unwrap();
        let smaller = db.without(&BTreeSet::from([tid]));
        let sub = eval(&q, &smaller).unwrap().tuple_set();
        assert!(sub.is_subset(&full));
    }

    #[test]
    fn empty_inputs() {
        let db = Database::from_relations(vec![
            Relation::empty("E", schema(["A"])),
            Relation::new("R", schema(["A"]), vec![tuple(["1"])]).unwrap(),
        ])
        .unwrap();
        let out = eval(&Query::scan("E").join(Query::scan("R")), &db).unwrap();
        assert!(out.is_empty());
        let out = eval(&Query::scan("E").union(Query::scan("R")), &db).unwrap();
        assert_eq!(out.len(), 1);
    }
}
