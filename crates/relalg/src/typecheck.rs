//! Static schema inference for queries.
//!
//! `output_schema` computes the schema `Q(S)` will have, and rejects
//! ill-formed queries (projections of unknown attributes, incompatible
//! unions, non-injective renames, reserved attribute names) before any
//! evaluation happens.

use crate::database::Catalog;
use crate::error::{RelalgError, Result};
use crate::query::Query;
use crate::schema::Schema;

/// Infer the output schema of `q` against `catalog`, validating the query.
pub fn output_schema(q: &Query, catalog: &Catalog) -> Result<Schema> {
    match q {
        Query::Scan(rel) => catalog
            .get(rel)
            .cloned()
            .ok_or_else(|| RelalgError::UnknownRelation { rel: rel.clone() }),
        Query::Select { input, pred } => {
            let schema = output_schema(input, catalog)?;
            pred.validate(&schema)?;
            Ok(schema)
        }
        Query::Project { input, attrs } => {
            let schema = output_schema(input, catalog)?;
            schema.project(attrs)
        }
        Query::Join { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            Ok(l.join_with(&r))
        }
        Query::Union { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            if !l.same_attr_set(&r) {
                return Err(RelalgError::UnionIncompatible { left: l, right: r });
            }
            // The union's presentation order follows the left branch.
            Ok(l)
        }
        Query::Rename { input, mapping } => {
            let schema = output_schema(input, catalog)?;
            schema.rename(mapping)
        }
    }
}

/// Validate that user-supplied queries do not use the reserved internal
/// attribute prefix (`#`), which the normalizer owns.
pub fn reject_internal_attrs(q: &Query) -> Result<()> {
    fn check_schema_attrs(attrs: &[crate::name::Attr]) -> Result<()> {
        for a in attrs {
            if a.is_internal() {
                return Err(RelalgError::ReservedAttr { attr: a.clone() });
            }
        }
        Ok(())
    }
    match q {
        Query::Scan(_) => Ok(()),
        Query::Select { input, pred } => {
            check_schema_attrs(&pred.referenced_attrs())?;
            reject_internal_attrs(input)
        }
        Query::Project { input, attrs } => {
            check_schema_attrs(attrs)?;
            reject_internal_attrs(input)
        }
        Query::Join { left, right } | Query::Union { left, right } => {
            reject_internal_attrs(left)?;
            reject_internal_attrs(right)
        }
        Query::Rename { input, mapping } => {
            for (a, b) in mapping {
                if a.is_internal() || b.is_internal() {
                    return Err(RelalgError::ReservedAttr {
                        attr: if a.is_internal() {
                            a.clone()
                        } else {
                            b.clone()
                        },
                    });
                }
            }
            reject_internal_attrs(input)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use crate::schema::schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert("R1".into(), schema(["A", "B"]));
        c.insert("R2".into(), schema(["B", "C"]));
        c.insert("R3".into(), schema(["A", "B"]));
        c
    }

    #[test]
    fn scan_and_join_schemas() {
        let c = catalog();
        let q = Query::scan("R1").join(Query::scan("R2"));
        assert_eq!(output_schema(&q, &c).unwrap(), schema(["A", "B", "C"]));
    }

    #[test]
    fn unknown_relation() {
        let c = catalog();
        assert!(matches!(
            output_schema(&Query::scan("Zed"), &c),
            Err(RelalgError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn select_validates_predicate() {
        let c = catalog();
        let ok = Query::scan("R1").select(Pred::attr_eq_const("A", 1));
        assert!(output_schema(&ok, &c).is_ok());
        let bad = Query::scan("R1").select(Pred::attr_eq_const("C", 1));
        assert!(output_schema(&bad, &c).is_err());
    }

    #[test]
    fn project_schema_and_errors() {
        let c = catalog();
        let q = Query::scan("R1").project(["B"]);
        assert_eq!(output_schema(&q, &c).unwrap(), schema(["B"]));
        let bad = Query::scan("R1").project(["Z"]);
        assert!(output_schema(&bad, &c).is_err());
    }

    #[test]
    fn union_compatibility() {
        let c = catalog();
        let ok = Query::scan("R1").union(Query::scan("R3"));
        assert_eq!(output_schema(&ok, &c).unwrap(), schema(["A", "B"]));
        let bad = Query::scan("R1").union(Query::scan("R2"));
        assert!(matches!(
            output_schema(&bad, &c),
            Err(RelalgError::UnionIncompatible { .. })
        ));
        // Reordered attribute sets are compatible.
        let reordered = Query::scan("R1").union(Query::scan("R3").project(["B", "A"]));
        assert_eq!(output_schema(&reordered, &c).unwrap(), schema(["A", "B"]));
    }

    #[test]
    fn rename_schema() {
        let c = catalog();
        let q = Query::scan("R1").rename([("A", "X")]);
        assert_eq!(output_schema(&q, &c).unwrap(), schema(["X", "B"]));
        // Rename enabling a union (Theorem 2.7 uses δ this way).
        let q = Query::scan("R2")
            .rename([("B", "A"), ("C", "B")])
            .union(Query::scan("R1"));
        assert_eq!(output_schema(&q, &c).unwrap(), schema(["A", "B"]));
        let bad = Query::scan("R1").rename([("A", "B")]);
        assert!(output_schema(&bad, &c).is_err());
    }

    #[test]
    fn self_join_is_idempotent_schema() {
        let c = catalog();
        let q = Query::scan("R1").join(Query::scan("R1"));
        assert_eq!(output_schema(&q, &c).unwrap(), schema(["A", "B"]));
    }

    #[test]
    fn internal_attr_rejection() {
        let q = Query::scan("R1").project(["#0"]);
        assert!(reject_internal_attrs(&q).is_err());
        let q = Query::scan("R1").rename([("A", "#1")]);
        assert!(reject_internal_attrs(&q).is_err());
        let q = Query::scan("R1").select(Pred::attr_eq_const("#2", 0));
        assert!(reject_internal_attrs(&q).is_err());
        let q = Query::scan("R1").project(["A"]);
        assert!(reject_internal_attrs(&q).is_ok());
    }
}
