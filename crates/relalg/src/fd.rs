//! Functional dependencies and key constraints.
//!
//! Section 2.1.1 of the paper remarks that "most joins are performed on
//! foreign keys" and that *project-join queries based on key constraints*
//! admit a polynomial side-effect-free deletion test. This module supplies
//! the machinery: per-relation FDs, attribute-set closure, key tests,
//! instance validation, and the query-level condition — **do the projected
//! attributes functionally determine the whole join?** — that
//! `dap-core::deletion::keyed` dispatches on.

use crate::database::Database;
use crate::name::{Attr, RelName};
use crate::normalize::Branch;
use crate::relation::Relation;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A functional dependency `lhs → rhs` over one relation's attributes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Fd {
    /// Determinant attributes.
    pub lhs: BTreeSet<Attr>,
    /// Determined attributes.
    pub rhs: BTreeSet<Attr>,
}

impl Fd {
    /// Build an FD from attribute lists.
    pub fn new<I, J, A, B>(lhs: I, rhs: J) -> Fd
    where
        I: IntoIterator<Item = A>,
        J: IntoIterator<Item = B>,
        A: Into<Attr>,
        B: Into<Attr>,
    {
        Fd {
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: rhs.into_iter().map(Into::into).collect(),
        }
    }

    /// A key constraint: `key → all attributes of the schema`.
    pub fn key<I, A>(key: I, schema: &crate::schema::Schema) -> Fd
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        Fd {
            lhs: key.into_iter().map(Into::into).collect(),
            rhs: schema.attrs().iter().cloned().collect(),
        }
    }

    /// Rewrite the FD under an attribute renaming (old → new pairs).
    pub fn rename(&self, mapping: &[(Attr, Attr)]) -> Fd {
        let rename_one = |a: &Attr| -> Attr {
            mapping
                .iter()
                .find(|(old, _)| old == a)
                .map(|(_, new)| new.clone())
                .unwrap_or_else(|| a.clone())
        };
        Fd {
            lhs: self.lhs.iter().map(rename_one).collect(),
            rhs: self.rhs.iter().map(rename_one).collect(),
        }
    }

    /// Whether `rel`'s instance satisfies the FD: no two tuples agree on
    /// `lhs` while disagreeing on `rhs`.
    pub fn holds_on(&self, rel: &Relation) -> bool {
        let schema = rel.schema();
        let lhs_pos: Vec<usize> = match self.lhs.iter().map(|a| schema.index_of(a)).collect() {
            Some(v) => v,
            None => return false, // FD mentions unknown attributes
        };
        let rhs_pos: Vec<usize> = match self.rhs.iter().map(|a| schema.index_of(a)).collect() {
            Some(v) => v,
            None => return false,
        };
        let mut seen: HashMap<Vec<&crate::value::Value>, Vec<&crate::value::Value>> =
            HashMap::with_capacity(rel.len());
        for t in rel.tuples() {
            let key: Vec<_> = lhs_pos.iter().map(|&i| t.get(i)).collect();
            let val: Vec<_> = rhs_pos.iter().map(|&i| t.get(i)).collect();
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if e.get() != &val {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        true
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let list = |s: &BTreeSet<Attr>| -> String {
            s.iter().map(Attr::as_str).collect::<Vec<_>>().join(", ")
        };
        write!(f, "{{{}}} -> {{{}}}", list(&self.lhs), list(&self.rhs))
    }
}

/// FDs declared per relation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FdCatalog {
    fds: BTreeMap<RelName, Vec<Fd>>,
}

impl FdCatalog {
    /// An empty catalog (no constraints known).
    pub fn new() -> FdCatalog {
        FdCatalog::default()
    }

    /// Declare an FD on `rel`.
    pub fn add(&mut self, rel: impl Into<RelName>, fd: Fd) -> &mut Self {
        self.fds.entry(rel.into()).or_default().push(fd);
        self
    }

    /// Declare `key` as a key of `rel` in `db` (shorthand for
    /// `key → schema`). Panics if the relation is missing.
    pub fn add_key(&mut self, db: &Database, rel: &str, key: &[&str]) -> &mut Self {
        let r = db.get(rel).expect("relation exists");
        let fd = Fd::key(key.iter().copied(), r.schema());
        self.add(r.name().clone(), fd)
    }

    /// The FDs declared on `rel`.
    pub fn fds_of(&self, rel: &str) -> &[Fd] {
        self.fds.get(rel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Check that every declared FD holds on its relation's instance.
    pub fn validate(&self, db: &Database) -> Result<(), String> {
        for (rel, fds) in &self.fds {
            let r = db
                .get(rel.as_str())
                .ok_or_else(|| format!("FD declared on unknown relation `{rel}`"))?;
            for fd in fds {
                if !fd.holds_on(r) {
                    return Err(format!("FD {fd} violated by instance of `{rel}`"));
                }
            }
        }
        Ok(())
    }
}

/// Attribute-set closure under a set of FDs (the textbook fixpoint).
pub fn closure(attrs: &BTreeSet<Attr>, fds: &[Fd]) -> BTreeSet<Attr> {
    let mut out = attrs.clone();
    loop {
        let before = out.len();
        for fd in fds {
            if fd.lhs.is_subset(&out) {
                out.extend(fd.rhs.iter().cloned());
            }
        }
        if out.len() == before {
            return out;
        }
    }
}

/// Whether `attrs` is a superkey of `schema` under `fds`.
pub fn is_superkey(attrs: &BTreeSet<Attr>, schema: &crate::schema::Schema, fds: &[Fd]) -> bool {
    let c = closure(attrs, fds);
    schema.attrs().iter().all(|a| c.contains(a))
}

/// The §2.1.1 condition on a normal-form branch: do the branch's projected
/// attributes functionally determine **every** attribute of the join,
/// under the scans' FDs rewritten into the branch's current names?
///
/// When this holds, every output tuple of the branch extends uniquely to a
/// joined tuple — a single witness — so the side-effect-free deletion test
/// is polynomial (`dap-core::deletion::keyed`).
pub fn projection_determines_join(branch: &Branch, catalog: &FdCatalog) -> bool {
    let mut fds: Vec<Fd> = Vec::new();
    for scan in &branch.scans {
        for fd in catalog.fds_of(scan.rel.as_str()) {
            fds.push(fd.rename(&scan.mapping));
        }
    }
    let projected: BTreeSet<Attr> = branch.proj.iter().cloned().collect();
    let all = branch.current_names();
    let c = closure(&projected, &fds);
    all.is_subset(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::{parse_database, parse_query};
    use crate::schema::schema;

    fn emp_db() -> Database {
        parse_database(
            "relation Emp(eid, dept) { (e1, sales), (e2, sales), (e3, eng) }
             relation Dept(dept, mgr) { (sales, ann), (eng, bob) }",
        )
        .unwrap()
    }

    fn attrs(names: &[&str]) -> BTreeSet<Attr> {
        names.iter().map(Attr::new).collect()
    }

    #[test]
    fn closure_fixpoint() {
        let fds = vec![
            Fd::new(["A"], ["B"]),
            Fd::new(["B"], ["C"]),
            Fd::new(["C", "D"], ["E"]),
        ];
        let c = closure(&attrs(&["A"]), &fds);
        assert!(c.contains(&Attr::new("A")));
        assert!(c.contains(&Attr::new("B")));
        assert!(c.contains(&Attr::new("C")));
        assert!(!c.contains(&Attr::new("E")), "needs D too");
        let c = closure(&attrs(&["A", "D"]), &fds);
        assert!(c.contains(&Attr::new("E")));
    }

    #[test]
    fn superkey_test() {
        let s = schema(["A", "B", "C"]);
        let fds = vec![Fd::new(["A"], ["B"]), Fd::new(["B"], ["C"])];
        assert!(is_superkey(&attrs(&["A"]), &s, &fds));
        assert!(!is_superkey(&attrs(&["B"]), &s, &fds));
    }

    #[test]
    fn fd_holds_on_instance() {
        let db = emp_db();
        let dept = db.get("Dept").unwrap();
        assert!(Fd::new(["dept"], ["mgr"]).holds_on(dept));
        let emp = db.get("Emp").unwrap();
        assert!(Fd::new(["eid"], ["dept"]).holds_on(emp));
        assert!(
            !Fd::new(["dept"], ["eid"]).holds_on(emp),
            "sales has two eids"
        );
        assert!(
            !Fd::new(["nope"], ["eid"]).holds_on(emp),
            "unknown attr fails"
        );
    }

    #[test]
    fn catalog_validation() {
        let db = emp_db();
        let mut cat = FdCatalog::new();
        cat.add_key(&db, "Emp", &["eid"]);
        cat.add_key(&db, "Dept", &["dept"]);
        assert!(cat.validate(&db).is_ok());
        cat.add("Emp", Fd::new(["dept"], ["eid"]));
        assert!(cat.validate(&db).is_err());
        let mut bad = FdCatalog::new();
        bad.add("Ghost", Fd::new(["A"], ["B"]));
        assert!(bad.validate(&db).is_err());
    }

    #[test]
    fn fd_rename() {
        let fd = Fd::new(["A"], ["B", "C"]);
        let renamed = fd.rename(&[("A".into(), "X".into()), ("C".into(), "Y".into())]);
        assert_eq!(renamed, Fd::new(["X"], ["B", "Y"]));
    }

    #[test]
    fn projection_determines_join_on_fk_query() {
        let db = emp_db();
        let mut cat = FdCatalog::new();
        cat.add_key(&db, "Emp", &["eid"]);
        cat.add_key(&db, "Dept", &["dept"]);
        // Π_{eid,mgr}(Emp ⋈ Dept): eid → dept (Emp key), dept → mgr (Dept
        // key), so {eid, mgr} determines everything.
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert!(projection_determines_join(&nf.branches[0], &cat));

        // Π_{mgr}(Emp ⋈ Dept): mgr determines nothing — condition fails.
        let q = parse_query("project(join(scan Emp, scan Dept), [mgr])").unwrap();
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert!(!projection_determines_join(&nf.branches[0], &cat));

        // Without any FDs the condition never holds (unless nothing is
        // projected away).
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert!(!projection_determines_join(
            &nf.branches[0],
            &FdCatalog::new()
        ));
    }

    #[test]
    fn projection_determines_join_through_rename() {
        let db = emp_db();
        let mut cat = FdCatalog::new();
        cat.add_key(&db, "Emp", &["eid"]);
        cat.add_key(&db, "Dept", &["dept"]);
        // Rename eid → worker before projecting: the FD must follow the
        // rename.
        let q = parse_query(
            "project(rename(join(scan Emp, scan Dept), {eid -> worker}), [worker, mgr])",
        )
        .unwrap();
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert!(projection_determines_join(&nf.branches[0], &cat));
    }

    #[test]
    fn display() {
        assert_eq!(Fd::new(["A", "B"], ["C"]).to_string(), "{A, B} -> {C}");
    }
}
