//! Union normal form for SPJRU queries (Theorem 3.1).
//!
//! Every SPJRU query can be rewritten as a **union of
//! select-project-join-rename branches**
//!
//! ```text
//! Q  ≡  ⋃_i  Π_{B_i}( σ_{p_i}( δ(R_{i,1}) ⋈ … ⋈ δ(R_{i,k_i}) ) )
//! ```
//!
//! using only rewrites that preserve both the result *and* the
//! annotation-propagation relation `R(Q, S)` between source and view
//! locations (the paper's Theorem 3.1):
//!
//! * renames are pushed down to the leaf scans,
//! * joins and selections distribute over unions,
//! * projections are pulled above joins, renaming projected-away attributes
//!   to fresh internal names (`#k`) so they cannot capture attributes of the
//!   other join operand.
//!
//! The normal form is what the polynomial solvers in `dap-core` (Theorems
//! 2.3, 2.4, 2.8, 2.9, 3.3, 3.4) are defined over.

use crate::database::Catalog;
use crate::error::{RelalgError, Result};
use crate::name::{Attr, RelName};
use crate::predicate::Pred;
use crate::query::Query;
use crate::typecheck::output_schema;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A base-relation scan whose attributes have (possibly) been renamed.
/// `mapping` is total: one `(original, current)` pair per schema attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RenamedScan {
    /// The base relation.
    pub rel: RelName,
    /// `(original attribute, current attribute)` for every attribute of the
    /// relation, in schema order.
    pub mapping: Vec<(Attr, Attr)>,
}

impl RenamedScan {
    fn identity(rel: RelName, attrs: &[Attr]) -> RenamedScan {
        RenamedScan {
            rel,
            mapping: attrs.iter().map(|a| (a.clone(), a.clone())).collect(),
        }
    }

    /// The current (post-rename) attribute names, in schema order.
    pub fn current_attrs(&self) -> Vec<Attr> {
        self.mapping.iter().map(|(_, cur)| cur.clone()).collect()
    }

    /// The current name of original attribute `orig`, if it exists.
    pub fn current_of(&self, orig: &Attr) -> Option<&Attr> {
        self.mapping.iter().find(|(o, _)| o == orig).map(|(_, c)| c)
    }

    /// The original name of current attribute `cur`, if it exists.
    pub fn original_of(&self, cur: &Attr) -> Option<&Attr> {
        self.mapping.iter().find(|(_, c)| c == cur).map(|(o, _)| o)
    }

    fn substitute(&mut self, subst: &BTreeMap<Attr, Attr>) {
        for (_, cur) in &mut self.mapping {
            if let Some(new) = subst.get(cur) {
                *cur = new.clone();
            }
        }
    }

    /// Render as a query fragment: `scan R` or `rename(scan R, {…})`.
    pub fn to_query(&self) -> Query {
        let nontrivial: Vec<(Attr, Attr)> = self
            .mapping
            .iter()
            .filter(|(o, c)| o != c)
            .cloned()
            .collect();
        if nontrivial.is_empty() {
            Query::scan(self.rel.clone())
        } else {
            Query::scan(self.rel.clone()).rename(nontrivial)
        }
    }
}

/// One select-project-join-rename branch of the normal form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Branch {
    /// The renamed scans joined together (natural join on shared current
    /// names).
    pub scans: Vec<RenamedScan>,
    /// Selection applied below the projection (over current names).
    pub pred: Pred,
    /// Output attributes (current names), in order.
    pub proj: Vec<Attr>,
}

impl Branch {
    /// All current attribute names across the branch's scans (the join's
    /// output attribute set).
    pub fn current_names(&self) -> BTreeSet<Attr> {
        self.scans
            .iter()
            .flat_map(|s| s.mapping.iter().map(|(_, c)| c.clone()))
            .collect()
    }

    /// Current names that are *not* projected (internal to the branch).
    pub fn internal_names(&self) -> BTreeSet<Attr> {
        let out: BTreeSet<Attr> = self.proj.iter().cloned().collect();
        self.current_names().difference(&out).cloned().collect()
    }

    fn substitute(&mut self, subst: &BTreeMap<Attr, Attr>) {
        if subst.is_empty() {
            return;
        }
        for s in &mut self.scans {
            s.substitute(subst);
        }
        let pairs: Vec<(Attr, Attr)> = subst.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        self.pred = self.pred.rename(&pairs);
        for a in &mut self.proj {
            if let Some(new) = subst.get(a) {
                *a = new.clone();
            }
        }
    }

    /// Rebuild the branch as a `Query`: `Π_proj(σ_pred(⋈ δ(scans)))`.
    pub fn to_query(&self) -> Query {
        let join = Query::join_all(self.scans.iter().map(RenamedScan::to_query));
        let selected = match &self.pred {
            Pred::True => join,
            p => join.select(p.clone()),
        };
        selected.project(self.proj.clone())
    }
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_query())
    }
}

/// A query in union normal form: one or more SPJR branches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NormalForm {
    /// The branches; their projections are union-compatible.
    pub branches: Vec<Branch>,
}

impl NormalForm {
    /// Rebuild as a `Query` (union of branch queries).
    pub fn to_query(&self) -> Query {
        Query::union_all(self.branches.iter().map(Branch::to_query))
    }

    /// The output attributes (of the first branch — all branches share the
    /// attribute set).
    pub fn output_attrs(&self) -> &[Attr] {
        &self.branches[0].proj
    }
}

impl fmt::Display for NormalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_query())
    }
}

/// Internal rewriting state: the fresh-name counter.
struct Normalizer<'a> {
    catalog: &'a Catalog,
    fresh: u64,
}

impl<'a> Normalizer<'a> {
    fn freshen(&mut self, branch: &mut Branch, names: impl IntoIterator<Item = Attr>) {
        let subst: BTreeMap<Attr, Attr> = names
            .into_iter()
            .map(|n| (n, Attr::fresh(&mut self.fresh)))
            .collect();
        branch.substitute(&subst);
    }

    fn normalize(&mut self, q: &Query) -> Result<Vec<Branch>> {
        match q {
            Query::Scan(rel) => {
                let schema = self
                    .catalog
                    .get(rel)
                    .ok_or_else(|| RelalgError::UnknownRelation { rel: rel.clone() })?;
                Ok(vec![Branch {
                    scans: vec![RenamedScan::identity(rel.clone(), schema.attrs())],
                    pred: Pred::True,
                    proj: schema.attrs().to_vec(),
                }])
            }
            Query::Select { input, pred } => {
                let mut branches = self.normalize(input)?;
                for b in &mut branches {
                    // `pred` references output attrs, which are the branch's
                    // current projected names — valid below the projection.
                    b.pred = b.pred.clone().and(pred.clone());
                }
                Ok(branches)
            }
            Query::Project { input, attrs } => {
                let mut branches = self.normalize(input)?;
                for b in &mut branches {
                    // attrs ⊆ b.proj by well-typedness.
                    b.proj = attrs.clone();
                }
                Ok(branches)
            }
            Query::Union { left, right } => {
                let mut branches = self.normalize(left)?;
                branches.extend(self.normalize(right)?);
                Ok(branches)
            }
            Query::Rename { input, mapping } => {
                let mut branches = self.normalize(input)?;
                for b in &mut branches {
                    // Rename output attrs old→new inside the branch. Targets
                    // may collide with internal names; free those first.
                    let targets: BTreeSet<Attr> =
                        mapping.iter().map(|(_, new)| new.clone()).collect();
                    let colliding: Vec<Attr> =
                        b.internal_names().intersection(&targets).cloned().collect();
                    self.freshen(b, colliding);
                    // Two-step substitution so swaps (A→B, B→A) work.
                    let step1: BTreeMap<Attr, Attr> = mapping
                        .iter()
                        .map(|(old, _)| (old.clone(), Attr::fresh(&mut self.fresh)))
                        .collect();
                    let step2: BTreeMap<Attr, Attr> = mapping
                        .iter()
                        .map(|(old, new)| (step1[old].clone(), new.clone()))
                        .collect();
                    b.substitute(&step1);
                    b.substitute(&step2);
                }
                Ok(branches)
            }
            Query::Join { left, right } => {
                let lbranches = self.normalize(left)?;
                let rbranches = self.normalize(right)?;
                let mut out = Vec::with_capacity(lbranches.len() * rbranches.len());
                for lb in &lbranches {
                    for rb in &rbranches {
                        out.push(self.join_branches(lb.clone(), rb.clone()));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Join two branches: pull both projections above a combined join,
    /// renaming internal (projected-away) attributes apart so they cannot
    /// capture the other side's attributes.
    fn join_branches(&mut self, mut lb: Branch, mut rb: Branch) -> Branch {
        let l_out: BTreeSet<Attr> = lb.proj.iter().cloned().collect();
        // Left internals colliding with any right-side name.
        let r_names = rb.current_names();
        let l_coll: Vec<Attr> = lb
            .internal_names()
            .intersection(&r_names)
            .cloned()
            .collect();
        self.freshen(&mut lb, l_coll);
        // Right internals colliding with any (updated) left-side name.
        let l_names = lb.current_names();
        let r_coll: Vec<Attr> = rb
            .internal_names()
            .intersection(&l_names)
            .cloned()
            .collect();
        self.freshen(&mut rb, r_coll);
        // Now the only shared current names are projected on both sides —
        // exactly the natural-join attributes of the original query.
        let mut proj = lb.proj.clone();
        proj.extend(rb.proj.iter().filter(|a| !l_out.contains(*a)).cloned());
        let mut scans = lb.scans;
        scans.extend(rb.scans);
        Branch {
            scans,
            pred: lb.pred.and(rb.pred),
            proj,
        }
    }
}

/// Rewrite `q` into union normal form. The result satisfies
/// `eval(nf.to_query(), db) == eval(q, db)` for every database with
/// `catalog`'s schemas, and induces the same annotation-propagation relation
/// (Theorem 3.1); both properties are covered by tests.
pub fn normalize(q: &Query, catalog: &Catalog) -> Result<NormalForm> {
    // Type-check first: normalization assumes a well-formed query.
    output_schema(q, catalog)?;
    let mut n = Normalizer { catalog, fresh: 0 };
    let branches = n.normalize(q)?;
    Ok(NormalForm { branches })
}

/// Whether `q` is already syntactically in normal form: a union tree of
/// branches, each `Π(σ(join-of-(renamed-)scans))` with every layer optional.
pub fn is_normal_form(q: &Query) -> bool {
    fn is_scan_or_rename(q: &Query) -> bool {
        match q {
            Query::Scan(_) => true,
            Query::Rename { input, .. } => matches!(**input, Query::Scan(_)),
            _ => false,
        }
    }
    fn is_join_tree(q: &Query) -> bool {
        match q {
            Query::Join { left, right } => is_join_tree(left) && is_join_tree(right),
            other => is_scan_or_rename(other),
        }
    }
    fn is_branch(q: &Query) -> bool {
        let below_project = match q {
            Query::Project { input, .. } => input,
            other => other,
        };
        let below_select = match below_project {
            Query::Select { input, .. } => input,
            other => other,
        };
        is_join_tree(below_select)
    }
    match q {
        Query::Union { left, right } => is_normal_form(left) && is_normal_form(right),
        other => is_branch(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::eval;
    use crate::relation::Relation;
    use crate::schema::schema;
    use crate::tuple::tuple;

    fn db() -> Database {
        Database::from_relations(vec![
            Relation::new(
                "R",
                schema(["A", "B"]),
                vec![
                    tuple(["a1", "b1"]),
                    tuple(["a1", "b2"]),
                    tuple(["a2", "b2"]),
                ],
            )
            .unwrap(),
            Relation::new(
                "S",
                schema(["B", "C"]),
                vec![
                    tuple(["b1", "c1"]),
                    tuple(["b2", "c1"]),
                    tuple(["b2", "c2"]),
                ],
            )
            .unwrap(),
            Relation::new(
                "T",
                schema(["A", "B"]),
                vec![tuple(["a3", "b1"]), tuple(["a1", "b1"])],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn assert_equiv(q: &Query, db: &Database) {
        let nf = normalize(q, &db.catalog()).expect("normalizes");
        let original = eval(q, db).expect("eval q");
        let rewritten = eval(&nf.to_query(), db).expect("eval nf");
        assert_eq!(
            original.tuple_set(),
            rewritten.tuple_set(),
            "normal form changed the result of {q}\nnormal form: {nf}"
        );
        assert!(is_normal_form(&nf.to_query()), "not in normal form: {nf}");
    }

    #[test]
    fn scan_is_single_identity_branch() {
        let db = db();
        let nf = normalize(&Query::scan("R"), &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 1);
        assert_eq!(nf.branches[0].proj, vec![Attr::new("A"), Attr::new("B")]);
        assert_equiv(&Query::scan("R"), &db);
    }

    #[test]
    fn select_project_fold_into_branch() {
        let db = db();
        let q = Query::scan("R")
            .select(Pred::attr_eq_const("A", "a1"))
            .project(["B"]);
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 1);
        assert_eq!(nf.branches[0].proj, vec![Attr::new("B")]);
        assert_ne!(nf.branches[0].pred, Pred::True);
        assert_equiv(&q, &db);
    }

    #[test]
    fn join_distributes_over_union() {
        let db = db();
        let q = Query::scan("R")
            .union(Query::scan("T"))
            .join(Query::scan("S"));
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 2, "(R∪T)⋈S → (R⋈S) ∪ (T⋈S)");
        assert_equiv(&q, &db);
    }

    #[test]
    fn projection_pulled_above_join_with_capture_avoidance() {
        let db = db();
        // Π_A(R) ⋈ T : R's projected-away B must NOT join with T's B.
        let q = Query::scan("R").project(["A"]).join(Query::scan("T"));
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 1);
        let b = &nf.branches[0];
        // R's B is renamed to an internal name.
        let r_scan = &b.scans[0];
        assert_eq!(r_scan.rel, RelName::new("R"));
        let b_current = r_scan.current_of(&"B".into()).unwrap();
        assert!(b_current.is_internal());
        assert_equiv(&q, &db);
    }

    #[test]
    fn projected_join_attr_still_joins() {
        let db = db();
        // Π_B(R) ⋈ S : B is projected, so it must still be the join attr.
        let q = Query::scan("R").project(["B"]).join(Query::scan("S"));
        let nf = normalize(&q, &db.catalog()).unwrap();
        let b = &nf.branches[0];
        assert_eq!(b.scans[0].current_of(&"B".into()), Some(&Attr::new("B")));
        assert_eq!(b.scans[1].current_of(&"B".into()), Some(&Attr::new("B")));
        assert_equiv(&q, &db);
    }

    #[test]
    fn rename_pushed_into_branch() {
        let db = db();
        let q = Query::scan("R").rename([("A", "X")]).join(Query::scan("T"));
        assert_equiv(&q, &db);
        // The rename swap case.
        let q = Query::scan("R").rename([("A", "B"), ("B", "A")]);
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(
            nf.branches[0].scans[0].current_of(&"A".into()),
            Some(&Attr::new("B"))
        );
        assert_eq!(
            nf.branches[0].scans[0].current_of(&"B".into()),
            Some(&Attr::new("A"))
        );
        assert_equiv(&q, &db);
    }

    #[test]
    fn rename_target_colliding_with_internal_name() {
        let db = db();
        // Project away B, then rename A→B: the internal B must be freed.
        let q = Query::scan("R")
            .project(["A"])
            .rename([("A", "B")])
            .join(Query::scan("S"));
        assert_equiv(&q, &db);
    }

    #[test]
    fn self_join_through_projection() {
        let db = db();
        // Π_A(R) ⋈ R — a self-join where one side lost B.
        let q = Query::scan("R").project(["A"]).join(Query::scan("R"));
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches[0].scans.len(), 2);
        assert_equiv(&q, &db);
    }

    #[test]
    fn union_of_joins_and_selects() {
        let db = db();
        let q = Query::scan("R")
            .join(Query::scan("S"))
            .project(["A", "C"])
            .union(
                Query::scan("T")
                    .select(Pred::attr_eq_const("A", "a1"))
                    .join(Query::scan("S"))
                    .project(["A", "C"]),
            );
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 2);
        assert_equiv(&q, &db);
    }

    #[test]
    fn nested_unions_flatten_to_branches() {
        let db = db();
        let q = Query::union_all(vec![Query::scan("R"), Query::scan("T"), Query::scan("R")]);
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 3);
        assert_equiv(&q, &db);
    }

    #[test]
    fn select_above_union_distributes() {
        let db = db();
        let q = Query::scan("R")
            .union(Query::scan("T"))
            .select(Pred::attr_eq_const("B", "b1"));
        let nf = normalize(&q, &db.catalog()).unwrap();
        assert_eq!(nf.branches.len(), 2);
        for b in &nf.branches {
            assert_ne!(b.pred, Pred::True);
        }
        assert_equiv(&q, &db);
    }

    #[test]
    fn select_referencing_renamed_attr() {
        let db = db();
        let q = Query::scan("R")
            .rename([("A", "X")])
            .select(Pred::attr_eq_const("X", "a1"))
            .project(["X"]);
        assert_equiv(&q, &db);
    }

    #[test]
    fn deep_mixed_query() {
        let db = db();
        let q = Query::scan("R")
            .project(["A", "B"])
            .join(Query::scan("S").select(Pred::attr_eq_const("C", "c1")))
            .project(["A", "C"])
            .union(Query::scan("T").join(Query::scan("S")).project(["A", "C"]))
            .select(Pred::attr_eq_const("A", "a1"));
        assert_equiv(&q, &db);
    }

    #[test]
    fn is_normal_form_detects_shapes() {
        assert!(is_normal_form(&Query::scan("R")));
        assert!(is_normal_form(
            &Query::scan("R").join(Query::scan("S")).project(["A"])
        ));
        assert!(is_normal_form(&Query::scan("R").select(Pred::True)));
        assert!(is_normal_form(
            &Query::scan("R").rename([("A", "X")]).join(Query::scan("S"))
        ));
        // Projection below a join is NOT normal form.
        assert!(!is_normal_form(
            &Query::scan("R").project(["A"]).join(Query::scan("S"))
        ));
        // Union under a join is NOT normal form.
        assert!(!is_normal_form(
            &Query::scan("R")
                .union(Query::scan("T"))
                .join(Query::scan("S"))
        ));
        // Union of branches is normal form.
        assert!(is_normal_form(
            &Query::scan("R").union(Query::scan("T").select(Pred::True))
        ));
    }

    #[test]
    fn normalize_rejects_ill_typed() {
        let db = db();
        assert!(normalize(&Query::scan("Nope"), &db.catalog()).is_err());
        assert!(normalize(&Query::scan("R").project(["Z"]), &db.catalog()).is_err());
    }
}
