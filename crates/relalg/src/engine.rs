//! The generic **annotated evaluator** — one tree walk for every provenance
//! semantics.
//!
//! The paper's two problems (deletion propagation, §2, and annotation
//! placement, §3) are both *provenance propagation* through the same SPJRU
//! operator tree: joins combine the derivations of their operands (⊗), and
//! the set-semantics merges at projections and unions accumulate alternative
//! derivations (⊕). Plain evaluation, lineage, why-provenance,
//! where-provenance and Boolean lineage expressions differ only in the
//! carrier of that (⊗, ⊕) structure, so this module implements the walk
//! **once**, parameterized over an [`Annotation`] trait, and the
//! `dap-provenance` crate instantiates it per semantics.
//!
//! | instance (in `dap-provenance`) | carrier | ⊗ (join) | ⊕ (merge) | paper |
//! |---|---|---|---|---|
//! | `Unit` (here) | `()` | — | — | plain `Q(S)` |
//! | lineage | `BTreeSet<Tid>` | ∪ | ∪ | §1 \[14, 15\] |
//! | why-provenance | minimal witness sets | pairwise ∪ | concat + minimize | §2, footnote 4 |
//! | where-provenance | per-attribute location sets | positional ∪ | positional ∪ | §3 rules |
//! | Boolean lineage | positive Boolean exprs | ∧ | ∨ | §2.2 / conclusion |
//!
//! ## Performance model
//!
//! The legacy per-semantics walks keyed every intermediate on
//! `BTreeMap<Tuple, A>`: each insert/lookup cloned tuples and compared whole
//! value vectors, `O(log n)` times per operation. The engine instead interns
//! each operator's output tuples into **dense indices** (one hash lookup per
//! produced tuple) and keeps annotations in a flat `Vec<A>`, so ⊕-merges
//! combine on indices. Join probe keys are borrowed `&Value` slices — no
//! value clones on the hash path. The result is sorted once, at the root.
//!
//! The walk itself lives in [`crate::plan`]: [`eval_annotated`] is exactly
//! "build a [`crate::plan::MaterializedPlan`], read its output". Callers
//! that will re-ask the same `(Q, S)` after source deletions should keep
//! the plan instead — its `delete_sources` maintains this module's
//! [`Annotated`] view incrementally.

use crate::database::{Database, Tid};
use crate::error::Result;
use crate::plan::MaterializedPlan;
use crate::query::Query;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Positional layout of a natural join, handed to [`Annotation::join`] so
/// per-attribute annotations (where-provenance, marks) can route themselves.
/// Tuple-level annotations (witnesses, expressions) ignore it.
#[derive(Clone, Debug)]
pub struct JoinLayout {
    /// Arity of the left operand (output positions `0..left_arity` come from
    /// the left tuple).
    pub left_arity: usize,
    /// For each left position, the right position holding the same (shared)
    /// attribute, if any — the join rule sends annotations from **both**
    /// operands to a shared output attribute.
    pub merge_from_right: Vec<Option<usize>>,
    /// Right positions appended after the left attributes (the non-shared
    /// suffix), in output order.
    pub right_extra: Vec<usize>,
}

impl JoinLayout {
    /// Arity of the join output.
    pub fn out_arity(&self) -> usize {
        self.left_arity + self.right_extra.len()
    }
}

/// A provenance semiring-style annotation carried through the operator tree.
///
/// Laws the engine relies on (all five shipped instances satisfy them):
///
/// * `merge` is associative and commutative up to [`Annotation::normalize`]
///   (the engine may ⊕-merge duplicates in any grouping);
/// * `join` distributes over `merge` in the usual semiring sense;
/// * `project` composes: reordering twice equals reordering once by the
///   composed position map.
///
/// The `PartialEq` bound is what lets [`crate::plan::MaterializedPlan`]
/// stop a deletion's ripple early: a recomputed bucket annotation that
/// compares equal to the old one is not propagated further. For that test
/// to be sharp (never for correctness), [`Annotation::normalize`] should
/// produce a canonical form — all five shipped instances do.
///
/// The `Send + Sync` bounds let [`crate::plan::MaterializedPlan::build_with`]
/// shard scans, join probes, and ⊕-bucket normalization across a
/// [`crate::par::ParPool`]; every shipped carrier is plain owned data, so
/// the bounds are satisfied automatically.
pub trait Annotation: Clone + PartialEq + Send + Sync {
    /// The annotation of base tuple `tid`, scanned from a relation with
    /// `schema`. Per-attribute instances seed one cell per attribute.
    fn from_scan(tid: Tid, schema: &Schema) -> Self;

    /// ⊗ — combine the annotations of two joined tuples. `layout` describes
    /// how input positions map to output positions.
    fn join(left: &Self, right: &Self, layout: &JoinLayout) -> Self;

    /// Restrict/reorder to `positions` of the input (projection, and union
    /// right-branch alignment). Tuple-level instances return `self` cloned.
    fn project(&self, positions: &[usize]) -> Self;

    /// ⊕ — absorb the annotation of a duplicate derivation of the same
    /// output tuple.
    fn merge(&mut self, other: Self);

    /// Post-merge canonicalization, run once per operator on every output
    /// annotation (e.g. witness minimization). Defaults to a no-op.
    fn normalize(&mut self) {}
}

/// The unit annotation: carries nothing, so `eval_annotated::<Unit>` *is*
/// plain set-semantics evaluation (cross-checked against
/// [`crate::eval::eval`] by the differential property tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Unit;

impl Annotation for Unit {
    fn from_scan(_tid: Tid, _schema: &Schema) -> Unit {
        Unit
    }
    fn join(_left: &Unit, _right: &Unit, _layout: &JoinLayout) -> Unit {
        Unit
    }
    fn project(&self, _positions: &[usize]) -> Unit {
        Unit
    }
    fn merge(&mut self, _other: Unit) {}
}

/// A materialized annotated view: sorted output tuples with one annotation
/// each.
#[derive(Clone, Debug)]
pub struct Annotated<A> {
    /// The view's schema.
    pub schema: Schema,
    tuples: Vec<Tuple>,
    annots: Vec<A>,
}

impl<A> Annotated<A> {
    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The output tuples, sorted ascending.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The annotations, parallel to [`Annotated::tuples`].
    pub fn annotations(&self) -> &[A] {
        &self.annots
    }

    /// The annotation of `t`, if `t` is in the view (binary search).
    pub fn annotation_of(&self, t: &Tuple) -> Option<&A> {
        self.tuples
            .binary_search(t)
            .ok()
            .map(|idx| &self.annots[idx])
    }

    /// Iterate over `(tuple, annotation)` pairs in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &A)> {
        self.tuples.iter().zip(self.annots.iter())
    }

    /// Decompose into `(schema, tuples, annotations)` (tuples sorted, the
    /// two vectors parallel).
    pub fn into_parts(self) -> (Schema, Vec<Tuple>, Vec<A>) {
        (self.schema, self.tuples, self.annots)
    }

    /// Assemble from already-sorted parallel vectors (the materialized
    /// plan's output path).
    pub(crate) fn from_sorted_parts(schema: Schema, tuples: Vec<Tuple>, annots: Vec<A>) -> Self {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        debug_assert_eq!(tuples.len(), annots.len());
        Annotated {
            schema,
            tuples,
            annots,
        }
    }
}

/// Evaluate `q` on `db`, carrying an `A` annotation per output tuple.
/// One operator-tree build regardless of the annotation semantics: this is
/// "build a [`MaterializedPlan`], read its output". Keep the plan itself
/// when the same `(Q, S)` will be re-asked under source deletions.
pub fn eval_annotated<A: Annotation>(q: &Query, db: &Database) -> Result<Annotated<A>> {
    Ok(MaterializedPlan::build(q, db)?.into_annotated())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::{parse_database, parse_query};
    use crate::tuple::tuple;

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn unit_instance_matches_plain_eval() {
        let (q, db) = fixture();
        let ann = eval_annotated::<Unit>(&q, &db).unwrap();
        let plain = eval(&q, &db).unwrap();
        assert_eq!(ann.tuples(), plain.tuples.as_slice());
        assert_eq!(ann.schema, plain.schema);
        assert_eq!(ann.annotations().len(), plain.len());
    }

    #[test]
    fn unit_matches_eval_on_every_operator() {
        let (_, db) = fixture();
        for text in [
            "scan UserGroup",
            "select(scan UserGroup, user = 'bob')",
            "project(scan UserGroup, [grp])",
            "join(scan UserGroup, scan GroupFile)",
            "union(scan UserGroup, rename(scan GroupFile, {grp -> user, file -> grp}))",
            "rename(scan UserGroup, {user -> member})",
        ] {
            let q = parse_query(text).unwrap();
            let ann = eval_annotated::<Unit>(&q, &db).unwrap();
            let plain = eval(&q, &db).unwrap();
            assert_eq!(ann.tuples(), plain.tuples.as_slice(), "query {text}");
            assert_eq!(ann.schema, plain.schema, "query {text}");
        }
    }

    #[test]
    fn annotation_lookup_by_tuple() {
        let (q, db) = fixture();
        let ann = eval_annotated::<Unit>(&q, &db).unwrap();
        assert!(ann.annotation_of(&tuple(["bob", "report"])).is_some());
        assert!(ann.annotation_of(&tuple(["zz", "zz"])).is_none());
    }

    #[test]
    fn type_errors_surface_before_walking() {
        let (_, db) = fixture();
        assert!(eval_annotated::<Unit>(&Query::scan("Nope"), &db).is_err());
        let q = Query::scan("UserGroup").project(["nope"]);
        assert!(eval_annotated::<Unit>(&q, &db).is_err());
    }

    #[test]
    fn join_layout_out_arity() {
        let layout = JoinLayout {
            left_arity: 2,
            merge_from_right: vec![None, Some(0)],
            right_extra: vec![1],
        };
        assert_eq!(layout.out_arity(), 3);
    }
}
