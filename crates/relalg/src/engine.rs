//! The generic **annotated evaluator** — one tree walk for every provenance
//! semantics.
//!
//! The paper's two problems (deletion propagation, §2, and annotation
//! placement, §3) are both *provenance propagation* through the same SPJRU
//! operator tree: joins combine the derivations of their operands (⊗), and
//! the set-semantics merges at projections and unions accumulate alternative
//! derivations (⊕). Plain evaluation, lineage, why-provenance,
//! where-provenance and Boolean lineage expressions differ only in the
//! carrier of that (⊗, ⊕) structure, so this module implements the walk
//! **once**, parameterized over an [`Annotation`] trait, and the
//! `dap-provenance` crate instantiates it per semantics.
//!
//! | instance (in `dap-provenance`) | carrier | ⊗ (join) | ⊕ (merge) | paper |
//! |---|---|---|---|---|
//! | `Unit` (here) | `()` | — | — | plain `Q(S)` |
//! | lineage | `BTreeSet<Tid>` | ∪ | ∪ | §1 \[14, 15\] |
//! | why-provenance | minimal witness sets | pairwise ∪ | concat + minimize | §2, footnote 4 |
//! | where-provenance | per-attribute location sets | positional ∪ | positional ∪ | §3 rules |
//! | Boolean lineage | positive Boolean exprs | ∧ | ∨ | §2.2 / conclusion |
//!
//! ## Performance model
//!
//! The legacy per-semantics walks keyed every intermediate on
//! `BTreeMap<Tuple, A>`: each insert/lookup cloned tuples and compared whole
//! value vectors, `O(log n)` times per operation. The engine instead interns
//! each operator's output tuples into **dense indices** (one hash lookup per
//! produced tuple) and keeps annotations in a flat `Vec<A>`, so ⊕-merges
//! combine on indices. Join probe keys are borrowed `&Value` slices — no
//! value clones on the hash path. The result is sorted once, at the root.

use crate::database::{Database, Tid};
use crate::error::Result;
use crate::name::Attr;
use crate::query::Query;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::typecheck::output_schema;
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Positional layout of a natural join, handed to [`Annotation::join`] so
/// per-attribute annotations (where-provenance, marks) can route themselves.
/// Tuple-level annotations (witnesses, expressions) ignore it.
#[derive(Clone, Debug)]
pub struct JoinLayout {
    /// Arity of the left operand (output positions `0..left_arity` come from
    /// the left tuple).
    pub left_arity: usize,
    /// For each left position, the right position holding the same (shared)
    /// attribute, if any — the join rule sends annotations from **both**
    /// operands to a shared output attribute.
    pub merge_from_right: Vec<Option<usize>>,
    /// Right positions appended after the left attributes (the non-shared
    /// suffix), in output order.
    pub right_extra: Vec<usize>,
}

impl JoinLayout {
    /// Arity of the join output.
    pub fn out_arity(&self) -> usize {
        self.left_arity + self.right_extra.len()
    }
}

/// A provenance semiring-style annotation carried through the operator tree.
///
/// Laws the engine relies on (all five shipped instances satisfy them):
///
/// * `merge` is associative and commutative up to [`Annotation::normalize`]
///   (the engine may ⊕-merge duplicates in any grouping);
/// * `join` distributes over `merge` in the usual semiring sense;
/// * `project` composes: reordering twice equals reordering once by the
///   composed position map.
pub trait Annotation: Clone {
    /// The annotation of base tuple `tid`, scanned from a relation with
    /// `schema`. Per-attribute instances seed one cell per attribute.
    fn from_scan(tid: Tid, schema: &Schema) -> Self;

    /// ⊗ — combine the annotations of two joined tuples. `layout` describes
    /// how input positions map to output positions.
    fn join(left: &Self, right: &Self, layout: &JoinLayout) -> Self;

    /// Restrict/reorder to `positions` of the input (projection, and union
    /// right-branch alignment). Tuple-level instances return `self` cloned.
    fn project(&self, positions: &[usize]) -> Self;

    /// ⊕ — absorb the annotation of a duplicate derivation of the same
    /// output tuple.
    fn merge(&mut self, other: Self);

    /// Post-merge canonicalization, run once per operator on every output
    /// annotation (e.g. witness minimization). Defaults to a no-op.
    fn normalize(&mut self) {}
}

/// The unit annotation: carries nothing, so `eval_annotated::<Unit>` *is*
/// plain set-semantics evaluation (cross-checked against
/// [`crate::eval::eval`] by the differential property tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Unit;

impl Annotation for Unit {
    fn from_scan(_tid: Tid, _schema: &Schema) -> Unit {
        Unit
    }
    fn join(_left: &Unit, _right: &Unit, _layout: &JoinLayout) -> Unit {
        Unit
    }
    fn project(&self, _positions: &[usize]) -> Unit {
        Unit
    }
    fn merge(&mut self, _other: Unit) {}
}

/// A materialized annotated view: sorted output tuples with one annotation
/// each.
#[derive(Clone, Debug)]
pub struct Annotated<A> {
    /// The view's schema.
    pub schema: Schema,
    tuples: Vec<Tuple>,
    annots: Vec<A>,
}

impl<A> Annotated<A> {
    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The output tuples, sorted ascending.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The annotations, parallel to [`Annotated::tuples`].
    pub fn annotations(&self) -> &[A] {
        &self.annots
    }

    /// The annotation of `t`, if `t` is in the view (binary search).
    pub fn annotation_of(&self, t: &Tuple) -> Option<&A> {
        self.tuples
            .binary_search(t)
            .ok()
            .map(|idx| &self.annots[idx])
    }

    /// Iterate over `(tuple, annotation)` pairs in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &A)> {
        self.tuples.iter().zip(self.annots.iter())
    }

    /// Decompose into `(schema, tuples, annotations)` (tuples sorted, the
    /// two vectors parallel).
    pub fn into_parts(self) -> (Schema, Vec<Tuple>, Vec<A>) {
        (self.schema, self.tuples, self.annots)
    }
}

/// Evaluate `q` on `db`, carrying an `A` annotation per output tuple.
/// One tree walk regardless of the annotation semantics.
pub fn eval_annotated<A: Annotation>(q: &Query, db: &Database) -> Result<Annotated<A>> {
    let catalog = db.catalog();
    // Type-check up front so the walk cannot fail halfway on a schema error.
    output_schema(q, &catalog)?;
    let node = walk(q, db)?;
    Ok(node.into_sorted())
}

/// An intermediate result: tuples in first-derivation order (deterministic,
/// not sorted), annotations parallel.
struct Node<A> {
    schema: Schema,
    tuples: Vec<Tuple>,
    annots: Vec<A>,
}

impl<A: Annotation> Node<A> {
    fn into_sorted(self) -> Annotated<A> {
        let Node {
            schema,
            tuples,
            annots,
        } = self;
        let mut order: Vec<usize> = (0..tuples.len()).collect();
        order.sort_by(|&i, &j| tuples[i].cmp(&tuples[j]));
        // Drain in sorted order without cloning annotations.
        let mut pairs: Vec<Option<(Tuple, A)>> = tuples.into_iter().zip(annots).map(Some).collect();
        let mut sorted_tuples = Vec::with_capacity(order.len());
        let mut sorted_annots = Vec::with_capacity(order.len());
        for &idx in &order {
            let (t, a) = pairs[idx].take().expect("each index visited once");
            sorted_tuples.push(t);
            sorted_annots.push(a);
        }
        Annotated {
            schema,
            tuples: sorted_tuples,
            annots: sorted_annots,
        }
    }
}

/// Interning buckets: output tuples keyed to dense indices so ⊕-merges
/// combine on indices, not on cloned map keys.
struct Buckets<A> {
    index: HashMap<Tuple, usize>,
    annots: Vec<A>,
}

impl<A: Annotation> Buckets<A> {
    fn with_capacity(n: usize) -> Buckets<A> {
        Buckets {
            index: HashMap::with_capacity(n),
            annots: Vec::with_capacity(n),
        }
    }

    /// Insert a derivation of `t`, ⊕-merging with an existing bucket.
    fn add(&mut self, t: Tuple, a: A) {
        match self.index.entry(t) {
            Entry::Occupied(slot) => self.annots[*slot.get()].merge(a),
            Entry::Vacant(slot) => {
                slot.insert(self.annots.len());
                self.annots.push(a);
            }
        }
    }

    /// Finish the operator: normalize every bucket and lay the tuples out in
    /// first-derivation order.
    fn into_node(self, schema: Schema) -> Node<A> {
        let Buckets { index, mut annots } = self;
        for a in &mut annots {
            a.normalize();
        }
        let mut tuples: Vec<Option<Tuple>> = vec![None; annots.len()];
        for (t, idx) in index {
            tuples[idx] = Some(t);
        }
        Node {
            schema,
            tuples: tuples
                .into_iter()
                .map(|t| t.expect("every bucket has a tuple"))
                .collect(),
            annots,
        }
    }
}

fn walk<A: Annotation>(q: &Query, db: &Database) -> Result<Node<A>> {
    match q {
        Query::Scan(rel) => {
            let r = db.require(rel)?;
            let schema = r.schema().clone();
            let annots = (0..r.len())
                .map(|row| {
                    A::from_scan(
                        Tid {
                            rel: r.name().clone(),
                            row,
                        },
                        &schema,
                    )
                })
                .collect();
            Ok(Node {
                schema,
                tuples: r.tuples().to_vec(),
                annots,
            })
        }
        Query::Select { input, pred } => {
            let node = walk::<A>(input, db)?;
            let mut tuples = Vec::new();
            let mut annots = Vec::new();
            for (t, a) in node.tuples.into_iter().zip(node.annots) {
                if pred.eval(&node.schema, &t)? {
                    tuples.push(t);
                    annots.push(a);
                }
            }
            Ok(Node {
                schema: node.schema,
                tuples,
                annots,
            })
        }
        Query::Project { input, attrs } => {
            let node = walk::<A>(input, db)?;
            let schema = node.schema.project(attrs)?;
            let positions = node.schema.positions_of(attrs)?;
            let mut buckets = Buckets::with_capacity(node.tuples.len());
            for (t, a) in node.tuples.iter().zip(&node.annots) {
                buckets.add(t.project_positions(&positions), a.project(&positions));
            }
            Ok(buckets.into_node(schema))
        }
        Query::Join { left, right } => {
            let l = walk::<A>(left, db)?;
            let r = walk::<A>(right, db)?;
            let shared: Vec<Attr> = l.schema.shared_with(&r.schema);
            let schema = l.schema.join_with(&r.schema);
            let l_keys: Vec<usize> = shared
                .iter()
                .map(|a| l.schema.index_of(a).expect("shared attr"))
                .collect();
            let r_keys: Vec<usize> = shared
                .iter()
                .map(|a| r.schema.index_of(a).expect("shared attr"))
                .collect();
            let layout = JoinLayout {
                left_arity: l.schema.arity(),
                merge_from_right: l
                    .schema
                    .attrs()
                    .iter()
                    .map(|a| r.schema.index_of(a))
                    .collect(),
                right_extra: r
                    .schema
                    .attrs()
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !l.schema.contains(a))
                    .map(|(i, _)| i)
                    .collect(),
            };
            // Build on the right, probe with the left; keys are borrowed
            // value slices — no clones on the hash path.
            let mut table: HashMap<Vec<&Value>, Vec<usize>> =
                HashMap::with_capacity(r.tuples.len());
            for (idx, t) in r.tuples.iter().enumerate() {
                let key: Vec<&Value> = r_keys.iter().map(|&i| t.get(i)).collect();
                table.entry(key).or_default().push(idx);
            }
            let mut buckets = Buckets::with_capacity(l.tuples.len().max(r.tuples.len()));
            for (lt, la) in l.tuples.iter().zip(&l.annots) {
                let key: Vec<&Value> = l_keys.iter().map(|&i| lt.get(i)).collect();
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for &ridx in matches {
                    let rt = &r.tuples[ridx];
                    buckets.add(
                        lt.join_concat(rt, &layout.right_extra),
                        A::join(la, &r.annots[ridx], &layout),
                    );
                }
            }
            Ok(buckets.into_node(schema))
        }
        Query::Union { left, right } => {
            let l = walk::<A>(left, db)?;
            let r = walk::<A>(right, db)?;
            // Align the right branch to the left branch's attribute order.
            let positions = r.schema.positions_of(l.schema.attrs())?;
            let mut buckets = Buckets::with_capacity(l.tuples.len() + r.tuples.len());
            for (t, a) in l.tuples.into_iter().zip(l.annots) {
                buckets.add(t, a);
            }
            for (t, a) in r.tuples.iter().zip(&r.annots) {
                buckets.add(t.project_positions(&positions), a.project(&positions));
            }
            Ok(buckets.into_node(l.schema))
        }
        Query::Rename { input, mapping } => {
            // Positionally nothing moves; annotations ride along untouched
            // (where-provenance deliberately keeps the *original* attribute
            // names in its source locations — the paper's renaming rule).
            let node = walk::<A>(input, db)?;
            Ok(Node {
                schema: node.schema.rename(mapping)?,
                tuples: node.tuples,
                annots: node.annots,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::{parse_database, parse_query};
    use crate::tuple::tuple;

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn unit_instance_matches_plain_eval() {
        let (q, db) = fixture();
        let ann = eval_annotated::<Unit>(&q, &db).unwrap();
        let plain = eval(&q, &db).unwrap();
        assert_eq!(ann.tuples(), plain.tuples.as_slice());
        assert_eq!(ann.schema, plain.schema);
        assert_eq!(ann.annotations().len(), plain.len());
    }

    #[test]
    fn unit_matches_eval_on_every_operator() {
        let (_, db) = fixture();
        for text in [
            "scan UserGroup",
            "select(scan UserGroup, user = 'bob')",
            "project(scan UserGroup, [grp])",
            "join(scan UserGroup, scan GroupFile)",
            "union(scan UserGroup, rename(scan GroupFile, {grp -> user, file -> grp}))",
            "rename(scan UserGroup, {user -> member})",
        ] {
            let q = parse_query(text).unwrap();
            let ann = eval_annotated::<Unit>(&q, &db).unwrap();
            let plain = eval(&q, &db).unwrap();
            assert_eq!(ann.tuples(), plain.tuples.as_slice(), "query {text}");
            assert_eq!(ann.schema, plain.schema, "query {text}");
        }
    }

    #[test]
    fn annotation_lookup_by_tuple() {
        let (q, db) = fixture();
        let ann = eval_annotated::<Unit>(&q, &db).unwrap();
        assert!(ann.annotation_of(&tuple(["bob", "report"])).is_some());
        assert!(ann.annotation_of(&tuple(["zz", "zz"])).is_none());
    }

    #[test]
    fn type_errors_surface_before_walking() {
        let (_, db) = fixture();
        assert!(eval_annotated::<Unit>(&Query::scan("Nope"), &db).is_err());
        let q = Query::scan("UserGroup").project(["nope"]);
        assert!(eval_annotated::<Unit>(&q, &db).is_err());
    }

    #[test]
    fn join_layout_out_arity() {
        let layout = JoinLayout {
            left_arity: 2,
            merge_from_right: vec![None, Some(0)],
            right_extra: vec![1],
        };
        assert_eq!(layout.out_arity(), 3);
    }
}
