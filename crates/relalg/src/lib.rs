//! # dap-relalg — the relational substrate
//!
//! A from-scratch, set-semantics relational algebra engine for the **monotone
//! SPJRU fragment** (select, project, natural join, rename, union) — exactly
//! the query language studied by Buneman, Khanna and Tan in *"On Propagation
//! of Deletions and Annotations Through Views"* (PODS 2002).
//!
//! The crate provides:
//!
//! * values, tuples, schemas, relations and databases with **stable tuple
//!   identities** ([`Tid`]) — the unit of source deletion;
//! * the [`Query`] AST with builders, a text [`parser`] and a round-tripping
//!   pretty printer;
//! * a type checker ([`output_schema`]) and a materializing evaluator
//!   ([`eval()`](eval::eval));
//! * the generic **annotated evaluator** ([`engine`]): the same tree walk
//!   parameterized over an [`Annotation`] semiring-style trait — the single
//!   engine behind plain evaluation, lineage, why/where-provenance and
//!   Boolean lineage expressions (instances live in `dap-provenance`);
//! * the **materialized operator pipeline** ([`plan`]): the walk's retained
//!   form — [`MaterializedPlan`] keeps per-operator state so the annotated
//!   view stays current under source deletions in `O(affected)` instead of
//!   a full re-evaluation;
//! * the **shared-plan registry** ([`registry`]): many standing queries
//!   materialized as one hash-consed operator DAG — α-equivalent subtrees
//!   resolve to a single shared node, and
//!   [`PlanRegistry::delete_sources`] pushes each deletion through the
//!   DAG once, fanning per-query [`ViewDelta`]s out to every registered
//!   query;
//! * the **persistent parallel runtime** ([`par`]): a dependency-free
//!   [`ParPool`] (thread count from `DAP_THREADS` or the hardware) whose
//!   deterministic sharding helpers parallelize plan construction here and
//!   the batched deletion dispatchers in `dap-core` over a process-global
//!   set of parked worker threads, with one thread degrading to the exact
//!   sequential code paths;
//! * the **hot-path data layout** ([`mod@intern`], [`fingerprint`]): globally
//!   interned string values ([`Sym`] — id-compare equality, one allocation
//!   per distinct constant) and fixed-width `u64` join-key fingerprints
//!   with a collision-checked fallback, selectable at runtime
//!   (`DAP_LAYOUT` / [`force_layout`]) with bit-identical outputs in
//!   every mode;
//! * query classification ([`OpFootprint`], [`detect_chain_join`]) used by
//!   the paper's dichotomy theorems;
//! * the **union normal form** rewriter ([`normalize()`](normalize::normalize), Theorem 3.1 of the
//!   paper), which underpins the polynomial-time solvers.
//!
//! ```
//! use dap_relalg::{parse_database, parse_query, eval};
//!
//! let db = parse_database(
//!     "relation UserGroup(user, grp) { (ann, staff), (bob, dev) }
//!      relation GroupFile(grp, file) { (staff, 'r.txt'), (dev, 'm.rs') }",
//! ).unwrap();
//! let q = parse_query(
//!     "project(join(scan UserGroup, scan GroupFile), [user, file])",
//! ).unwrap();
//! let view = eval(&q, &db).unwrap();
//! assert_eq!(view.len(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod classify;
pub mod database;
pub mod engine;
pub mod error;
pub mod eval;
pub mod fd;
pub mod fingerprint;
pub mod intern;
pub mod name;
pub mod normalize;
// The parallel runtime is the one module allowed `unsafe`: its persistent
// workers borrow the dispatching caller's stack through an erased pointer
// (soundness argument in the module docs).
#[allow(unsafe_code)]
pub mod par;
pub mod parser;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod registry;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod typecheck;
pub mod value;

pub use classify::{detect_chain_join, ChainJoin, OpFootprint};
pub use database::{Catalog, Database, Tid};
pub use engine::{eval_annotated, Annotated, Annotation, JoinLayout, Unit};
pub use error::{RelalgError, Result};
pub use eval::{eval, ResultSet};
pub use fd::{closure, is_superkey, projection_determines_join, Fd, FdCatalog};
pub use fingerprint::{force_layout, LayoutMode};
pub use intern::{intern, interned_count, Sym};
pub use name::{Attr, RelName};
pub use normalize::{is_normal_form, normalize, Branch, NormalForm, RenamedScan};
pub use par::ParPool;
pub use parser::{parse_database, parse_pred, parse_query};
pub use plan::{MaterializedPlan, ViewDelta};
pub use predicate::{CmpOp, Operand, Pred};
pub use query::Query;
pub use registry::{PlanRegistry, QueryId, SubscriberId};
pub use relation::Relation;
pub use schema::{schema, Schema};
pub use tuple::{tuple, Tuple};
pub use typecheck::{output_schema, reject_internal_attrs};
pub use value::Value;
