//! The **shared-plan registry** — common-subplan sharing and single-pass
//! delta fan-out across many standing queries.
//!
//! [`crate::plan::MaterializedPlan`] maintains *one* query's annotated view
//! under source deletions. A serving engine holds **many** standing queries
//! over the same database, and real query populations overlap heavily:
//! every query scans the same base relations, subscription-style queries
//! are cheap select tops over one expensive join/⊕ core, and self-joins
//! repeat a subtree inside a single query. N independent plans rebuild all
//! of that N times and re-push every deletion N times — O(N · |delta|)
//! maintenance for work that is almost entirely identical.
//!
//! [`PlanRegistry`] keeps **one DAG of shared operator nodes** instead:
//!
//! * **Hash-consing at build time.** Every operator subtree is reduced to a
//!   canonical, *positional* node key — scans by relation name, select
//!   predicates with attribute references resolved to column positions,
//!   projections/unions by position lists, joins by key positions and
//!   annotation layout. Renames collapse into their child (they only
//!   relabel the schema), so α-equivalent subtrees — same operators over
//!   the same relations modulo attribute naming — map to the same key and
//!   resolve to a **single shared node**. Sharing applies across registered
//!   queries *and* within one (a self-join's repeated branch is stored
//!   once). Annotations are positional too ([`Annotation::from_scan`] seeds
//!   from the relation's own schema), so a shared node's rows *and*
//!   annotations are identical to what every subscriber's private plan
//!   would hold.
//! * **Refcounted nodes with per-root taps.** Each node counts its parent
//!   edges (with multiplicity — a self-join contributes two) plus one per
//!   query rooted at it; [`PlanRegistry::unregister`] releases the root and
//!   cascades, tombstoning nodes whose count hits zero (slots are never
//!   reused, preserving the children-before-parents id order the delta
//!   push relies on). Each distinct root carries one `RootTap` — the
//!   sorted-order and tuple→slot index every query rooted there reads
//!   through.
//! * **Single-pass delta push with per-query fan-out.**
//!   [`PlanRegistry::delete_sources`] seeds each scan kill once, pushes the
//!   delta through the shared DAG **exactly once** — each node's
//!   (removed, changed) delta is computed one time regardless of how many
//!   queries consume it — and clones the per-root [`ViewDelta`] out to
//!   every subscriber. The push walks the DAG level by level (level =
//!   1 + max child level), and within a level the nodes are independent,
//!   so the registry shards them over its [`ParPool`] (nodes are extracted
//!   from the arena, propagated against the settled earlier levels, and
//!   written back in input order — results are bit-identical for every
//!   thread count).
//! * **A subscription outbox.** Multiple [`crate::plan::ViewDelta`]
//!   consumers (e.g. `dap-core`'s registry-backed deletion contexts) can
//!   [`PlanRegistry::subscribe`]; every effective `delete_sources` appends
//!   `(tids, per-query delta)` to each subscriber's queue, and
//!   [`PlanRegistry::drain_pending`] hands a consumer everything committed
//!   since it last looked — including commits made through *other*
//!   consumers of the same shared DAG.
//!
//! Registration is transactional (a mid-build error rolls back every node
//! the call created) and **mid-stream registration replays history**: a
//! query registered after deletions have been applied builds its new nodes
//! over the full base relations, then replays the committed deletions
//! through just those nodes, so it observes exactly the views a fresh
//! plan over the deleted-from database would show.
//!
//! ```
//! use dap_relalg::{parse_database, parse_query, tuple, PlanRegistry, Unit};
//!
//! let db = parse_database(
//!     "relation UserGroup(user, grp) { (ann, staff), (bob, staff), (bob, dev) }
//!      relation GroupFile(grp, file) { (staff, report), (dev, main), (dev, report) }",
//! ).unwrap();
//! let mut reg = PlanRegistry::<Unit>::new(&db);
//! let core = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
//! let bob = parse_query(
//!     "select(project(join(scan UserGroup, scan GroupFile), [user, file]), user = 'bob')",
//! ).unwrap();
//! let q1 = reg.register(&core).unwrap();
//! let q2 = reg.register(&bob).unwrap();
//! // The select top is the only node q2 adds: scans, join and ⊕-project
//! // are shared with q1.
//! assert_eq!(reg.node_count(), 5);
//! let deltas = reg.delete_sources(&[db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap()]);
//! assert_eq!(deltas[0].0, q1);
//! assert_eq!(deltas[0].1.removed, vec![tuple(["bob", "main"])]);
//! assert_eq!(deltas[1].0, q2);
//! assert_eq!(deltas[1].1.removed, vec![tuple(["bob", "main"])]);
//! ```

use crate::database::{Database, Tid};
use crate::engine::{Annotated, Annotation};
use crate::error::Result;
use crate::fingerprint::TupleSlotMap;
use crate::name::RelName;
use crate::par::ParPool;
use crate::plan::{
    build_join_node, build_project_node, build_scan_rows, build_select_node, build_union_node,
    join_keys_and_layout, propagate_node, Node, NodeDelta, Op, Rows, ViewDelta,
};
use crate::predicate::{CmpOp, Operand, Pred};
use crate::query::Query;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::typecheck::output_schema;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Handle of one registered standing query. Ids are assigned in
/// registration order, never reused, and order the per-query results of
/// [`PlanRegistry::delete_sources`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryId(u64);

impl QueryId {
    /// The raw registration index (the `k` rendered as `qk`). Stable
    /// across runs for the same registration order — the durable catalog
    /// persists this.
    pub fn index(&self) -> u64 {
        self.0
    }

    /// Rebuild a handle from a persisted index. Only meaningful against a
    /// registry whose registration sequence reproduces the original one
    /// (see [`PlanRegistry::register_at`]).
    pub fn from_index(index: u64) -> QueryId {
        QueryId(index)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Handle of one per-session subscription created by
/// [`PlanRegistry::subscribe_session`]. Unlike the per-query outbox
/// (where all consumers of a [`QueryId`] share one drain), each
/// `SubscriberId` owns a private pending queue — the unit a server
/// session drains without stealing deltas from other sessions watching
/// the same query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SubscriberId(u64);

impl SubscriberId {
    /// The raw subscription counter (the `k` rendered as `sk`).
    pub fn index(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One per-session subscription: the query it watches plus its private
/// pending queue.
#[derive(Clone, Debug)]
struct SessionSub {
    query: QueryId,
    pending: Vec<(Vec<Tid>, ViewDelta)>,
}

/// One side of a canonicalized comparison: a column position or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CanonOperand {
    Pos(usize),
    Const(Value),
}

/// A selection predicate with every attribute reference resolved to its
/// column position — the rename-insensitive form used in [`NodeKey`]s.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CanonPred {
    True,
    Cmp {
        lhs: CanonOperand,
        op: CmpOp,
        rhs: CanonOperand,
    },
    And(Box<CanonPred>, Box<CanonPred>),
    Or(Box<CanonPred>, Box<CanonPred>),
    Not(Box<CanonPred>),
}

fn canon_operand(o: &Operand, schema: &Schema) -> CanonOperand {
    match o {
        Operand::Attr(a) => CanonOperand::Pos(
            schema
                .index_of(a)
                .expect("predicate attrs validated by output_schema"),
        ),
        Operand::Const(v) => CanonOperand::Const(v.clone()),
    }
}

fn canon_pred(p: &Pred, schema: &Schema) -> CanonPred {
    match p {
        Pred::True => CanonPred::True,
        Pred::Cmp { lhs, op, rhs } => CanonPred::Cmp {
            lhs: canon_operand(lhs, schema),
            op: *op,
            rhs: canon_operand(rhs, schema),
        },
        Pred::And(a, b) => CanonPred::And(
            Box::new(canon_pred(a, schema)),
            Box::new(canon_pred(b, schema)),
        ),
        Pred::Or(a, b) => CanonPred::Or(
            Box::new(canon_pred(a, schema)),
            Box::new(canon_pred(b, schema)),
        ),
        Pred::Not(a) => CanonPred::Not(Box::new(canon_pred(a, schema))),
    }
}

/// The canonical structural identity of an operator subtree: everything
/// positional, nothing named (renames have already collapsed away), child
/// identity by shared node id. Two subtrees with equal keys materialize
/// identical rows *and* identical annotations, so they share one node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum NodeKey {
    Scan(RelName),
    Select {
        child: usize,
        pred: CanonPred,
    },
    Project {
        child: usize,
        positions: Vec<usize>,
    },
    Join {
        left: usize,
        right: usize,
        l_keys: Vec<usize>,
        r_keys: Vec<usize>,
        merge_from_right: Vec<Option<usize>>,
        right_extra: Vec<usize>,
    },
    Union {
        left: usize,
        right: usize,
        positions: Vec<usize>,
    },
}

/// One registered query: its root node and its (possibly renamed) output
/// schema. Many queries may share a root.
#[derive(Clone, Debug)]
struct RegisteredQuery {
    root: usize,
    schema: Schema,
}

/// Read-side state of one distinct root node: sorted iteration order and
/// the tuple → slot index (fingerprint-keyed with collision-checked
/// fallback against the root rows), shared by every query rooted there.
/// Built over all slots; reads filter dead ones.
#[derive(Clone, Debug)]
struct RootTap {
    refs: usize,
    order: Vec<usize>,
    index: TupleSlotMap,
}

/// A multi-query materialization: hash-consed shared operator nodes,
/// refcounted per-root output taps, and a single-pass
/// [`PlanRegistry::delete_sources`] that fans per-query [`ViewDelta`]s out
/// to every registered query. See the module docs for the architecture.
#[derive(Clone, Debug)]
pub struct PlanRegistry<A> {
    db: Arc<Database>,
    pool: ParPool,
    /// The shared DAG arena. Ids are append-only: children always precede
    /// parents, tombstoned slots ([`PlanRegistry::unregister`]) are never
    /// reused.
    nodes: Vec<Node<A>>,
    /// Per-node scratch deltas, reused across pushes.
    deltas: Vec<NodeDelta>,
    /// Canonical key → node id (live nodes only).
    keys: HashMap<NodeKey, usize>,
    /// Node id → its canonical key (`None` once tombstoned).
    key_of: Vec<Option<NodeKey>>,
    /// Parent-edge count (with multiplicity) plus queries rooted here.
    refs: Vec<usize>,
    live: Vec<bool>,
    /// DAG level: scans at 0, otherwise 1 + max child level. Nodes within
    /// a level are independent — the unit of parallel propagation.
    levels: Vec<u32>,
    /// Child ids per node, in operator order (left before right; a
    /// self-join lists the shared child twice).
    children_of: Vec<Vec<usize>>,
    /// `(relation, scan node)` pairs of live scan nodes.
    scans: Vec<(RelName, usize)>,
    /// Live non-scan node ids grouped by ascending level (ascending id
    /// within a level); rebuilt on register/unregister.
    push_order: Vec<Vec<usize>>,
    queries: BTreeMap<QueryId, RegisteredQuery>,
    /// Distinct root node → its tap.
    taps: HashMap<usize, RootTap>,
    /// Per-subscriber pending `(tids, delta)` entries, appended by every
    /// effective `delete_sources` call in commit order.
    outbox: BTreeMap<QueryId, Vec<(Vec<Tid>, ViewDelta)>>,
    /// Per-session subscriptions: private pending queues keyed by
    /// [`SubscriberId`], so concurrent consumers of one query never steal
    /// each other's deltas.
    session_outbox: BTreeMap<SubscriberId, SessionSub>,
    next_subscriber: u64,
    /// Every tid ever deleted through this registry — replayed into nodes
    /// built by later registrations.
    committed: BTreeSet<Tid>,
    next_query: u64,
    /// Scratch for [`PlanRegistry::delete_sources`]'s per-root delta
    /// extraction, reused across pushes so steady-state turns keep the
    /// table's allocation instead of building a fresh map per deletion.
    per_root_scratch: HashMap<usize, ViewDelta>,
}

impl<A: Annotation> PlanRegistry<A> {
    /// An empty registry over `db` with the process-default [`ParPool`].
    pub fn new(db: &Database) -> PlanRegistry<A> {
        PlanRegistry::new_shared_with(Arc::new(db.clone()), ParPool::global())
    }

    /// [`PlanRegistry::new`] with an explicit pool.
    pub fn with_pool(db: &Database, pool: ParPool) -> PlanRegistry<A> {
        PlanRegistry::new_shared_with(Arc::new(db.clone()), pool)
    }

    /// An empty registry from a shared database handle (no deep clone).
    pub fn new_shared(db: Arc<Database>) -> PlanRegistry<A> {
        PlanRegistry::new_shared_with(db, ParPool::global())
    }

    /// [`PlanRegistry::new_shared`] with an explicit pool. Results are
    /// identical for every pool size; a one-thread pool runs the exact
    /// sequential code paths.
    pub fn new_shared_with(db: Arc<Database>, pool: ParPool) -> PlanRegistry<A> {
        PlanRegistry {
            db,
            pool,
            nodes: Vec::new(),
            deltas: Vec::new(),
            keys: HashMap::new(),
            key_of: Vec::new(),
            refs: Vec::new(),
            live: Vec::new(),
            levels: Vec::new(),
            children_of: Vec::new(),
            scans: Vec::new(),
            push_order: Vec::new(),
            queries: BTreeMap::new(),
            taps: HashMap::new(),
            outbox: BTreeMap::new(),
            session_outbox: BTreeMap::new(),
            next_subscriber: 0,
            committed: BTreeSet::new(),
            next_query: 0,
            per_root_scratch: HashMap::new(),
        }
    }

    /// The shared database handle the registry materializes over.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The sharding policy used for builds and delta pushes.
    pub fn pool(&self) -> ParPool {
        self.pool
    }

    /// Every tid deleted through this registry so far.
    pub fn committed(&self) -> &BTreeSet<Tid> {
        &self.committed
    }

    /// Number of currently registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of live shared nodes (the DAG's size — compare against the
    /// sum of per-query plan sizes to see the sharing win).
    pub fn node_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The registered query ids, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.keys().copied().collect()
    }

    /// Register a standing query, building only the operator nodes not
    /// already shared with earlier registrations (α-equivalent subtrees —
    /// identical modulo renaming — resolve to existing nodes). If
    /// deletions were already applied, the new nodes replay them so the
    /// query observes the current (deleted-from) database. Type errors
    /// leave the registry unchanged.
    pub fn register(&mut self, q: &Query) -> Result<QueryId> {
        output_schema(q, &self.db.catalog())?;
        let before = self.nodes.len();
        let (root, schema) = match self.build_node(q) {
            Ok(built) => built,
            Err(e) => {
                self.rollback(before);
                return Err(e);
            }
        };
        if self.nodes.len() > before && !self.committed.is_empty() {
            self.replay_committed(before);
        }
        self.refs[root] += 1;
        if !self.taps.contains_key(&root) {
            let rows = &self.nodes[root].rows;
            let mut order: Vec<usize> = (0..rows.tuples.len()).collect();
            order.sort_by(|&i, &j| rows.tuples[i].cmp(&rows.tuples[j]));
            let mut index = TupleSlotMap::with_capacity(rows.tuples.len());
            for (slot, t) in rows.tuples.iter().enumerate() {
                index.insert(t, slot);
            }
            self.taps.insert(
                root,
                RootTap {
                    refs: 0,
                    order,
                    index,
                },
            );
        }
        self.taps.get_mut(&root).expect("tap just ensured").refs += 1;
        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.queries.insert(id, RegisteredQuery { root, schema });
        self.rebuild_push_order();
        Ok(id)
    }

    /// The index the next [`PlanRegistry::register`] call will assign.
    /// Restore paths validate persisted catalog ids against this before
    /// calling [`PlanRegistry::register_at`].
    pub fn next_query_index(&self) -> u64 {
        self.next_query
    }

    /// [`PlanRegistry::register`], but forcing the assigned handle to be
    /// exactly `id` — the restore hook that lets recovery reproduce a
    /// persisted catalog's ids even though the original process may have
    /// burned intermediate indexes on since-unregistered (or ephemeral)
    /// queries. Indexes between [`PlanRegistry::next_query_index`] and
    /// `id` are skipped forever, exactly as if those registrations had
    /// happened and been unregistered. On error the id sequence is left
    /// untouched.
    ///
    /// # Panics
    ///
    /// If `id` is behind the current sequence (`id.index()` <
    /// [`PlanRegistry::next_query_index`]) — ids are never reused, so the
    /// caller must validate persisted ids first and surface violations as
    /// data corruption.
    pub fn register_at(&mut self, q: &Query, id: QueryId) -> Result<QueryId> {
        assert!(
            id.0 >= self.next_query,
            "register_at cannot move the id sequence backwards (requested {id}, next is q{})",
            self.next_query
        );
        let saved = self.next_query;
        self.next_query = id.0;
        match self.register(q) {
            Ok(got) => {
                debug_assert_eq!(got, id);
                Ok(got)
            }
            Err(e) => {
                self.next_query = saved;
                Err(e)
            }
        }
    }

    /// Advance the id sequence to at least `to` without registering
    /// anything — the other restore hook: ids the original process burned
    /// on queries that never reached (or already left) a durable catalog
    /// must stay burned, or a later registration would mint a handle the
    /// history already used. No-op when the sequence is already past `to`.
    pub fn advance_query_index(&mut self, to: u64) {
        self.next_query = self.next_query.max(to);
    }

    /// Remove a standing query, releasing its root reference; nodes no
    /// other query (transitively) needs are tombstoned and their memory
    /// dropped. Returns whether `id` was registered. Any pending outbox
    /// entries for `id` are discarded.
    pub fn unregister(&mut self, id: QueryId) -> bool {
        let Some(rq) = self.queries.remove(&id) else {
            return false;
        };
        self.outbox.remove(&id);
        self.session_outbox.retain(|_, sub| sub.query != id);
        let tap = self
            .taps
            .get_mut(&rq.root)
            .expect("registered root has a tap");
        tap.refs -= 1;
        if tap.refs == 0 {
            self.taps.remove(&rq.root);
        }
        self.release(rq.root);
        self.rebuild_push_order();
        true
    }

    /// Subscribe `id` to the outbox: every subsequent effective
    /// [`PlanRegistry::delete_sources`] call appends `(tids, delta)` for
    /// this query, to be collected with [`PlanRegistry::drain_pending`].
    /// Idempotent; unknown ids are ignored.
    pub fn subscribe(&mut self, id: QueryId) {
        if self.queries.contains_key(&id) {
            self.outbox.entry(id).or_default();
        }
    }

    /// Take everything committed since `id` last drained, in commit order.
    /// Empty for unsubscribed or unknown ids.
    pub fn drain_pending(&mut self, id: QueryId) -> Vec<(Vec<Tid>, ViewDelta)> {
        self.outbox
            .get_mut(&id)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Open a *private* subscription on `id`: every subsequent effective
    /// [`PlanRegistry::delete_sources`] call appends `(tids, delta)` to
    /// this subscriber's own queue, drained with
    /// [`PlanRegistry::drain_session`]. Multiple sessions subscribing to
    /// the same query each get every delta (unlike the shared
    /// [`PlanRegistry::subscribe`] outbox, whose drain is
    /// first-come-first-served). `None` for unknown ids.
    pub fn subscribe_session(&mut self, id: QueryId) -> Option<SubscriberId> {
        if !self.queries.contains_key(&id) {
            return None;
        }
        let sub = SubscriberId(self.next_subscriber);
        self.next_subscriber += 1;
        self.session_outbox.insert(
            sub,
            SessionSub {
                query: id,
                pending: Vec::new(),
            },
        );
        Some(sub)
    }

    /// Take everything committed since this subscriber last drained, in
    /// commit order. Empty for closed or unknown subscribers.
    pub fn drain_session(&mut self, sub: SubscriberId) -> Vec<(Vec<Tid>, ViewDelta)> {
        self.session_outbox
            .get_mut(&sub)
            .map(|s| std::mem::take(&mut s.pending))
            .unwrap_or_default()
    }

    /// Close a per-session subscription, dropping anything still pending.
    /// Returns whether the subscriber existed. Subscriptions also close
    /// implicitly when their query is unregistered.
    pub fn unsubscribe_session(&mut self, sub: SubscriberId) -> bool {
        self.session_outbox.remove(&sub).is_some()
    }

    /// The query a live per-session subscription watches, if any.
    pub fn session_query(&self, sub: SubscriberId) -> Option<QueryId> {
        self.session_outbox.get(&sub).map(|s| s.query)
    }

    /// The output schema of a registered query (with its renames applied —
    /// queries sharing a root can differ here).
    pub fn query_schema(&self, id: QueryId) -> &Schema {
        &self.query(id).schema
    }

    /// Number of tuples currently in a registered query's view.
    pub fn view_len(&self, id: QueryId) -> usize {
        self.nodes[self.query(id).root].rows.alive_count
    }

    /// Iterate over a registered query's current view in sorted tuple
    /// order.
    pub fn iter_query(&self, id: QueryId) -> impl Iterator<Item = (&Tuple, &A)> {
        let root = self.query(id).root;
        let tap = &self.taps[&root];
        let rows = &self.nodes[root].rows;
        tap.order
            .iter()
            .filter(|&&s| rows.alive[s])
            .map(move |&s| (&*rows.tuples[s], &rows.annots[s]))
    }

    /// The current annotation of `t` in a registered query's view, if `t`
    /// is (still) there.
    pub fn annotation_of(&self, id: QueryId, t: &Tuple) -> Option<&A> {
        let root = self.query(id).root;
        let rows = &self.nodes[root].rows;
        self.taps[&root]
            .index
            .get(t, &rows.tuples)
            .filter(|&s| rows.alive[s])
            .map(|s| &rows.annots[s])
    }

    /// Whether `t` is (still) in a registered query's view.
    pub fn contains(&self, id: QueryId, t: &Tuple) -> bool {
        self.annotation_of(id, t).is_some()
    }

    /// Clone a registered query's current view into a sorted [`Annotated`]
    /// — what a fresh evaluation over the deleted-from database would
    /// return (up to source-tuple renumbering inside the annotations).
    pub fn snapshot(&self, id: QueryId) -> Annotated<A> {
        let schema = self.query(id).schema.clone();
        let mut tuples = Vec::with_capacity(self.view_len(id));
        let mut annots = Vec::with_capacity(self.view_len(id));
        for (t, a) in self.iter_query(id) {
            tuples.push(t.clone());
            annots.push(a.clone());
        }
        Annotated::from_sorted_parts(schema, tuples, annots)
    }

    /// Delete the source tuples named by `tids` from every registered
    /// view: one push through the shared DAG, then per-query deltas cloned
    /// out in registration order. No-op tids (unknown relations,
    /// out-of-range or already-dead rows, repeats) are skipped exactly as
    /// in [`crate::plan::MaterializedPlan::delete_sources`]; a batch with
    /// no effect returns empty deltas without touching the DAG.
    /// Subscribed queries additionally get `(tids, delta)` appended to
    /// their outbox.
    pub fn delete_sources(&mut self, tids: &[Tid]) -> Vec<(QueryId, ViewDelta)> {
        // Record even no-op tids: a relation nobody scans *yet* must still
        // be replayed into nodes a later registration builds.
        self.committed.extend(tids.iter().cloned());
        let mut seeds: Vec<(usize, usize)> = Vec::new();
        for tid in tids {
            for &(ref rel, node) in &self.scans {
                if *rel != tid.rel {
                    continue;
                }
                let rows = &mut self.nodes[node].rows;
                if tid.row < rows.alive.len() && rows.alive[tid.row] {
                    rows.kill(tid.row);
                    seeds.push((node, tid.row));
                }
            }
        }
        if seeds.is_empty() {
            return self
                .queries
                .keys()
                .map(|&q| (q, ViewDelta::default()))
                .collect();
        }
        for d in &mut self.deltas {
            d.clear();
        }
        for (node, row) in seeds {
            self.deltas[node].removed.push(row);
        }
        let order = std::mem::take(&mut self.push_order);
        for level in &order {
            self.propagate_level(level);
        }
        self.push_order = order;
        // One extraction per distinct root; clone per query. The map is
        // reused scratch (taken and returned) so steady-state pushes keep
        // its table allocation.
        let mut per_root = std::mem::take(&mut self.per_root_scratch);
        per_root.clear();
        for rq in self.queries.values() {
            per_root
                .entry(rq.root)
                .or_insert_with(|| self.extract_delta(rq.root));
        }
        let out: Vec<(QueryId, ViewDelta)> = self
            .queries
            .iter()
            .map(|(&q, rq)| (q, per_root[&rq.root].clone()))
            .collect();
        self.per_root_scratch = per_root;
        for (q, delta) in &out {
            if let Some(pending) = self.outbox.get_mut(q) {
                pending.push((tids.to_vec(), delta.clone()));
            }
        }
        for sub in self.session_outbox.values_mut() {
            if let Some((_, delta)) = out.iter().find(|(q, _)| *q == sub.query) {
                sub.pending.push((tids.to_vec(), delta.clone()));
            }
        }
        out
    }

    fn query(&self, id: QueryId) -> &RegisteredQuery {
        self.queries.get(&id).expect("unknown QueryId")
    }

    /// Recursive hash-consing build: canonicalize, look up, build only on
    /// a miss. Children are built (or found) before parents, so every
    /// node's children have smaller ids.
    fn build_node(&mut self, q: &Query) -> Result<(usize, Schema)> {
        let pool = self.pool;
        match q {
            Query::Scan(rel) => {
                let db = self.db.clone();
                let r = db.require(rel)?;
                let schema = r.schema().clone();
                let key = NodeKey::Scan(rel.clone());
                if let Some(&id) = self.keys.get(&key) {
                    return Ok((id, schema));
                }
                let rows = build_scan_rows::<A>(r, pool);
                let id = self.add_node(key, Op::Scan, rows, Vec::new());
                self.scans.push((rel.clone(), id));
                Ok((id, schema))
            }
            Query::Select { input, pred } => {
                let (child, schema) = self.build_node(input)?;
                let key = NodeKey::Select {
                    child,
                    pred: canon_pred(pred, &schema),
                };
                if let Some(&id) = self.keys.get(&key) {
                    return Ok((id, schema));
                }
                let (op, rows) =
                    build_select_node(child, &self.nodes[child].rows, &schema, pred, pool)?;
                let id = self.add_node(key, op, rows, vec![child]);
                Ok((id, schema))
            }
            Query::Project { input, attrs } => {
                let (child, in_schema) = self.build_node(input)?;
                let schema = in_schema.project(attrs)?;
                let positions = in_schema.positions_of(attrs)?;
                let key = NodeKey::Project {
                    child,
                    positions: positions.clone(),
                };
                if let Some(&id) = self.keys.get(&key) {
                    return Ok((id, schema));
                }
                let (op, rows) =
                    build_project_node(child, &self.nodes[child].rows, positions, pool);
                let id = self.add_node(key, op, rows, vec![child]);
                Ok((id, schema))
            }
            Query::Join { left, right } => {
                let (lid, ls) = self.build_node(left)?;
                let (rid, rs) = self.build_node(right)?;
                let schema = ls.join_with(&rs);
                let (l_keys, r_keys, layout) = join_keys_and_layout(&ls, &rs);
                let key = NodeKey::Join {
                    left: lid,
                    right: rid,
                    l_keys: l_keys.clone(),
                    r_keys: r_keys.clone(),
                    merge_from_right: layout.merge_from_right.clone(),
                    right_extra: layout.right_extra.clone(),
                };
                if let Some(&id) = self.keys.get(&key) {
                    return Ok((id, schema));
                }
                let (op, rows) = build_join_node(
                    (lid, &self.nodes[lid].rows, &l_keys),
                    (rid, &self.nodes[rid].rows, &r_keys),
                    layout,
                    pool,
                );
                let id = self.add_node(key, op, rows, vec![lid, rid]);
                Ok((id, schema))
            }
            Query::Union { left, right } => {
                let (lid, ls) = self.build_node(left)?;
                let (rid, rs) = self.build_node(right)?;
                let positions = rs.positions_of(ls.attrs())?;
                let key = NodeKey::Union {
                    left: lid,
                    right: rid,
                    positions: positions.clone(),
                };
                if let Some(&id) = self.keys.get(&key) {
                    return Ok((id, ls));
                }
                let (op, rows) = build_union_node(
                    lid,
                    rid,
                    &self.nodes[lid].rows,
                    &self.nodes[rid].rows,
                    positions,
                    pool,
                );
                let id = self.add_node(key, op, rows, vec![lid, rid]);
                Ok((id, ls))
            }
            Query::Rename { input, mapping } => {
                // Renames collapse into the child: no node, just a schema
                // relabel — this is what makes the keys α-insensitive.
                let (id, schema) = self.build_node(input)?;
                Ok((id, schema.rename(mapping)?))
            }
        }
    }

    fn add_node(&mut self, key: NodeKey, op: Op, rows: Rows<A>, children: Vec<usize>) -> usize {
        let id = self.nodes.len();
        for &c in &children {
            self.refs[c] += 1;
        }
        let level = children
            .iter()
            .map(|&c| self.levels[c] + 1)
            .max()
            .unwrap_or(0);
        self.nodes.push(Node { op, rows });
        self.deltas.push(NodeDelta::default());
        self.refs.push(0);
        self.live.push(true);
        self.levels.push(level);
        self.children_of.push(children);
        self.keys.insert(key.clone(), id);
        self.key_of.push(Some(key));
        id
    }

    /// Undo a failed registration: nodes with ids `>= before` were created
    /// by this call only (nothing older can reference them), so they pop
    /// off the arena after returning their child refs and keys.
    fn rollback(&mut self, before: usize) {
        for id in (before..self.nodes.len()).rev() {
            for &c in &self.children_of[id] {
                self.refs[c] -= 1;
            }
            if let Some(key) = self.key_of[id].take() {
                self.keys.remove(&key);
            }
        }
        self.scans.retain(|&(_, n)| n < before);
        self.nodes.truncate(before);
        self.deltas.truncate(before);
        self.refs.truncate(before);
        self.live.truncate(before);
        self.levels.truncate(before);
        self.children_of.truncate(before);
        self.key_of.truncate(before);
    }

    /// Release one reference on `id`, tombstoning it (and cascading to its
    /// children) when the count reaches zero. Tombstones keep their slot —
    /// ids are never reused — but drop all row and operator memory.
    fn release(&mut self, id: usize) {
        self.refs[id] -= 1;
        if self.refs[id] > 0 {
            return;
        }
        self.live[id] = false;
        if let Some(key) = self.key_of[id].take() {
            self.keys.remove(&key);
        }
        if matches!(self.nodes[id].op, Op::Scan) {
            self.scans.retain(|&(_, n)| n != id);
        }
        self.nodes[id] = Node::placeholder();
        self.deltas[id] = NodeDelta::default();
        let children = std::mem::take(&mut self.children_of[id]);
        for c in children {
            self.release(c);
        }
    }

    fn rebuild_push_order(&mut self) {
        let mut by_level: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for id in 0..self.nodes.len() {
            if self.live[id] && !matches!(self.nodes[id].op, Op::Scan) {
                by_level.entry(self.levels[id]).or_default().push(id);
            }
        }
        self.push_order = by_level.into_values().collect();
    }

    /// Bring nodes built by a late registration (`ids >= before`) up to
    /// date with the already-committed deletions. New nodes were built
    /// over the *full* base relations and the *current* rows of any shared
    /// children, so it suffices to (1) kill committed rows in new scan
    /// nodes, (2) present existing children's dead slots as removal deltas
    /// to their new parents, and (3) push through the new nodes only, in
    /// ascending id order. Affected ⊕-buckets recompute from surviving
    /// contributors, which erases any stale annotation a dead child slot
    /// contributed at build time.
    fn replay_committed(&mut self, before: usize) {
        for d in &mut self.deltas {
            d.clear();
        }
        let mut any = false;
        let new_scans: Vec<(RelName, usize)> = self
            .scans
            .iter()
            .filter(|&&(_, n)| n >= before)
            .cloned()
            .collect();
        if !new_scans.is_empty() {
            let committed: Vec<Tid> = self.committed.iter().cloned().collect();
            for tid in &committed {
                for &(ref rel, node) in &new_scans {
                    if *rel != tid.rel {
                        continue;
                    }
                    let rows = &mut self.nodes[node].rows;
                    if tid.row < rows.alive.len() && rows.alive[tid.row] {
                        rows.kill(tid.row);
                        self.deltas[node].removed.push(tid.row);
                        any = true;
                    }
                }
            }
        }
        let mut seeded: BTreeSet<usize> = BTreeSet::new();
        for id in before..self.nodes.len() {
            for ci in 0..self.children_of[id].len() {
                let c = self.children_of[id][ci];
                if c < before && seeded.insert(c) {
                    let rows = &self.nodes[c].rows;
                    let delta = &mut self.deltas[c];
                    for (s, &al) in rows.alive.iter().enumerate() {
                        if !al {
                            delta.removed.push(s);
                            any = true;
                        }
                    }
                }
            }
        }
        if !any {
            return;
        }
        for id in before..self.nodes.len() {
            if !matches!(self.nodes[id].op, Op::Scan) {
                self.propagate_in_place(id);
            }
        }
    }

    /// Propagate one node against the arena in place (children always have
    /// smaller ids, so split borrows are safe — same trick as
    /// [`crate::plan::MaterializedPlan`]).
    fn propagate_in_place(&mut self, id: usize) {
        let (child_deltas, rest) = self.deltas.split_at_mut(id);
        let delta = &mut rest[0];
        let (child_nodes, rest_nodes) = self.nodes.split_at_mut(id);
        propagate_node(&mut rest_nodes[0], delta, child_nodes, child_deltas);
    }

    fn has_input_delta(&self, id: usize) -> bool {
        self.children_of[id]
            .iter()
            .any(|&c| !self.deltas[c].is_empty())
    }

    /// Propagate one DAG level. Nodes whose children produced no delta are
    /// skipped; the rest are independent (a level-`k` node's children are
    /// all at levels `< k`), so with more than one of them and a parallel
    /// pool they are extracted from the arena, propagated concurrently
    /// against the settled earlier levels, and written back in input order
    /// — bit-identical to the sequential walk.
    fn propagate_level(&mut self, ids: &[usize]) {
        let active: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| self.has_input_delta(id))
            .collect();
        if active.len() <= 1 || self.pool.is_sequential() {
            for id in active {
                self.propagate_in_place(id);
            }
            return;
        }
        let tasks: Vec<(usize, Node<A>, NodeDelta)> = active
            .iter()
            .map(|&id| {
                let node = std::mem::replace(&mut self.nodes[id], Node::placeholder());
                let delta = std::mem::take(&mut self.deltas[id]);
                (id, node, delta)
            })
            .collect();
        let done = {
            let nodes = &self.nodes;
            let deltas = &self.deltas;
            self.pool.par_tasks(tasks, |(id, mut node, mut delta)| {
                propagate_node(&mut node, &mut delta, nodes, deltas);
                (id, node, delta)
            })
        };
        for (id, node, delta) in done {
            self.nodes[id] = node;
            self.deltas[id] = delta;
        }
    }

    fn extract_delta(&self, root: usize) -> ViewDelta {
        let delta = &self.deltas[root];
        if delta.is_empty() {
            return ViewDelta::default();
        }
        let rows = &self.nodes[root].rows;
        let mut removed: Vec<Tuple> = delta
            .removed
            .iter()
            .map(|&s| (*rows.tuples[s]).clone())
            .collect();
        let mut changed: Vec<Tuple> = delta
            .changed
            .iter()
            .map(|&s| (*rows.tuples[s]).clone())
            .collect();
        removed.sort();
        changed.sort();
        ViewDelta { removed, changed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{eval_annotated, Unit};
    use crate::parser::{parse_database, parse_query};
    use crate::plan::MaterializedPlan;
    use crate::tuple::tuple;

    fn fixture() -> Database {
        parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap()
    }

    fn core() -> Query {
        parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap()
    }

    #[test]
    fn identical_queries_share_every_node() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let q1 = reg.register(&core()).unwrap();
        let q2 = reg.register(&core()).unwrap();
        assert_ne!(q1, q2);
        // scan + scan + join + project = 4 nodes, not 8.
        assert_eq!(reg.node_count(), 4);
        assert_eq!(reg.query_count(), 2);
    }

    #[test]
    fn alpha_equivalent_queries_share_nodes_across_renames() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        reg.register(&core()).unwrap();
        let renamed = parse_query(
            "rename(project(join(scan UserGroup, scan GroupFile), [user, file]), \
             {user -> member})",
        )
        .unwrap();
        let q2 = reg.register(&renamed).unwrap();
        assert_eq!(reg.node_count(), 4, "rename adds no node");
        assert_eq!(
            reg.query_schema(q2).attrs()[0].to_string(),
            "member",
            "but the schema is per-query"
        );
    }

    #[test]
    fn registered_views_match_eval_annotated() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        for text in [
            "scan UserGroup",
            "select(scan UserGroup, user = 'bob')",
            "project(join(scan UserGroup, scan GroupFile), [user, file])",
            "union(scan UserGroup, rename(scan GroupFile, {grp -> user, file -> grp}))",
        ] {
            let q = parse_query(text).unwrap();
            let id = reg.register(&q).unwrap();
            let fresh = eval_annotated::<Unit>(&q, &db).unwrap();
            assert_eq!(reg.snapshot(id).tuples(), fresh.tuples(), "{text}");
            assert_eq!(reg.query_schema(id), &fresh.schema, "{text}");
        }
    }

    #[test]
    fn shared_deletion_matches_independent_plans() {
        let db = fixture();
        let queries = [
            core(),
            parse_query(
                "select(project(join(scan UserGroup, scan GroupFile), [user, file]), \
                 user = 'bob')",
            )
            .unwrap(),
            parse_query("scan UserGroup").unwrap(),
        ];
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let ids: Vec<QueryId> = queries.iter().map(|q| reg.register(q).unwrap()).collect();
        let mut plans: Vec<MaterializedPlan<Unit>> = queries
            .iter()
            .map(|q| MaterializedPlan::build(q, &db).unwrap())
            .collect();
        for tid in db.all_tids().collect::<Vec<_>>() {
            let shared = reg.delete_sources(std::slice::from_ref(&tid));
            for ((id, delta), plan) in shared.iter().zip(&mut plans) {
                let independent = plan.delete_sources(std::slice::from_ref(&tid));
                assert_eq!(delta, &independent, "query {id} after deleting {tid:?}");
            }
            for (id, plan) in ids.iter().zip(&plans) {
                assert_eq!(reg.snapshot(*id).tuples(), plan.snapshot().tuples());
            }
        }
    }

    #[test]
    fn self_join_shares_the_repeated_branch() {
        let db = parse_database("relation R(A, B) { (a, b1), (a, b2) }").unwrap();
        let q = Query::scan("R").project(["A"]).join(Query::scan("R"));
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let id = reg.register(&q).unwrap();
        // scan R is shared between the project branch and the join's right
        // operand: scan + project + join = 3 nodes.
        assert_eq!(reg.node_count(), 3);
        let mut plan = MaterializedPlan::<Unit>::build(&q, &db).unwrap();
        for tid in db.all_tids().collect::<Vec<_>>() {
            let shared = reg.delete_sources(std::slice::from_ref(&tid));
            let independent = plan.delete_sources(std::slice::from_ref(&tid));
            assert_eq!(shared[0].1, independent, "after deleting {tid:?}");
            assert_eq!(reg.snapshot(id).tuples(), plan.snapshot().tuples());
        }
    }

    #[test]
    fn unregister_tombstones_unshared_nodes_only() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let q1 = reg.register(&core()).unwrap();
        let bob = parse_query(
            "select(project(join(scan UserGroup, scan GroupFile), [user, file]), user = 'bob')",
        )
        .unwrap();
        let q2 = reg.register(&bob).unwrap();
        assert_eq!(reg.node_count(), 5);
        // Dropping the select top keeps the shared core.
        assert!(reg.unregister(q2));
        assert_eq!(reg.node_count(), 4);
        assert!(!reg.unregister(q2), "double unregister is a no-op");
        // Dropping the core releases everything.
        assert!(reg.unregister(q1));
        assert_eq!(reg.node_count(), 0);
        // The registry still works afterwards.
        let q3 = reg.register(&core()).unwrap();
        assert_eq!(reg.node_count(), 4);
        assert_eq!(reg.view_len(q3), 3);
    }

    #[test]
    fn mid_stream_registration_replays_committed_deletions() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let q1 = reg.register(&core()).unwrap();
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        reg.delete_sources(std::slice::from_ref(&dev));
        assert_eq!(reg.view_len(q1), 2);
        // A brand-new query over the same (already deleted-from) sources:
        // new select node over the shared core, plus a fresh scan of a
        // relation already touched by deletions.
        let bob = parse_query(
            "select(project(join(scan UserGroup, scan GroupFile), [user, file]), user = 'bob')",
        )
        .unwrap();
        let q2 = reg.register(&bob).unwrap();
        let mut deleted = BTreeSet::new();
        deleted.insert(dev.clone());
        let fresh = eval_annotated::<Unit>(&bob, &db.without(&deleted)).unwrap();
        assert_eq!(reg.snapshot(q2).tuples(), fresh.tuples());
        // Same for a query whose *scan* is new to the registry.
        let gf = parse_query("scan GroupFile").unwrap();
        let staff = db.tid_of("GroupFile", &tuple(["staff", "report"])).unwrap();
        reg.delete_sources(std::slice::from_ref(&staff));
        deleted.insert(staff);
        let q3 = reg.register(&gf).unwrap();
        let fresh = eval_annotated::<Unit>(&gf, &db.without(&deleted)).unwrap();
        assert_eq!(reg.snapshot(q3).tuples(), fresh.tuples());
    }

    #[test]
    fn outbox_collects_commits_between_drains() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let q1 = reg.register(&core()).unwrap();
        reg.subscribe(q1);
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        let staff = db.tid_of("UserGroup", &tuple(["bob", "staff"])).unwrap();
        reg.delete_sources(std::slice::from_ref(&dev));
        reg.delete_sources(std::slice::from_ref(&staff));
        let pending = reg.drain_pending(q1);
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].0, vec![dev]);
        assert_eq!(pending[0].1.removed, vec![tuple(["bob", "main"])]);
        assert_eq!(pending[1].0, vec![staff]);
        assert_eq!(pending[1].1.removed, vec![tuple(["bob", "report"])]);
        assert!(reg.drain_pending(q1).is_empty(), "drain is destructive");
    }

    #[test]
    fn session_subscriptions_are_private_per_consumer() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let q1 = reg.register(&core()).unwrap();
        // Two sessions watch the same query; a third watches nothing.
        let a = reg.subscribe_session(q1).unwrap();
        let b = reg.subscribe_session(q1).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.session_query(a), Some(q1));
        assert!(reg.subscribe_session(QueryId::from_index(99)).is_none());
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        let staff = db.tid_of("UserGroup", &tuple(["bob", "staff"])).unwrap();
        reg.delete_sources(std::slice::from_ref(&dev));
        // Unlike the shared outbox, each subscriber sees every delta:
        // a's drain does not steal b's copy.
        let got_a = reg.drain_session(a);
        assert_eq!(got_a.len(), 1);
        assert_eq!(got_a[0].1.removed, vec![tuple(["bob", "main"])]);
        let got_b = reg.drain_session(b);
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0].1.removed, vec![tuple(["bob", "main"])]);
        assert!(reg.drain_session(a).is_empty(), "drain is destructive");
        // Unsubscribing stops the flow for that consumer only.
        assert!(reg.unsubscribe_session(a));
        assert!(!reg.unsubscribe_session(a), "second close is a no-op");
        reg.delete_sources(std::slice::from_ref(&staff));
        assert!(reg.drain_session(a).is_empty());
        assert_eq!(reg.drain_session(b).len(), 1);
        // Unregistering the query closes the remaining subscription.
        reg.unregister(q1);
        assert_eq!(reg.session_query(b), None);
        assert!(reg.drain_session(b).is_empty());
    }

    #[test]
    fn failed_registration_rolls_back_cleanly() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        reg.register(&core()).unwrap();
        assert_eq!(reg.node_count(), 4);
        // Unknown relation: rejected by output_schema before building.
        assert!(reg.register(&Query::scan("Nope")).is_err());
        // Value-level predicate error (ordered comparison across types)
        // surfaces mid-build, after the scan node: the rollback must not
        // disturb the shared nodes.
        let bad = Query::scan("UserGroup").select(crate::predicate::Pred::cmp(
            Operand::Attr("user".into()),
            CmpOp::Lt,
            Operand::Const(Value::int(3)),
        ));
        assert!(reg.register(&bad).is_err());
        assert_eq!(reg.node_count(), 4, "rollback left shared nodes alone");
        // The registry still registers and maintains correctly.
        let q = reg
            .register(&parse_query("scan UserGroup").unwrap())
            .unwrap();
        assert_eq!(reg.view_len(q), 3);
    }

    #[test]
    fn parallel_push_is_identical_to_sequential() {
        let db = fixture();
        let queries = [
            core(),
            parse_query(
                "select(project(join(scan UserGroup, scan GroupFile), [user, file]), \
                 user = 'bob')",
            )
            .unwrap(),
            parse_query(
                "select(project(join(scan UserGroup, scan GroupFile), [user, file]), \
                 user = 'ann')",
            )
            .unwrap(),
            parse_query("scan GroupFile").unwrap(),
        ];
        let mut seq = PlanRegistry::<Unit>::with_pool(&db, ParPool::sequential());
        let mut par = PlanRegistry::<Unit>::with_pool(&db, ParPool::new(4));
        for q in &queries {
            seq.register(q).unwrap();
            par.register(q).unwrap();
        }
        for tid in db.all_tids().collect::<Vec<_>>() {
            let a = seq.delete_sources(std::slice::from_ref(&tid));
            let b = par.delete_sources(std::slice::from_ref(&tid));
            assert_eq!(a, b, "after deleting {tid:?}");
        }
    }

    #[test]
    fn empty_and_noop_batches_return_empty_deltas() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        let q1 = reg.register(&core()).unwrap();
        let out = reg.delete_sources(&[]);
        assert_eq!(out, vec![(q1, ViewDelta::default())]);
        let out = reg.delete_sources(&[Tid::new("Nope", 0), Tid::new("UserGroup", 99)]);
        assert_eq!(out, vec![(q1, ViewDelta::default())]);
        // Repeats within one batch dedupe.
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        let out = reg.delete_sources(&[dev.clone(), dev]);
        assert_eq!(out[0].1.removed, vec![tuple(["bob", "main"])]);
    }

    #[test]
    fn register_at_reproduces_persisted_ids() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        assert_eq!(reg.next_query_index(), 0);
        // Skip ahead: q0..q2 were burned by the original process.
        let q3 = reg.register_at(&core(), QueryId::from_index(3)).unwrap();
        assert_eq!(q3.index(), 3);
        assert_eq!(q3.to_string(), "q3");
        assert_eq!(reg.next_query_index(), 4);
        // Plain registration continues from there.
        let q4 = reg
            .register(&parse_query("scan UserGroup").unwrap())
            .unwrap();
        assert_eq!(q4.index(), 4);
        // A failed register_at leaves the sequence untouched.
        let bad = parse_query("scan Nope").unwrap();
        assert!(reg.register_at(&bad, QueryId::from_index(9)).is_err());
        assert_eq!(reg.next_query_index(), 5);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn register_at_rejects_reused_ids() {
        let db = fixture();
        let mut reg = PlanRegistry::<Unit>::new(&db);
        reg.register(&core()).unwrap();
        let _ = reg.register_at(&core(), QueryId::from_index(0));
    }
}
