//! Tuples: positional rows interpreted against a [`Schema`].

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A positional tuple. Meaning is given by the schema of the relation or
/// query result that holds it; tuples themselves are plain value vectors so
/// set operations are cheap.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new<I, V>(values: I) -> Tuple
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values in positional order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Value of attribute `attr` under `schema`, if the attribute exists.
    pub fn value_of(&self, schema: &Schema, attr: &crate::name::Attr) -> Option<&Value> {
        schema.index_of(attr).map(|i| &self.values[i])
    }

    /// Project onto the given positions (in the given order).
    pub fn project_positions(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenate with the non-shared suffix of another tuple (natural-join
    /// output construction): `self` in full, then `other`'s values at
    /// `other_extra_positions`.
    pub fn join_concat(&self, other: &Tuple, other_extra_positions: &[usize]) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other_extra_positions.len());
        values.extend_from_slice(&self.values);
        values.extend(
            other_extra_positions
                .iter()
                .map(|&i| other.values[i].clone()),
        );
        Tuple { values }
    }

    /// Whether `self` and `other` agree on the paired positions
    /// `(self_pos, other_pos)`.
    pub fn agrees_on(&self, other: &Tuple, pairs: &[(usize, usize)]) -> bool {
        pairs
            .iter()
            .all(|&(i, j)| self.values[i] == other.values[j])
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple{self}")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

/// Convenience constructor: `tuple(["a", "x1"])` or `tuple([1, 2])`.
pub fn tuple<I, V>(values: I) -> Tuple
where
    I: IntoIterator<Item = V>,
    V: Into<Value>,
{
    Tuple::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::schema;

    #[test]
    fn construction_and_access() {
        let t = tuple(["a", "x1"]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(1), &Value::str("x1"));
        let s = schema(["A", "B"]);
        assert_eq!(t.value_of(&s, &"A".into()), Some(&Value::str("a")));
        assert_eq!(t.value_of(&s, &"Z".into()), None);
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = tuple([1, 2, 3]);
        assert_eq!(t.project_positions(&[2, 0]), tuple([3, 1]));
        assert_eq!(t.project_positions(&[1, 1]), tuple([2, 2]));
        assert_eq!(t.project_positions(&[]), Tuple::new(Vec::<Value>::new()));
    }

    #[test]
    fn join_concat_appends_extras() {
        let left = tuple(["a", "b"]);
        let right = tuple(["b", "c", "d"]);
        // extras are right's positions 1 and 2.
        assert_eq!(
            left.join_concat(&right, &[1, 2]),
            tuple(["a", "b", "c", "d"])
        );
    }

    #[test]
    fn agrees_on_checks_pairs() {
        let left = tuple(["a", "k"]);
        let right = tuple(["k", "z"]);
        assert!(left.agrees_on(&right, &[(1, 0)]));
        assert!(!left.agrees_on(&right, &[(0, 0)]));
        assert!(left.agrees_on(&right, &[])); // vacuous
    }

    #[test]
    fn ordering_for_deterministic_sets() {
        let mut v = vec![tuple([2, 1]), tuple([1, 9]), tuple([1, 2])];
        v.sort();
        assert_eq!(v, vec![tuple([1, 2]), tuple([1, 9]), tuple([2, 1])]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple(["a", "c1"]).to_string(), "(a, c1)");
        assert_eq!(Tuple::new(Vec::<Value>::new()).to_string(), "()");
    }
}
