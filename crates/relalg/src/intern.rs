//! Global string interning for [`crate::value::Value`].
//!
//! Every string constant in the system — fixture literals, CLI tuple
//! arguments, snapshot recovery, parser output — funnels through
//! [`Value::str`](crate::value::Value::str), which used to allocate a fresh
//! `Arc<str>` per call. At serving scale the same handful of constants
//! ("bob", "staff", …) is materialized millions of times, and worse, every
//! hash of a `Value` re-walked the string bytes. The interner fixes both:
//! each distinct string is stored **once** in a process-global dictionary
//! and handed out as a [`Sym`] — a dense `u32` id plus a shared handle to
//! the canonical text. Equality and hashing are a single integer compare on
//! the id; ordering still follows the text (with an id-equality shortcut),
//! so relations keep their deterministic sort order.
//!
//! The id space is what makes the hot-path fingerprinting in
//! [`crate::fingerprint`] possible: a join key over interned strings packs
//! into one `u64` word per value instead of a hashed byte walk.
//!
//! ## Invariant
//!
//! All [`Sym`]s are constructed by the single global interner, so
//! *id equality ⇔ text equality*. `Sym`'s `Eq`/`Hash` (by id) and `Ord`
//! (by text) are mutually consistent because of exactly this invariant;
//! the constructor is private to enforce it.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned string: a dense `u32` id into the process-global dictionary
/// plus a shared handle to the canonical text. Cheap to clone, `O(1)` to
/// compare and hash (by id), ordered by text content.
#[derive(Clone)]
pub struct Sym {
    id: u32,
    text: Arc<str>,
}

impl Sym {
    /// The dense dictionary id. Stable for the lifetime of the process
    /// (ids are assigned in first-interning order and never reused); the
    /// fingerprint layer packs this into join-key words.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The canonical text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// A shared handle to the canonical text — what name types and other
    /// `Arc<str>`-shaped consumers store so repeated constants share one
    /// allocation.
    pub fn to_arc(&self) -> Arc<str> {
        self.text.clone()
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        // Sound because all Syms come from the one global interner:
        // same text ⇔ same id.
        self.id == other.id
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(&other.text)
        }
    }
}

impl Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        &self.text
    }
}

impl Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        &self.text
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", &*self.text)
    }
}

/// The dictionary: text → id plus the id → text column. Reads (the common
/// case once a workload's constants are seen) take the shared lock only.
#[derive(Default)]
struct Interner {
    ids: HashMap<Arc<str>, u32>,
    texts: Vec<Arc<str>>,
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::default()))
}

/// Intern `s`, returning its [`Sym`]. The first interning of a string
/// allocates once; every later call for the same text is a read-locked
/// lookup returning a clone of the canonical handle.
pub fn intern(s: &str) -> Sym {
    {
        let inner = global().read().expect("interner lock");
        if let Some(&id) = inner.ids.get(s) {
            return Sym {
                id,
                text: inner.texts[id as usize].clone(),
            };
        }
    }
    let mut inner = global().write().expect("interner lock");
    // Re-check: another thread may have interned between the locks.
    if let Some(&id) = inner.ids.get(s) {
        return Sym {
            id,
            text: inner.texts[id as usize].clone(),
        };
    }
    let id = u32::try_from(inner.texts.len()).expect("interner exhausted the u32 id space");
    let text: Arc<str> = Arc::from(s);
    inner.texts.push(text.clone());
    inner.ids.insert(text.clone(), id);
    Sym { id, text }
}

/// Number of distinct strings interned so far (dictionary size). Useful
/// for capacity reporting and the allocation-budget guards.
pub fn interned_count() -> usize {
    global().read().expect("interner lock").texts.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn same_text_same_id_and_shared_allocation() {
        let a = intern("intern-test-shared");
        let b = intern("intern-test-shared");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert!(Arc::ptr_eq(&a.text, &b.text), "one allocation per text");
    }

    #[test]
    fn distinct_texts_distinct_ids() {
        let a = intern("intern-test-a");
        let b = intern("intern-test-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn ordering_follows_text_not_id() {
        // Interning order is b-then-a, so ids are "backwards" w.r.t. text.
        let b = intern("intern-test-ord-b");
        let a = intern("intern-test-ord-a");
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_eq() {
        let a = intern("intern-test-hash");
        let b = intern("intern-test-hash");
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn str_views_expose_the_text() {
        let s = intern("intern-test-view");
        assert_eq!(s.as_str(), "intern-test-view");
        assert_eq!(&*s, "intern-test-view");
        assert_eq!(s.to_string(), "intern-test-view");
        assert_eq!(format!("{s:?}"), "\"intern-test-view\"");
        assert_eq!(s.len(), 16); // Deref<Target = str>
    }

    #[test]
    fn count_grows_monotonically() {
        let before = interned_count();
        let first = intern("intern-test-count-unique-string");
        assert!(interned_count() > before);
        // Re-interning adds nothing: the id is stable (other tests may
        // intern concurrently, so only id stability is assertable here).
        let second = intern("intern-test-count-unique-string");
        assert_eq!(first.id(), second.id());
    }
}
