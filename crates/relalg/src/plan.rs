//! The **materialized operator pipeline** — incremental view maintenance
//! under source deletions, for every annotation semantics.
//!
//! [`crate::engine::eval_annotated`] answers "what is the annotated view of
//! `Q(S)`?" with one tree walk and throws every intermediate operator state
//! away. The serving workload of the deletion-propagation problems is the
//! opposite shape: one hot `(Q, S)` pair asked again and again as source
//! tuples are deleted. [`MaterializedPlan`] builds the same operator tree
//! **once** and *retains* per-operator state — scan row liveness, the
//! (left, right) pair behind every join output, per-bucket contributor
//! lists at projections and unions — so that
//! [`MaterializedPlan::delete_sources`] can push a deletion bottom-up and
//! recompute only the buckets whose derivations actually changed, in
//! `O(affected)` instead of an `O(|S|)` re-evaluation.
//!
//! ## Node state and the support-count invariants
//!
//! Every operator node materializes its output rows in **stable slots**
//! (first-derivation order, exactly the order of the one-shot walk). A slot
//! is never reused; deletion marks it dead. What "support" a node keeps per
//! output slot depends on how the operator can merge derivations:
//!
//! * **Scan** — slot `i` *is* base row `i` of the relation ([`Tid::row`]);
//!   the tid map is the identity plus a liveness bit. Deleting a source
//!   tuple kills the slot.
//! * **Select** — a partial 1:1 map from input slots to output slots.
//!   No merging: an output dies exactly when its input dies.
//! * **Join** — every output tuple has **exactly one** derivation
//!   `(left, right)`: the joined tuple embeds the full left tuple and
//!   determines the right tuple (shared attributes + appended extras), and
//!   within a node tuples are distinct under set semantics. The node keeps
//!   the pair per output plus both reverse adjacency lists — the retained
//!   form of the build-time hash table, keyed by the same [`JoinLayout`].
//!   An output dies when either side dies; an ⊗-recompute is one
//!   [`Annotation::join`].
//! * **Project / Union** — the ⊕-merge points. Each output bucket keeps
//!   its **contributor list** (input slots whose rows project/align into
//!   it, in derivation order). The *support count* is the list's length:
//!   a bucket dies exactly when its last contributor dies, and any
//!   contributor death or annotation change triggers a **bucket
//!   recomputation** — re-⊕-merging the *surviving* inputs from scratch,
//!   then [`Annotation::normalize`].
//!
//! Recomputing from surviving inputs (rather than trying to "subtract" the
//! lost derivation) is what makes maintenance correct for non-invertible
//! carriers: a minimal-witness basis can *grow* when a deletion kills the
//! witness that had absorbed a larger one, and the surviving contributors
//! still carry exactly the alternatives the fresh evaluation would see.
//!
//! ## Parallel construction
//!
//! Cold-start construction is the expensive half of the serving story, and
//! its loops are pure: [`MaterializedPlan::build_with`] shards them over a
//! [`ParPool`] — independent operator subtrees build concurrently
//! (sub-builders spliced back in sequential node order), the join build
//! hashes its right side into per-shard tables by key hash while the probe
//! runs over left-row chunks, and per-row annotation work (scan seeding,
//! projection, ⊕-bucket normalization) maps over contiguous ranges.
//! ⊕-interning itself stays sequential, so every merge happens in the
//! derivation order of the one-shot walk and the result is **identical to
//! the sequential build** for every carrier; a one-thread pool runs the
//! exact sequential code path. Tuples are shared between operator levels
//! as [`Arc<Tuple>`], so select/union passthrough and bucket interning
//! bump a refcount instead of cloning value vectors.
//!
//! ## Delta propagation
//!
//! Deltas are per-node `(removed slots, changed slots)` pairs, pushed in
//! build (post-) order so children settle before parents:
//!
//! * a *removed* input slot prunes contributor lists / kills 1:1 outputs;
//! * a *changed* input slot marks its buckets affected;
//! * every affected bucket either dies (empty contributor list) or is
//!   recomputed; the recomputed annotation is compared against the old one
//!   (the [`Annotation`] `PartialEq` bound) and propagates **only if it
//!   differs** — all shipped carriers normalize to canonical forms, so an
//!   unchanged value stops the ripple right there.
//!
//! The root's delta is returned as a [`ViewDelta`]. Renames never
//! materialize a node: they only relabel the schema, so the build collapses
//! them into their child and records the renamed schema at the root.
//!
//! ```
//! use dap_relalg::{parse_database, parse_query, tuple, MaterializedPlan, Tid, Unit};
//!
//! let db = parse_database(
//!     "relation UserGroup(user, grp) { (ann, staff), (bob, staff), (bob, dev) }
//!      relation GroupFile(grp, file) { (staff, report), (dev, main), (dev, report) }",
//! ).unwrap();
//! let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
//!
//! let mut plan = MaterializedPlan::<Unit>::build(&q, &db).unwrap();
//! assert_eq!(plan.len(), 3);
//! // Deleting (bob, dev) kills (bob, main); (bob, report) survives via staff.
//! let delta = plan.delete_sources(&[db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap()]);
//! assert_eq!(delta.removed, vec![tuple(["bob", "main"])]);
//! assert!(plan.annotation_of(&tuple(["bob", "report"])).is_some());
//! ```

use crate::database::{Database, Tid};
use crate::engine::{Annotated, Annotation, JoinLayout};
use crate::error::Result;
use crate::fingerprint::{Bucket, ContentKey, FpMap, LayoutMode, TupleSlotMap};
use crate::name::{Attr, RelName};
use crate::par::ParPool;
use crate::query::Query;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::typecheck::output_schema;
use std::collections::HashMap;
use std::sync::Arc;

/// What one [`MaterializedPlan::delete_sources`] call did to the view.
/// Both lists are sorted ascending and disjoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewDelta {
    /// View tuples that disappeared (their last derivation died).
    pub removed: Vec<Tuple>,
    /// View tuples that survive with a **different annotation** (some but
    /// not all of their derivations died, or an upstream annotation
    /// shrank/grew). Read the new value off
    /// [`MaterializedPlan::annotation_of`].
    pub changed: Vec<Tuple>,
}

impl ViewDelta {
    /// Whether the deletion left the view completely untouched.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.changed.is_empty()
    }
}

/// Fewest rows per shard in the data-parallel build loops (below this the
/// sharding overhead exceeds the row work for every shipped carrier).
const BUILD_GRAIN: usize = 64;

/// Materialized output rows of one operator: stable slots, tombstoned on
/// deletion. `tuples[s]` / `annots[s]` stay readable after death but are
/// never read by parents (their contributor lists are pruned first).
/// Tuples are `Arc`-shared with the operators above (passthrough and
/// bucket keys clone the handle, not the values).
#[derive(Clone, Debug)]
pub(crate) struct Rows<A> {
    pub(crate) tuples: Vec<Arc<Tuple>>,
    pub(crate) annots: Vec<A>,
    pub(crate) alive: Vec<bool>,
    pub(crate) alive_count: usize,
}

impl<A> Rows<A> {
    pub(crate) fn new(tuples: Vec<Arc<Tuple>>, annots: Vec<A>) -> Rows<A> {
        let n = tuples.len();
        Rows {
            tuples,
            annots,
            alive: vec![true; n],
            alive_count: n,
        }
    }

    pub(crate) fn kill(&mut self, slot: usize) {
        debug_assert!(self.alive[slot], "slot {slot} killed twice");
        self.alive[slot] = false;
        self.alive_count -= 1;
    }
}

/// The retained per-operator state (see the module docs for the invariants
/// each variant maintains). Child indices always point at earlier plan
/// nodes: the build pushes children first.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Slot `i` ↔ base row `i`; deletion of `Tid { rel, row }` kills slot
    /// `row`. The relation name lives in [`MaterializedPlan::scans`].
    Scan,
    /// `out_of[input slot]` — the output slot the row passed through to,
    /// if it satisfied the predicate.
    Select {
        child: usize,
        out_of: Vec<Option<usize>>,
    },
    /// ⊕-merge buckets: `out_of` maps every input slot to its bucket,
    /// `contributors[bucket]` lists the surviving input slots in
    /// derivation order (the bucket's support; empty ⇒ dead).
    Project {
        child: usize,
        positions: Vec<usize>,
        out_of: Vec<usize>,
        contributors: Vec<Vec<usize>>,
    },
    /// One derivation per output: `pair_of[out]` is the unique
    /// `(left slot, right slot)` pair, `left_outs`/`right_outs` the
    /// reverse adjacency used to find affected outputs in `O(matches)`.
    Join {
        left: usize,
        right: usize,
        layout: JoinLayout,
        pair_of: Vec<(usize, usize)>,
        left_outs: Vec<Vec<usize>>,
        right_outs: Vec<Vec<usize>>,
    },
    /// ⊕-merge buckets with at most one contributor per branch:
    /// `sources[out] = (left slot, right slot)` options; `(None, None)` ⇒
    /// dead. `positions` aligns the right branch to the left schema.
    Union {
        left: usize,
        right: usize,
        positions: Vec<usize>,
        from_left: Vec<usize>,
        from_right: Vec<usize>,
        sources: Vec<(Option<usize>, Option<usize>)>,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct Node<A> {
    pub(crate) op: Op,
    pub(crate) rows: Rows<A>,
}

impl<A> Node<A> {
    /// An empty stand-in node: what a tombstoned (or temporarily
    /// extracted) slot holds. Never read as a child — freed registry slots
    /// are not reused and same-level nodes are never each other's children.
    pub(crate) fn placeholder() -> Node<A> {
        Node {
            op: Op::Scan,
            rows: Rows::new(Vec::new(), Vec::new()),
        }
    }
}

/// Per-node scratch delta for one `delete_sources` push.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeDelta {
    pub(crate) removed: Vec<usize>,
    pub(crate) changed: Vec<usize>,
    /// Affected-bucket scratch for [`propagate_node`], kept here so
    /// steady-state pushes reuse its allocation instead of growing a fresh
    /// `Vec` per node per turn. Always left empty between pushes.
    affected: Vec<usize>,
}

impl NodeDelta {
    pub(crate) fn clear(&mut self) {
        self.removed.clear();
        self.changed.clear();
        self.affected.clear();
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.changed.is_empty()
    }
}

/// A materialized annotated pipeline for one `(Q, S)`: build once, then
/// maintain the annotated view under source deletions with
/// [`MaterializedPlan::delete_sources`]. See the module docs for the
/// retained state and its invariants.
#[derive(Clone, Debug)]
pub struct MaterializedPlan<A> {
    nodes: Vec<Node<A>>,
    root: usize,
    schema: Schema,
    /// `(relation, scan node)` pairs — one entry per scan, so self-joins
    /// route a deletion to every occurrence.
    scans: Vec<(RelName, usize)>,
    /// Root slots in sorted-tuple order (deletion never reorders; reads
    /// filter dead slots).
    root_order: Vec<usize>,
    /// Root tuple → slot (lookups check liveness). Fingerprint-keyed with
    /// collision-checked fallback against the root rows — see
    /// [`crate::fingerprint::TupleSlotMap`].
    root_index: TupleSlotMap,
    /// Scratch deltas, one per node, reused across calls.
    deltas: Vec<NodeDelta>,
}

impl<A: Annotation> MaterializedPlan<A> {
    /// Build the pipeline for `q` over `db` with the process-default
    /// [`ParPool`]: one annotated evaluation that keeps its intermediate
    /// state. Fails (before materializing anything) on the same type
    /// errors as evaluation.
    pub fn build(q: &Query, db: &Database) -> Result<MaterializedPlan<A>> {
        MaterializedPlan::build_with(q, db, ParPool::global())
    }

    /// [`MaterializedPlan::build`] sharded over an explicit pool. The
    /// result is **identical** for every pool size (see the module docs);
    /// a one-thread pool runs the exact sequential code path.
    pub fn build_with(q: &Query, db: &Database, pool: ParPool) -> Result<MaterializedPlan<A>> {
        output_schema(q, &db.catalog())?;
        let mut builder = Builder {
            nodes: Vec::new(),
            scans: Vec::new(),
            pool,
            // Subtree fan-out budget: 2^depth leaves saturate the pool.
            par_depth: pool.threads().ilog2(),
        };
        let (root, schema) = builder.node(q, db)?;
        let rows = &builder.nodes[root].rows;
        let mut root_order: Vec<usize> = (0..rows.tuples.len()).collect();
        root_order.sort_by(|&i, &j| rows.tuples[i].cmp(&rows.tuples[j]));
        let mut root_index = TupleSlotMap::with_capacity(rows.tuples.len());
        for (slot, t) in rows.tuples.iter().enumerate() {
            root_index.insert(t, slot);
        }
        let deltas = vec![NodeDelta::default(); builder.nodes.len()];
        Ok(MaterializedPlan {
            nodes: builder.nodes,
            root,
            schema,
            scans: builder.scans,
            root_order,
            root_index,
            deltas,
        })
    }

    /// The view's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples currently in the view.
    pub fn len(&self) -> usize {
        self.nodes[self.root].rows.alive_count
    }

    /// Whether the view is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the current view in sorted tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &A)> {
        let rows = &self.nodes[self.root].rows;
        self.root_order
            .iter()
            .filter(|&&s| rows.alive[s])
            .map(move |&s| (&*rows.tuples[s], &rows.annots[s]))
    }

    /// The current annotation of `t`, if `t` is (still) in the view.
    pub fn annotation_of(&self, t: &Tuple) -> Option<&A> {
        let rows = &self.nodes[self.root].rows;
        self.root_index
            .get(t, &rows.tuples)
            .filter(|&s| rows.alive[s])
            .map(|s| &rows.annots[s])
    }

    /// Whether `t` is (still) in the view.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.annotation_of(t).is_some()
    }

    /// Clone the current view into a sorted [`Annotated`] — what a fresh
    /// [`crate::engine::eval_annotated`] of `Q` over the deleted-from
    /// database would return (up to source-tuple renumbering inside the
    /// annotations: the plan keeps the *original* [`Tid`]s).
    pub fn snapshot(&self) -> Annotated<A> {
        let mut tuples = Vec::with_capacity(self.len());
        let mut annots = Vec::with_capacity(self.len());
        for (t, a) in self.iter() {
            tuples.push(t.clone());
            annots.push(a.clone());
        }
        Annotated::from_sorted_parts(self.schema.clone(), tuples, annots)
    }

    /// Consume the plan into its current sorted output without cloning the
    /// root rows — the one-shot evaluation path
    /// ([`crate::engine::eval_annotated`] is exactly build + this).
    pub fn into_annotated(mut self) -> Annotated<A> {
        let rows = std::mem::replace(
            &mut self.nodes[self.root].rows,
            Rows::new(Vec::new(), Vec::new()),
        );
        // Release any tuple handles the index holds (legacy layout) so the
        // unwrap below can move tuples out instead of cloning (non-root
        // nodes may still share scan/select handles; those fall back to one
        // clone). `clear` keeps the map's allocation — this plan is being
        // consumed, but the same call is what the steady-state delta path
        // uses, so there is exactly one reset idiom.
        self.root_index.clear();
        // Zip, drop dead slots, sort by tuple, unzip: the sort moves whole
        // pairs, so no per-element Option take-dance is needed.
        let mut pairs: Vec<(Arc<Tuple>, A)> = rows
            .tuples
            .into_iter()
            .zip(rows.annots)
            .zip(rows.alive)
            .filter(|(_, alive)| *alive)
            .map(|(pair, _)| pair)
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut tuples = Vec::with_capacity(pairs.len());
        let mut annots = Vec::with_capacity(pairs.len());
        for (t, a) in pairs {
            tuples.push(Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone()));
            annots.push(a);
        }
        Annotated::from_sorted_parts(self.schema, tuples, annots)
    }

    /// Delete the source tuples named by `tids` and push the change through
    /// the pipeline, recomputing only affected buckets. Returns the view
    /// delta. Tids addressing relations the query never scans, rows outside
    /// the relation, rows already deleted, or repeats within `tids` are
    /// no-ops, so the call is idempotent and deletions are cumulative
    /// across calls. An empty or all-no-op slice returns an empty delta
    /// without walking the operator tree.
    pub fn delete_sources(&mut self, tids: &[Tid]) -> ViewDelta {
        if tids.is_empty() {
            return ViewDelta::default();
        }
        // Seed the scan kills first: repeated tids dedupe via the alive
        // check, and a batch with no effect skips the tree walk entirely.
        let mut seeds: Vec<(usize, usize)> = Vec::new();
        for tid in tids {
            for &(ref rel, node) in &self.scans {
                if *rel != tid.rel {
                    continue;
                }
                let rows = &mut self.nodes[node].rows;
                if tid.row < rows.alive.len() && rows.alive[tid.row] {
                    rows.kill(tid.row);
                    seeds.push((node, tid.row));
                }
            }
        }
        if seeds.is_empty() {
            return ViewDelta::default();
        }
        for d in &mut self.deltas {
            d.clear();
        }
        for (node, row) in seeds {
            self.deltas[node].removed.push(row);
        }
        for id in 0..self.nodes.len() {
            if !matches!(self.nodes[id].op, Op::Scan) {
                self.propagate(id);
            }
        }
        let rows = &self.nodes[self.root].rows;
        let delta = &self.deltas[self.root];
        let mut removed: Vec<Tuple> = delta
            .removed
            .iter()
            .map(|&s| (*rows.tuples[s]).clone())
            .collect();
        let mut changed: Vec<Tuple> = delta
            .changed
            .iter()
            .map(|&s| (*rows.tuples[s]).clone())
            .collect();
        removed.sort();
        changed.sort();
        ViewDelta { removed, changed }
    }

    /// Apply node `id`'s children's deltas to node `id` (children always
    /// have smaller indices, so split borrows are safe).
    fn propagate(&mut self, id: usize) {
        let (child_deltas, rest) = self.deltas.split_at_mut(id);
        let delta = &mut rest[0];
        let (child_nodes, rest) = self.nodes.split_at_mut(id);
        propagate_node(&mut rest[0], delta, child_nodes, child_deltas);
    }
}

/// Apply the children's settled deltas to one (non-scan) node, filling
/// `delta` with the node's own removed/changed slots. `nodes` and `deltas`
/// are indexed by absolute child id; the node itself need not be inside
/// them (the registry's level-parallel push extracts nodes out of the
/// arena while their children stay behind). This is the single propagation
/// kernel shared by [`MaterializedPlan::delete_sources`] and
/// `crate::registry::PlanRegistry::delete_sources`.
pub(crate) fn propagate_node<A: Annotation>(
    node: &mut Node<A>,
    delta: &mut NodeDelta,
    nodes: &[Node<A>],
    deltas: &[NodeDelta],
) {
    let Node { op, rows } = node;
    {
        let (child_nodes, child_deltas) = (nodes, deltas);
        match op {
            Op::Scan => unreachable!("scan deltas are seeded, not propagated"),
            Op::Select { child, out_of } => {
                let ch = &child_nodes[*child];
                let cd = &child_deltas[*child];
                for &c in &cd.removed {
                    if let Some(o) = out_of[c] {
                        rows.kill(o);
                        delta.removed.push(o);
                    }
                }
                for &c in &cd.changed {
                    if let Some(o) = out_of[c] {
                        rows.annots[o] = ch.rows.annots[c].clone();
                        delta.changed.push(o);
                    }
                }
            }
            Op::Project {
                child,
                positions,
                out_of,
                contributors,
            } => {
                let ch = &child_nodes[*child];
                let cd = &child_deltas[*child];
                // Reused scratch (returned empty below): steady-state
                // pushes must not grow a fresh Vec per node per turn.
                let mut affected = std::mem::take(&mut delta.affected);
                for &c in &cd.removed {
                    let o = out_of[c];
                    let list = &mut contributors[o];
                    let pos = list
                        .iter()
                        .position(|&x| x == c)
                        .expect("removed input slot was a live contributor");
                    list.remove(pos);
                    affected.push(o);
                }
                for &c in &cd.changed {
                    affected.push(out_of[c]);
                }
                affected.sort_unstable();
                affected.dedup();
                for &o in &affected {
                    let list = &contributors[o];
                    if list.is_empty() {
                        rows.kill(o);
                        delta.removed.push(o);
                        continue;
                    }
                    let mut acc = ch.rows.annots[list[0]].project(positions);
                    for &c in &list[1..] {
                        acc.merge(ch.rows.annots[c].project(positions));
                    }
                    acc.normalize();
                    if acc != rows.annots[o] {
                        rows.annots[o] = acc;
                        delta.changed.push(o);
                    }
                }
                affected.clear();
                delta.affected = affected;
            }
            Op::Join {
                left,
                right,
                layout,
                pair_of,
                left_outs,
                right_outs,
            } => {
                let (lch, rch) = (&child_nodes[*left], &child_nodes[*right]);
                let (ld, rd) = (&child_deltas[*left], &child_deltas[*right]);
                // Kills first: a pair whose other side also changed must
                // not be recomputed from a dead row.
                for &c in &ld.removed {
                    for &o in &left_outs[c] {
                        if rows.alive[o] {
                            rows.kill(o);
                            delta.removed.push(o);
                        }
                    }
                }
                for &c in &rd.removed {
                    for &o in &right_outs[c] {
                        if rows.alive[o] {
                            rows.kill(o);
                            delta.removed.push(o);
                        }
                    }
                }
                let mut affected = std::mem::take(&mut delta.affected);
                for &c in &ld.changed {
                    for &o in &left_outs[c] {
                        if rows.alive[o] {
                            affected.push(o);
                        }
                    }
                }
                for &c in &rd.changed {
                    for &o in &right_outs[c] {
                        if rows.alive[o] {
                            affected.push(o);
                        }
                    }
                }
                affected.sort_unstable();
                affected.dedup();
                for &o in &affected {
                    let (l, r) = pair_of[o];
                    let mut acc = A::join(&lch.rows.annots[l], &rch.rows.annots[r], layout);
                    acc.normalize();
                    if acc != rows.annots[o] {
                        rows.annots[o] = acc;
                        delta.changed.push(o);
                    }
                }
                affected.clear();
                delta.affected = affected;
            }
            Op::Union {
                left,
                right,
                positions,
                from_left,
                from_right,
                sources,
            } => {
                let (lch, rch) = (&child_nodes[*left], &child_nodes[*right]);
                let (ld, rd) = (&child_deltas[*left], &child_deltas[*right]);
                let mut affected = std::mem::take(&mut delta.affected);
                for &c in &ld.removed {
                    let o = from_left[c];
                    sources[o].0 = None;
                    affected.push(o);
                }
                for &c in &rd.removed {
                    let o = from_right[c];
                    sources[o].1 = None;
                    affected.push(o);
                }
                for &c in &ld.changed {
                    affected.push(from_left[c]);
                }
                for &c in &rd.changed {
                    affected.push(from_right[c]);
                }
                affected.sort_unstable();
                affected.dedup();
                for &o in &affected {
                    let mut acc = match sources[o] {
                        (None, None) => {
                            rows.kill(o);
                            delta.removed.push(o);
                            continue;
                        }
                        (Some(l), None) => lch.rows.annots[l].clone(),
                        (Some(l), Some(r)) => {
                            let mut acc = lch.rows.annots[l].clone();
                            acc.merge(rch.rows.annots[r].project(positions));
                            acc
                        }
                        (None, Some(r)) => rch.rows.annots[r].project(positions),
                    };
                    acc.normalize();
                    if acc != rows.annots[o] {
                        rows.annots[o] = acc;
                        delta.changed.push(o);
                    }
                }
                affected.clear();
                delta.affected = affected;
            }
        }
    }
}

/// Build-time accumulator: nodes in post-order plus the scan registry, and
/// the sharding policy ([`ParPool`] + remaining subtree fan-out budget).
struct Builder<A> {
    nodes: Vec<Node<A>>,
    scans: Vec<(RelName, usize)>,
    pool: ParPool,
    par_depth: u32,
}

/// ⊕-merge bucket accumulator shared by the project and union builds:
/// interned output tuples with contributor bookkeeping. The bucket index
/// is fingerprint-keyed (candidates verified against `tuples`), so a
/// derivation lookup hashes one `u64` instead of the tuple's values.
struct BucketAcc<A> {
    index: TupleSlotMap,
    tuples: Vec<Arc<Tuple>>,
    annots: Vec<A>,
}

impl<A: Annotation> BucketAcc<A> {
    fn with_capacity(n: usize) -> BucketAcc<A> {
        BucketAcc {
            index: TupleSlotMap::with_capacity(n),
            tuples: Vec::with_capacity(n),
            annots: Vec::with_capacity(n),
        }
    }

    /// Insert a derivation of `t`, ⊕-merging into an existing bucket.
    /// Returns the bucket slot.
    fn add(&mut self, t: Arc<Tuple>, a: A) -> usize {
        if let Some(o) = self.index.get(&t, &self.tuples) {
            self.annots[o].merge(a);
            o
        } else {
            let o = self.annots.len();
            self.index.insert(&t, o);
            self.tuples.push(t);
            self.annots.push(a);
            o
        }
    }

    /// Normalize every bucket (sharded over `pool`) and hand the rows over.
    fn into_rows(self, pool: ParPool) -> Rows<A> {
        let BucketAcc { tuples, annots, .. } = self;
        let annots = pool.par_map_owned(annots, BUILD_GRAIN, |mut a| {
            a.normalize();
            a
        });
        Rows::new(tuples, annots)
    }
}

/// Deterministic hash of a legacy join key, used only to pick a build
/// shard (the shard choice is invisible in the output; a fixed hasher
/// keeps runs reproducible). Hashes key content, like the seed did.
fn key_hash(key: &ContentKey<'_>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// The legacy (pre-interning) join build/probe: allocated `Vec<&Value>`
/// keys under SipHash over the key content (string bytes, not interned
/// ids — [`ContentKey`] restores the seed's cost model). Kept as the
/// honest baseline layout for `report_hotpath` and the differential
/// layout tests; emission order is identical to the fingerprint path.
#[allow(clippy::too_many_arguments)]
fn build_join_produced_legacy<A: Annotation>(
    lrows: &Rows<A>,
    l_keys: &[usize],
    rrows: &Rows<A>,
    r_keys: &[usize],
    layout: &JoinLayout,
    shards: usize,
    pool: ParPool,
) -> Vec<(usize, usize, Arc<Tuple>, A)> {
    fn key_of<'a>(t: &'a Tuple, keys: &[usize]) -> ContentKey<'a> {
        ContentKey(keys.iter().map(|&i| t.get(i)).collect())
    }
    let tables: Vec<HashMap<ContentKey, Vec<usize>>> = if shards == 1 {
        let mut table: HashMap<ContentKey, Vec<usize>> = HashMap::with_capacity(rrows.tuples.len());
        for (idx, t) in rrows.tuples.iter().enumerate() {
            table.entry(key_of(t, r_keys)).or_default().push(idx);
        }
        vec![table]
    } else {
        // One parallel pass buckets row indices per shard (range-order
        // concat keeps each shard's rows ascending), so every shard then
        // scans only its own rows — O(|R|) partition work total, not
        // O(shards · |R|).
        let bucketed: Vec<Vec<Vec<usize>>> =
            pool.par_ranges(rrows.tuples.len(), BUILD_GRAIN, |range| {
                let mut local: Vec<Vec<usize>> = vec![Vec::new(); shards];
                for i in range {
                    let h = key_hash(&key_of(&rrows.tuples[i], r_keys));
                    local[(h % shards as u64) as usize].push(i);
                }
                vec![local]
            });
        let mut shard_rows: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for local in bucketed {
            for (s, rows) in local.into_iter().enumerate() {
                shard_rows[s].extend(rows);
            }
        }
        pool.par_indices(shards, |s| {
            let mut table: HashMap<ContentKey, Vec<usize>> =
                HashMap::with_capacity(shard_rows[s].len());
            for &idx in &shard_rows[s] {
                table
                    .entry(key_of(&rrows.tuples[idx], r_keys))
                    .or_default()
                    .push(idx);
            }
            table
        })
    };
    // Probe over left-row chunks; chunk-order concatenation reproduces the
    // sequential emission order (left rows ascending, per-key matches in
    // build order).
    pool.par_ranges(lrows.tuples.len(), BUILD_GRAIN, |range| {
        let mut out = Vec::new();
        for li in range {
            let lt = &lrows.tuples[li];
            let key = key_of(lt, l_keys);
            let table = if shards == 1 {
                &tables[0]
            } else {
                &tables[(key_hash(&key) % shards as u64) as usize]
            };
            let Some(matches) = table.get(&key) else {
                continue;
            };
            for &ri in matches {
                let mut a = A::join(&lrows.annots[li], &rrows.annots[ri], layout);
                a.normalize();
                out.push((
                    li,
                    ri,
                    Arc::new(lt.join_concat(&rrows.tuples[ri], &layout.right_extra)),
                    a,
                ));
            }
        }
        out
    })
}

/// The fingerprinted join build/probe: tables keyed by `u64` key
/// fingerprints through an identity-hash [`FpMap`] — no per-row key
/// allocation, no byte-walking hash. Candidates sharing a fingerprint are
/// verified against the actual key values before they join (an integer
/// compare per attribute under interning), so collisions — including the
/// forced-collision test mode — only cost time, never correctness, and the
/// sequential emission order is preserved exactly.
#[allow(clippy::too_many_arguments)]
fn build_join_produced_fp<A: Annotation>(
    mode: LayoutMode,
    lrows: &Rows<A>,
    l_keys: &[usize],
    rrows: &Rows<A>,
    r_keys: &[usize],
    layout: &JoinLayout,
    shards: usize,
    pool: ParPool,
) -> Vec<(usize, usize, Arc<Tuple>, A)> {
    let tables: Vec<FpMap<Bucket<usize>>> = if shards == 1 {
        let mut table: FpMap<Bucket<usize>> =
            FpMap::with_capacity_and_hasher(rrows.tuples.len(), Default::default());
        for (idx, t) in rrows.tuples.iter().enumerate() {
            table
                .entry(mode.key_fp(t, r_keys))
                .and_modify(|b| b.push(idx))
                .or_insert(Bucket::One(idx));
        }
        vec![table]
    } else {
        // Same O(|R|) partition-then-build as the legacy path, but the
        // shard of a row is its key fingerprint — computed once and reused
        // as the table key.
        let bucketed: Vec<Vec<Vec<(u64, usize)>>> =
            pool.par_ranges(rrows.tuples.len(), BUILD_GRAIN, |range| {
                let mut local: Vec<Vec<(u64, usize)>> = vec![Vec::new(); shards];
                for i in range {
                    let fp = mode.key_fp(&rrows.tuples[i], r_keys);
                    local[(fp % shards as u64) as usize].push((fp, i));
                }
                vec![local]
            });
        let mut shard_rows: Vec<Vec<(u64, usize)>> = vec![Vec::new(); shards];
        for local in bucketed {
            for (s, rows) in local.into_iter().enumerate() {
                shard_rows[s].extend(rows);
            }
        }
        pool.par_indices(shards, |s| {
            let mut table: FpMap<Bucket<usize>> =
                FpMap::with_capacity_and_hasher(shard_rows[s].len(), Default::default());
            for &(fp, idx) in &shard_rows[s] {
                table
                    .entry(fp)
                    .and_modify(|b| b.push(idx))
                    .or_insert(Bucket::One(idx));
            }
            table
        })
    };
    pool.par_ranges(lrows.tuples.len(), BUILD_GRAIN, |range| {
        let mut out = Vec::new();
        for li in range {
            let lt = &lrows.tuples[li];
            let fp = mode.key_fp(lt, l_keys);
            let table = if shards == 1 {
                &tables[0]
            } else {
                &tables[(fp % shards as u64) as usize]
            };
            let Some(matches) = table.get(&fp) else {
                continue;
            };
            for &ri in matches.as_slice() {
                let rt = &rrows.tuples[ri];
                let keys_match = l_keys
                    .iter()
                    .zip(r_keys)
                    .all(|(&lk, &rk)| lt.get(lk) == rt.get(rk));
                if !keys_match {
                    continue;
                }
                let mut a = A::join(&lrows.annots[li], &rrows.annots[ri], layout);
                a.normalize();
                out.push((li, ri, Arc::new(lt.join_concat(rt, &layout.right_extra)), a));
            }
        }
        out
    })
}

/// Natural-join bookkeeping off the two operand schemas: the key positions
/// on each side (shared attributes, left-schema order) and the annotation
/// [`JoinLayout`]. Shared by the tree builder and the registry.
pub(crate) fn join_keys_and_layout(
    ls: &Schema,
    rs: &Schema,
) -> (Vec<usize>, Vec<usize>, JoinLayout) {
    let shared: Vec<Attr> = ls.shared_with(rs);
    let l_keys: Vec<usize> = shared
        .iter()
        .map(|a| ls.index_of(a).expect("shared attr"))
        .collect();
    let r_keys: Vec<usize> = shared
        .iter()
        .map(|a| rs.index_of(a).expect("shared attr"))
        .collect();
    let layout = JoinLayout {
        left_arity: ls.arity(),
        merge_from_right: ls.attrs().iter().map(|a| rs.index_of(a)).collect(),
        right_extra: rs
            .attrs()
            .iter()
            .enumerate()
            .filter(|(_, a)| !ls.contains(a))
            .map(|(i, _)| i)
            .collect(),
    };
    (l_keys, r_keys, layout)
}

/// Seed a scan node's rows from a base relation: slot `i` ↔ base row `i`,
/// annotations from [`Annotation::from_scan`]. One parallel sweep produces
/// both columns (two passes would double the spawn/join rounds on this hot
/// path).
pub(crate) fn build_scan_rows<A: Annotation>(
    r: &crate::relation::Relation,
    pool: ParPool,
) -> Rows<A> {
    let schema = r.schema();
    // Shared handles off the relation's cache: a refcount bump per row
    // instead of a deep tuple clone per plan build. The legacy layout
    // keeps the pre-overhaul behavior — a fresh `Arc::new(clone)` per
    // row on every build — which is what the cache replaced.
    let tuples: Vec<Arc<Tuple>> = if LayoutMode::current().is_legacy() {
        r.tuples().iter().map(|t| Arc::new(t.clone())).collect()
    } else {
        r.shared_tuples().to_vec()
    };
    let annots: Vec<A> = pool.par_ranges(tuples.len(), BUILD_GRAIN, |range| {
        range
            .map(|row| {
                A::from_scan(
                    Tid {
                        rel: r.name().clone(),
                        row,
                    },
                    schema,
                )
            })
            .collect()
    });
    Rows::new(tuples, annots)
}

/// Build a select node over its child's rows (`child` is the child's plan
/// id, recorded in the op). Predicate evaluation shards over the pool;
/// errors surface in row order during the sequential assembly.
pub(crate) fn build_select_node<A: Annotation>(
    child: usize,
    ch: &Rows<A>,
    schema: &Schema,
    pred: &crate::predicate::Pred,
    pool: ParPool,
) -> Result<(Op, Rows<A>)> {
    let verdicts: Vec<Result<bool>> = pool.par_ranges(ch.tuples.len(), BUILD_GRAIN, |range| {
        range.map(|i| pred.eval(schema, &ch.tuples[i])).collect()
    });
    let mut out_of = Vec::with_capacity(ch.tuples.len());
    let mut kept: Vec<usize> = Vec::new();
    for (i, verdict) in verdicts.into_iter().enumerate() {
        if verdict? {
            out_of.push(Some(kept.len()));
            kept.push(i);
        } else {
            out_of.push(None);
        }
    }
    let tuples: Vec<Arc<Tuple>> = kept.iter().map(|&i| ch.tuples[i].clone()).collect();
    let annots: Vec<A> = pool.par_ranges(kept.len(), BUILD_GRAIN, |range| {
        range.map(|k| ch.annots[kept[k]].clone()).collect()
    });
    Ok((Op::Select { child, out_of }, Rows::new(tuples, annots)))
}

/// Build a project node over its child's rows: parallel per-row
/// projection, sequential ⊕-intern in derivation order (so every bucket
/// merges in exactly the one-shot walk's order), parallel normalization.
pub(crate) fn build_project_node<A: Annotation>(
    child: usize,
    ch: &Rows<A>,
    positions: Vec<usize>,
    pool: ParPool,
) -> (Op, Rows<A>) {
    let projected: Vec<(Arc<Tuple>, A)> = pool.par_ranges(ch.tuples.len(), BUILD_GRAIN, |range| {
        range
            .map(|c| {
                (
                    Arc::new(ch.tuples[c].project_positions(&positions)),
                    ch.annots[c].project(&positions),
                )
            })
            .collect()
    });
    let mut acc = BucketAcc::with_capacity(projected.len());
    let mut out_of = Vec::with_capacity(projected.len());
    for (t, a) in projected {
        out_of.push(acc.add(t, a));
    }
    let mut contributors = vec![Vec::new(); acc.annots.len()];
    for (c, &o) in out_of.iter().enumerate() {
        contributors[o].push(c);
    }
    let rows = acc.into_rows(pool);
    (
        Op::Project {
            child,
            positions,
            out_of,
            contributors,
        },
        rows,
    )
}

/// Build a join node over its operands' rows. Build on the right, probe
/// with the left; the retained state is the pair map plus the reverse
/// adjacency, not the table itself. Tables key on `u64` key fingerprints
/// (collision-verified; [`LayoutMode::Legacy`] keeps the borrowed-slice
/// layout as the baseline). The build shards by key fingerprint/hash
/// (shard `s` owns the keys landing on it, so per-key row order stays
/// ascending); one shard is the exact sequential build. Each side arrives
/// as `(node id, rows, key positions)`.
pub(crate) fn build_join_node<A: Annotation>(
    left_side: (usize, &Rows<A>, &[usize]),
    right_side: (usize, &Rows<A>, &[usize]),
    layout: JoinLayout,
    pool: ParPool,
) -> (Op, Rows<A>) {
    let (left, lrows, l_keys) = left_side;
    let (right, rrows, r_keys) = right_side;
    let mode = LayoutMode::current();
    let shards = if rrows.tuples.len() >= 2 * BUILD_GRAIN {
        pool.threads()
    } else {
        1
    };
    let produced: Vec<(usize, usize, Arc<Tuple>, A)> = if mode.is_legacy() {
        build_join_produced_legacy(lrows, l_keys, rrows, r_keys, &layout, shards, pool)
    } else {
        build_join_produced_fp(mode, lrows, l_keys, rrows, r_keys, &layout, shards, pool)
    };
    // Sequential assembly: stable output slots in emission order. The
    // joined tuple embeds the left tuple and determines the right one, and
    // node outputs are sets — each output has exactly one (l, r) pair.
    let mut tuples = Vec::with_capacity(produced.len());
    let mut annots: Vec<A> = Vec::with_capacity(produced.len());
    let mut pair_of = Vec::with_capacity(produced.len());
    let mut left_outs = vec![Vec::new(); lrows.tuples.len()];
    let mut right_outs = vec![Vec::new(); rrows.tuples.len()];
    for (li, ri, t, a) in produced {
        let o = tuples.len();
        tuples.push(t);
        annots.push(a);
        pair_of.push((li, ri));
        left_outs[li].push(o);
        right_outs[ri].push(o);
    }
    debug_assert_eq!(
        tuples
            .iter()
            .map(|t| &**t)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        tuples.len(),
        "join outputs are distinct: one derivation per output"
    );
    (
        Op::Join {
            left,
            right,
            layout,
            pair_of,
            left_outs,
            right_outs,
        },
        Rows::new(tuples, annots),
    )
}

/// Build a union node over its operands' rows: parallel left passthrough
/// and right alignment (`positions` maps the right schema onto the left
/// attribute order), sequential ⊕-intern left branch first, parallel
/// normalization.
pub(crate) fn build_union_node<A: Annotation>(
    left: usize,
    right: usize,
    lrows: &Rows<A>,
    rrows: &Rows<A>,
    positions: Vec<usize>,
    pool: ParPool,
) -> (Op, Rows<A>) {
    let left_in: Vec<(Arc<Tuple>, A)> = pool.par_ranges(lrows.tuples.len(), BUILD_GRAIN, |range| {
        range
            .map(|i| (lrows.tuples[i].clone(), lrows.annots[i].clone()))
            .collect()
    });
    let right_in: Vec<(Arc<Tuple>, A)> =
        pool.par_ranges(rrows.tuples.len(), BUILD_GRAIN, |range| {
            range
                .map(|i| {
                    (
                        Arc::new(rrows.tuples[i].project_positions(&positions)),
                        rrows.annots[i].project(&positions),
                    )
                })
                .collect()
        });
    let mut acc = BucketAcc::with_capacity(left_in.len() + right_in.len());
    let mut from_left = Vec::with_capacity(left_in.len());
    for (t, a) in left_in {
        from_left.push(acc.add(t, a));
    }
    let mut from_right = Vec::with_capacity(right_in.len());
    for (t, a) in right_in {
        from_right.push(acc.add(t, a));
    }
    let mut sources = vec![(None, None); acc.annots.len()];
    for (c, &o) in from_left.iter().enumerate() {
        sources[o].0 = Some(c);
    }
    for (c, &o) in from_right.iter().enumerate() {
        sources[o].1 = Some(c);
    }
    let rows = acc.into_rows(pool);
    (
        Op::Union {
            left,
            right,
            positions,
            from_left,
            from_right,
            sources,
        },
        rows,
    )
}

impl<A: Annotation> Builder<A> {
    fn push(&mut self, op: Op, rows: Rows<A>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node { op, rows });
        id
    }

    /// Build both children of a binary operator — in parallel (independent
    /// sub-builders, spliced back left-then-right so node ids match the
    /// sequential build exactly) while the fan-out budget lasts.
    fn child_pair(
        &mut self,
        left: &Query,
        right: &Query,
        db: &Database,
    ) -> Result<((usize, Schema), (usize, Schema))> {
        if self.pool.is_sequential() || self.par_depth == 0 {
            let l = self.node(left, db)?;
            let r = self.node(right, db)?;
            return Ok((l, r));
        }
        // Each side gets half the thread budget: at fan-out depth `d` up
        // to 2^d subtrees build concurrently, so halving per split keeps
        // the aggregate number of worker threads at ~`threads` instead of
        // `threads²` (the helpers spawn per call; an unbudgeted nest
        // would oversubscribe the machine on exactly this cold path).
        let sub = |this: &Builder<A>| Builder {
            nodes: Vec::new(),
            scans: Vec::new(),
            pool: ParPool::new(this.pool.threads().div_ceil(2)),
            par_depth: this.par_depth - 1,
        };
        let mut lb = sub(self);
        let mut rb = sub(self);
        let ((lres, lb), (rres, rb)) = self.pool.join2(
            move || {
                let res = lb.node(left, db);
                (res, lb)
            },
            move || {
                let res = rb.node(right, db);
                (res, rb)
            },
        );
        let (lroot, lschema) = lres?;
        let (rroot, rschema) = rres?;
        let loff = self.splice(lb);
        let roff = self.splice(rb);
        Ok(((lroot + loff, lschema), (rroot + roff, rschema)))
    }

    /// Append a sub-builder's nodes after this builder's, shifting child
    /// node ids (slot-level state needs no translation — slots are local
    /// to each node). Returns the id offset.
    fn splice(&mut self, sub: Builder<A>) -> usize {
        let off = self.nodes.len();
        for mut node in sub.nodes {
            match &mut node.op {
                Op::Scan => {}
                Op::Select { child, .. } | Op::Project { child, .. } => *child += off,
                Op::Join { left, right, .. } | Op::Union { left, right, .. } => {
                    *left += off;
                    *right += off;
                }
            }
            self.nodes.push(node);
        }
        for (rel, id) in sub.scans {
            self.scans.push((rel, id + off));
        }
        off
    }

    /// Build the plan node for `q`, returning its index and schema.
    /// Children are pushed before parents, so indices are in post-order.
    /// The per-operator heavy lifting lives in the free `build_*`
    /// functions shared with `crate::registry::PlanRegistry`.
    fn node(&mut self, q: &Query, db: &Database) -> Result<(usize, Schema)> {
        let pool = self.pool;
        match q {
            Query::Scan(rel) => {
                let r = db.require(rel)?;
                let schema = r.schema().clone();
                let rows = build_scan_rows::<A>(r, pool);
                let id = self.push(Op::Scan, rows);
                self.scans.push((rel.clone(), id));
                Ok((id, schema))
            }
            Query::Select { input, pred } => {
                let (child, schema) = self.node(input, db)?;
                let (op, rows) =
                    build_select_node(child, &self.nodes[child].rows, &schema, pred, pool)?;
                let id = self.push(op, rows);
                Ok((id, schema))
            }
            Query::Project { input, attrs } => {
                let (child, in_schema) = self.node(input, db)?;
                let schema = in_schema.project(attrs)?;
                let positions = in_schema.positions_of(attrs)?;
                let (op, rows) =
                    build_project_node(child, &self.nodes[child].rows, positions, pool);
                let id = self.push(op, rows);
                Ok((id, schema))
            }
            Query::Join { left, right } => {
                let ((lid, ls), (rid, rs)) = self.child_pair(left, right, db)?;
                let schema = ls.join_with(&rs);
                let (l_keys, r_keys, layout) = join_keys_and_layout(&ls, &rs);
                let (op, rows) = build_join_node(
                    (lid, &self.nodes[lid].rows, &l_keys),
                    (rid, &self.nodes[rid].rows, &r_keys),
                    layout,
                    pool,
                );
                let id = self.push(op, rows);
                Ok((id, schema))
            }
            Query::Union { left, right } => {
                let ((lid, ls), (rid, rs)) = self.child_pair(left, right, db)?;
                // Align the right branch to the left branch's attribute
                // order (a bijection, so aligned right tuples stay distinct).
                let positions = rs.positions_of(ls.attrs())?;
                let (op, rows) = build_union_node(
                    lid,
                    rid,
                    &self.nodes[lid].rows,
                    &self.nodes[rid].rows,
                    positions,
                    pool,
                );
                let id = self.push(op, rows);
                Ok((id, ls))
            }
            Query::Rename { input, mapping } => {
                // Renaming moves no tuples and no annotations — collapse to
                // the child and relabel the schema (the paper's rule keeps
                // original names inside where-provenance locations).
                let (child, schema) = self.node(input, db)?;
                Ok((child, schema.rename(mapping)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{eval_annotated, Unit};
    use crate::parser::{parse_database, parse_query};
    use crate::tuple::tuple;
    use std::collections::BTreeSet;

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    /// Maintained output equals a fresh evaluation of the remaining
    /// database, tuple-for-tuple (`Unit` carries no tids, so no
    /// renumbering caveat applies).
    fn assert_tracks_fresh(q: &Query, db: &Database, deletions: &[Tid]) {
        let mut plan = MaterializedPlan::<Unit>::build(q, db).unwrap();
        let mut deleted = BTreeSet::new();
        for tid in deletions {
            plan.delete_sources(std::slice::from_ref(tid));
            deleted.insert(tid.clone());
            let fresh = eval_annotated::<Unit>(q, &db.without(&deleted)).unwrap();
            let maintained: Vec<Tuple> = plan.iter().map(|(t, _)| t.clone()).collect();
            assert_eq!(
                maintained,
                fresh.tuples().to_vec(),
                "after deleting {deleted:?}"
            );
            assert_eq!(plan.len(), fresh.len());
        }
    }

    #[test]
    fn build_matches_eval_annotated() {
        let (q, db) = fixture();
        let plan = MaterializedPlan::<Unit>::build(&q, &db).unwrap();
        let fresh = eval_annotated::<Unit>(&q, &db).unwrap();
        assert_eq!(plan.snapshot().tuples(), fresh.tuples());
        assert_eq!(plan.schema(), &fresh.schema);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let (q, db) = fixture();
        let seq = MaterializedPlan::<Unit>::build_with(&q, &db, ParPool::sequential()).unwrap();
        for threads in [2, 4] {
            let par = MaterializedPlan::<Unit>::build_with(&q, &db, ParPool::new(threads)).unwrap();
            assert_eq!(par.snapshot().tuples(), seq.snapshot().tuples());
            assert_eq!(par.len(), seq.len());
        }
    }

    #[test]
    fn deletions_track_fresh_eval_per_operator() {
        let (_, db) = fixture();
        let all: Vec<Tid> = db.all_tids().collect();
        for text in [
            "scan UserGroup",
            "select(scan UserGroup, user = 'bob')",
            "project(scan UserGroup, [grp])",
            "join(scan UserGroup, scan GroupFile)",
            "project(join(scan UserGroup, scan GroupFile), [user, file])",
            "union(scan UserGroup, rename(scan GroupFile, {grp -> user, file -> grp}))",
            "rename(scan UserGroup, {user -> member})",
        ] {
            let q = parse_query(text).unwrap();
            assert_tracks_fresh(&q, &db, &all);
        }
    }

    #[test]
    fn delta_reports_removed_and_spares_survivors() {
        let (q, db) = fixture();
        let mut plan = MaterializedPlan::<Unit>::build(&q, &db).unwrap();
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        let delta = plan.delete_sources(&[dev]);
        // (bob, main) loses its only witness; (bob, report) survives via
        // staff and Unit carries no annotation to change.
        assert_eq!(delta.removed, vec![tuple(["bob", "main"])]);
        assert!(delta.changed.is_empty());
        assert!(plan.contains(&tuple(["bob", "report"])));
        assert!(!plan.contains(&tuple(["bob", "main"])));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn deletions_are_idempotent_and_unknown_tids_are_noops() {
        let (q, db) = fixture();
        let mut plan = MaterializedPlan::<Unit>::build(&q, &db).unwrap();
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        assert!(!plan.delete_sources(std::slice::from_ref(&dev)).is_empty());
        // Again, plus a tid for an unscanned relation and an out-of-range row.
        let delta = plan.delete_sources(&[dev, Tid::new("Nope", 0), Tid::new("UserGroup", 99)]);
        assert!(delta.is_empty());
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn self_join_routes_deletions_to_both_scans() {
        let db = parse_database("relation R(A, B) { (a, b1), (a, b2) }").unwrap();
        let q = Query::scan("R").project(["A"]).join(Query::scan("R"));
        let all: Vec<Tid> = db.all_tids().collect();
        assert_tracks_fresh(&q, &db, &all);
    }

    #[test]
    fn emptying_the_source_empties_the_view() {
        let (q, db) = fixture();
        let mut plan = MaterializedPlan::<Unit>::build(&q, &db).unwrap();
        let all: Vec<Tid> = db.all_tids().collect();
        plan.delete_sources(&all);
        assert!(plan.is_empty());
        assert_eq!(plan.iter().count(), 0);
        assert!(plan.snapshot().is_empty());
    }

    #[test]
    fn type_errors_surface_before_building() {
        let (_, db) = fixture();
        assert!(MaterializedPlan::<Unit>::build(&Query::scan("Nope"), &db).is_err());
        let q = Query::scan("UserGroup").project(["nope"]);
        assert!(MaterializedPlan::<Unit>::build(&q, &db).is_err());
        // The parallel subtree path surfaces child errors too.
        let q = Query::scan("UserGroup").join(Query::scan("Nope"));
        assert!(MaterializedPlan::<Unit>::build_with(&q, &db, ParPool::new(4)).is_err());
    }
}
