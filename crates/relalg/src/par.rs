//! The **scoped-thread parallel runtime** — a small, dependency-free pool
//! abstraction on [`std::thread::scope`] shared by every hot path that
//! shards cleanly.
//!
//! The repository's two serving workloads — annotated plan construction
//! ([`crate::plan::MaterializedPlan::build_with`]) and batched deletion
//! solving (`dap-core`'s dichotomy dispatchers) — are embarrassingly
//! parallel at well-defined seams: operator subtrees are independent, join
//! build/probe shards by key hash, ⊕-bucket normalization is per-bucket,
//! and batched targets solve over per-thread stamped indexes. [`ParPool`]
//! provides exactly the helpers those seams need and nothing more:
//!
//! * [`ParPool::par_ranges`] — *static* contiguous sharding of an index
//!   space, results concatenated in range order (for uniform per-item
//!   work: scans, probes, bucket normalization);
//! * [`ParPool::par_indices`] / [`ParPool::par_map`] — *dynamic*
//!   work-stealing over an index space, results restored to index order
//!   (for skewed per-item work: solver targets, branch-and-bound
//!   branches);
//! * [`ParPool::par_map_owned`] — static sharding that moves values
//!   through the mapper (bucket normalization without a clone);
//! * [`ParPool::join2`] — two independent closures in parallel (operator
//!   subtree builds).
//!
//! ## Determinism
//!
//! Every helper returns results in the **same order the sequential loop
//! would produce them**, so parallel callers are bit-identical to their
//! sequential counterparts as long as the per-item work is itself
//! deterministic (all of ours is). A pool with one thread never spawns:
//! each helper degrades to the exact sequential loop, which is what the
//! `DAP_THREADS=1` escape hatch and the differential property tests in
//! `tests/prop_parallel.rs` rely on.
//!
//! ## Sizing
//!
//! [`ParPool::auto`] (and the process-wide [`ParPool::global`]) default to
//! [`std::thread::available_parallelism`], overridable with the
//! `DAP_THREADS` environment variable (`0` or unset means auto). Threads
//! are scoped — spawned per call and joined before the helper returns — so
//! the pool is a *policy* (how many ways to shard), not a set of live
//! threads; there is nothing to shut down and no queue to poison.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Sharding policy for the parallel helpers: how many worker threads each
/// call may use. Copyable and stateless — see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParPool {
    threads: usize,
}

/// Fewest items per shard before a helper bothers spawning: below this the
/// spawn/join overhead dominates any conceivable per-item win.
const MIN_ITEMS_PER_SHARD: usize = 16;

impl ParPool {
    /// A pool using exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ParPool {
        ParPool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: every helper runs its exact sequential
    /// code path inline, spawning nothing.
    pub fn sequential() -> ParPool {
        ParPool::new(1)
    }

    /// The default pool size: `DAP_THREADS` if set to a positive integer,
    /// otherwise [`std::thread::available_parallelism`] (`DAP_THREADS=0`
    /// explicitly requests auto). A malformed value is reported on stderr
    /// and treated as auto — silently ignoring a typo would defeat the
    /// `DAP_THREADS=1` sequential escape hatch.
    pub fn auto() -> ParPool {
        let from_env =
            std::env::var("DAP_THREADS")
                .ok()
                .and_then(|v| match v.trim().parse::<usize>() {
                    Ok(n) => Some(n).filter(|&n| n > 0),
                    Err(_) => {
                        eprintln!(
                            "warning: ignoring unparsable DAP_THREADS={v:?} \
                         (expected a non-negative integer; using auto)"
                        );
                        None
                    }
                });
        let threads = from_env.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ParPool::new(threads)
    }

    /// The process-wide default pool, resolved once from [`ParPool::auto`].
    pub fn global() -> ParPool {
        static GLOBAL: OnceLock<ParPool> = OnceLock::new();
        *GLOBAL.get_or_init(ParPool::auto)
    }

    /// Number of worker threads this pool shards across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Split `0..n` into contiguous ranges, run `f` on each range in
    /// parallel, and concatenate the per-range outputs **in range order**
    /// — exactly the output a single `f(0..n)` call would produce when `f`
    /// maps each index independently. `grain` is the minimum range length
    /// worth sharding; small inputs run inline as one range.
    pub fn par_ranges<R, F>(&self, n: usize, grain: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> Vec<R> + Sync,
    {
        let grain = grain.max(MIN_ITEMS_PER_SHARD);
        let shards = (n / grain).clamp(1, self.threads);
        if shards == 1 {
            return f(0..n);
        }
        let ranges: Vec<Range<usize>> = (0..shards)
            .map(|s| (s * n / shards)..((s + 1) * n / shards))
            .collect();
        let mut chunks: Vec<Vec<R>> = thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(|| f(range)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in &mut chunks {
            out.append(chunk);
        }
        out
    }

    /// Run `f(i)` for every `i in 0..n` with **dynamic** scheduling (an
    /// atomic work counter, so skewed per-item costs balance), returning
    /// the results in index order. Use for coarse, uneven tasks — solver
    /// targets, search branches; [`ParPool::par_ranges`] is cheaper for
    /// uniform work.
    pub fn par_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let per_thread: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        let mut tagged: Vec<(usize, R)> = per_thread.into_iter().flatten().collect();
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// [`ParPool::par_indices`] over a slice: `f` applied to every item,
    /// results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_indices(items.len(), |i| f(&items[i]))
    }

    /// Map `f` over an owned vector with static sharding (each worker owns
    /// its chunk — no clones), results in input order.
    pub fn par_map_owned<T, R, F>(&self, items: Vec<T>, grain: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let grain = grain.max(MIN_ITEMS_PER_SHARD);
        let shards = (n / grain).clamp(1, self.threads);
        if shards == 1 {
            return items.into_iter().map(f).collect();
        }
        // Split into owned chunks, front to back.
        let mut rest = items;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let remaining_shards = shards - s;
            let take = rest.len().div_ceil(remaining_shards);
            let tail = rest.split_off(take);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        let mut mapped: Vec<Vec<R>> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(|| chunk.into_iter().map(&f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in &mut mapped {
            out.append(chunk);
        }
        out
    }

    /// Run a handful of **coarse, independent tasks** with static sharding
    /// and *no grain floor* — unlike [`ParPool::par_map_owned`], which
    /// refuses to spawn below a minimum item count per shard.
    /// Each worker owns a contiguous chunk of tasks; results come back in
    /// input order. Use when each task is itself substantial (one DAG
    /// node's delta propagation, one operator subtree) so that even two or
    /// three tasks are worth a thread each; the fine-grained helpers are
    /// cheaper for per-row work.
    pub fn par_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = tasks.len();
        let shards = self.threads.min(n);
        if shards <= 1 {
            return tasks.into_iter().map(f).collect();
        }
        // Split into owned chunks, front to back (chunk sizes differ by at
        // most one, so no worker idles while another holds two tasks).
        let mut rest = tasks;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let remaining_shards = shards - s;
            let take = rest.len().div_ceil(remaining_shards);
            let tail = rest.split_off(take);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        let mut mapped: Vec<Vec<R>> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(|| chunk.into_iter().map(&f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in &mut mapped {
            out.append(chunk);
        }
        out
    }

    /// Run two independent closures, in parallel when the pool has more
    /// than one thread (the second runs on the calling thread).
    pub fn join2<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads == 1 {
            return (fa(), fb());
        }
        thread::scope(|scope| {
            let ha = scope.spawn(fa);
            let b = fb();
            (ha.join().expect("parallel worker panicked"), b)
        })
    }
}

impl Default for ParPool {
    fn default() -> ParPool {
        ParPool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_never_shards() {
        let pool = ParPool::sequential();
        assert!(pool.is_sequential());
        assert_eq!(pool.threads(), 1);
        let out = pool.par_ranges(100, 1, |r| r.map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_ranges_matches_sequential_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ParPool::new(threads);
            let out = pool.par_ranges(1000, 1, |r| r.map(|i| i + 1).collect());
            assert_eq!(out, (0..1000).map(|i| i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_indices_restores_index_order() {
        for threads in [1, 2, 5] {
            let pool = ParPool::new(threads);
            let out = pool.par_indices(257, |i| i * i);
            assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_and_owned_agree() {
        let items: Vec<usize> = (0..300).collect();
        for threads in [1, 2, 4] {
            let pool = ParPool::new(threads);
            let by_ref = pool.par_map(&items, |&i| i + 7);
            let by_val = pool.par_map_owned(items.clone(), 1, |i| i + 7);
            assert_eq!(by_ref, by_val);
        }
    }

    #[test]
    fn par_tasks_preserves_input_order_below_the_grain_floor() {
        // Two tasks is below MIN_ITEMS_PER_SHARD — par_map_owned would run
        // them inline, par_tasks spawns anyway.
        for threads in [1, 2, 3, 8] {
            let pool = ParPool::new(threads);
            for n in [0, 1, 2, 3, 7] {
                let tasks: Vec<usize> = (0..n).collect();
                let out = pool.par_tasks(tasks, |i| i * 10);
                assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn join2_returns_both_sides() {
        for threads in [1, 2] {
            let pool = ParPool::new(threads);
            let (a, b) = pool.join2(|| 1 + 1, || "two");
            assert_eq!((a, b), (2, "two"));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParPool::new(0).threads(), 1);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let pool = ParPool::new(4);
        assert!(pool.par_indices(0, |i| i).is_empty());
        assert!(pool
            .par_ranges(0, 1, |r| r.collect::<Vec<usize>>())
            .is_empty());
        assert!(pool.par_map_owned(Vec::<u8>::new(), 1, |b| b).is_empty());
    }
}
