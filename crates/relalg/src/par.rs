//! The **persistent parallel runtime** — a small, dependency-free pool of
//! long-lived worker threads shared by every hot path that shards cleanly.
//!
//! The repository's serving workloads — annotated plan construction
//! ([`crate::plan::MaterializedPlan::build_with`]), the registry's
//! level-parallel delta push, and batched deletion solving (`dap-core`'s
//! dichotomy dispatchers) — are embarrassingly parallel at well-defined
//! seams. [`ParPool`] provides exactly the helpers those seams need:
//!
//! * [`ParPool::par_ranges`] — contiguous sharding of an index space,
//!   results concatenated in range order (for uniform per-item work:
//!   scans, probes, bucket normalization);
//! * [`ParPool::par_indices`] / [`ParPool::par_map`] — dynamic
//!   work-stealing over an index space, results restored to index order
//!   (for skewed per-item work: solver targets, branch-and-bound
//!   branches);
//! * [`ParPool::par_map_owned`] — chunked mapping over an owned vector
//!   (bucket normalization without a clone);
//! * [`ParPool::par_tasks`] — a handful of coarse independent tasks with
//!   no grain floor (one DAG node's delta propagation each);
//! * [`ParPool::join2`] — two independent closures in parallel (operator
//!   subtree builds).
//!
//! ## Persistent workers
//!
//! Earlier revisions spawned scoped threads **per call** — at serving
//! scale (a registry push per deletion, thousands of turns per second)
//! thread spawn/join latency dominated the sharded work. The runtime now
//! keeps a process-global set of detached helper threads that **park on a
//! condvar between calls**. A dispatching call publishes one `Job` —
//! an erased pointer to its claim loop plus item/entrant accounting —
//! enqueues up to `threads - 1` helper tickets, and then *always runs the
//! claim loop itself*: with every helper busy the caller drains all items
//! inline (so nested dispatches can never deadlock), and idle helpers that
//! pick the ticket up steal items from the shared atomic counter. The
//! caller returns only after every item is finished **and** every helper
//! has left the job, so borrowing the caller's stack from worker threads
//! is sound; tickets that outlive their job in the queue are rejected by
//! the job's closed bit without touching the stale pointer.
//!
//! [`ParPool`] itself stays a **copyable sharding policy** (how many ways
//! to split), not a handle to live threads: pools of any size share the
//! one process-wide worker set, which grows on demand up to the largest
//! requested size (capped at `MAX_HELPERS`) and is never torn down.
//!
//! ## Determinism
//!
//! Every helper writes each item's result into its own slot, so results
//! come back in the **same order the sequential loop would produce them**
//! regardless of which thread claimed what — parallel callers are
//! bit-identical to their sequential counterparts as long as the per-item
//! work is deterministic (all of ours is). A pool with one thread never
//! touches the worker set: each helper degrades to the exact sequential
//! loop, which is what the `DAP_THREADS=1` escape hatch and the
//! differential property tests in `tests/prop_parallel.rs` rely on.
//!
//! ## Sizing
//!
//! [`ParPool::auto`] (and the process-wide [`ParPool::global`]) default to
//! [`std::thread::available_parallelism`], overridable with the
//! `DAP_THREADS` environment variable (`0` or unset means auto).
//!
//! ## Safety
//!
//! This is the one module in the crate that uses `unsafe` (the crate is
//! otherwise `#![deny(unsafe_code)]`): dispatch erases the lifetime of a
//! borrowed closure into a raw pointer so parked workers can run it. The
//! invariant making that sound is stated above and enforced by
//! `dispatch`'s two-phase wait: the pointee outlives every dereference
//! because the dispatching frame cannot return while items remain or any
//! worker is inside the job.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Sharding policy for the parallel helpers: how many worker threads each
/// call may use. Copyable and stateless — see the module docs; the live
/// threads are process-global and shared by every pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParPool {
    threads: usize,
}

/// Fewest items per shard before a helper bothers going parallel: below
/// this the dispatch overhead dominates any conceivable per-item win.
const MIN_ITEMS_PER_SHARD: usize = 16;

/// Hard ceiling on persistent helper threads — a backstop against absurd
/// `DAP_THREADS` values, far above any real hardware this serves on.
const MAX_HELPERS: usize = 96;

/// One parallel dispatch in flight. Workers and the dispatching caller
/// meet here: `work` points at the caller's claim loop, `remaining`
/// counts unfinished items, `state` packs the active-entrant count with a
/// closed bit, and the gate/condvar pair wakes the caller when either
/// reaches zero.
struct Job {
    /// Erased pointer to the dispatcher's claim loop. Only dereferenced
    /// between a successful `try_enter` and the matching `exit`; the
    /// dispatching frame waits for all entrants to leave before returning,
    /// so the pointee is alive for every dereference.
    work: *const (dyn Fn(&Job) + Sync),
    /// Items not yet finished.
    remaining: AtomicUsize,
    /// Low bits: threads currently inside `work`. High bit: closed — set
    /// by the dispatcher once all items are done; entry is refused after.
    state: AtomicUsize,
    poisoned: AtomicBool,
    gate: Mutex<()>,
    cv: Condvar,
}

/// SAFETY: `work` is only touched under the entrant protocol described on
/// the field; the pointee is `Sync`, so calling it from several threads at
/// once is fine. All other fields are `Send + Sync` already.
#[allow(unsafe_code)]
unsafe impl Send for Job {}
#[allow(unsafe_code)]
unsafe impl Sync for Job {}

const CLOSED: usize = 1 << (usize::BITS - 1);

impl Job {
    fn new(items: usize, work: *const (dyn Fn(&Job) + Sync)) -> Job {
        Job {
            work,
            remaining: AtomicUsize::new(items),
            state: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Register as an entrant unless the job is already closed.
    fn try_enter(&self) -> bool {
        self.state
            .fetch_update(Ordering::Acquire, Ordering::Relaxed, |s| {
                if s & CLOSED != 0 {
                    None
                } else {
                    Some(s + 1)
                }
            })
            .is_ok()
    }

    /// Leave the job, waking the dispatcher when the last entrant is out.
    fn exit(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        if prev & !CLOSED == 1 {
            let _g = self.gate.lock().expect("job gate");
            self.cv.notify_all();
        }
    }

    /// Mark one item finished, waking the dispatcher on the last one.
    fn item_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _g = self.gate.lock().expect("job gate");
            self.cv.notify_all();
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }
}

/// The process-global persistent worker set: a ticket queue plus the
/// number of helper threads spawned so far. Helpers park on `cv` between
/// jobs; they are detached and live for the rest of the process.
struct WorkerSet {
    queue: Mutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
    spawned: AtomicUsize,
}

fn workers() -> &'static WorkerSet {
    static WORKERS: OnceLock<WorkerSet> = OnceLock::new();
    WORKERS.get_or_init(|| WorkerSet {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Grow the worker set to at least `want` helpers (capped). Lazy: the
/// first parallel dispatch pays the spawns once; afterwards workers are
/// parked and reused.
fn ensure_spawned(set: &'static WorkerSet, want: usize) {
    let want = want.min(MAX_HELPERS);
    loop {
        let cur = set.spawned.load(Ordering::Relaxed);
        if cur >= want {
            return;
        }
        if set
            .spawned
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let spawned = thread::Builder::new()
            .name(format!("dap-par-{cur}"))
            .spawn(move || helper_loop(set))
            .is_ok();
        if !spawned {
            // Could not spawn (resource limits): give the slot back and
            // run with fewer helpers — the dispatch protocol tolerates
            // helpers that never show up.
            set.spawned.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

fn helper_loop(set: &'static WorkerSet) {
    loop {
        let job = {
            let mut q = set.queue.lock().expect("worker queue");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = set.cv.wait(q).expect("worker queue");
            }
        };
        if job.try_enter() {
            let work = job.work;
            // SAFETY: `try_enter` succeeded, so the job is not closed and
            // the dispatching frame is still inside `dispatch`, keeping
            // the pointee alive until we `exit()` below (it waits for the
            // entrant count to drain after closing).
            #[allow(unsafe_code)]
            let work = unsafe { &*work };
            work(&job);
            job.exit();
        }
        // A ticket for an already-closed job is stale: drop it untouched.
    }
}

/// Publish `work` to up to `helpers` parked workers, run it inline, and
/// wait until all `items` are finished and every helper has left. Returns
/// whether any item panicked.
fn dispatch(helpers: usize, items: usize, work: &(dyn Fn(&Job) + Sync)) -> bool {
    // SAFETY (lifetime erasure): the raw pointer is dereferenced only by
    // entrants, and this frame does not return until the entrant count is
    // zero after closing — so every dereference happens while `work`'s
    // referent is alive. Stale queue tickets fail `try_enter` and never
    // touch the pointer.
    #[allow(unsafe_code)]
    let erased = unsafe {
        std::mem::transmute::<&(dyn Fn(&Job) + Sync), *const (dyn Fn(&Job) + Sync)>(work)
    };
    let job = Arc::new(Job::new(items, erased));
    if helpers > 0 {
        let set = workers();
        ensure_spawned(set, helpers);
        {
            let mut q = set.queue.lock().expect("worker queue");
            for _ in 0..helpers {
                q.push_back(job.clone());
            }
        }
        set.cv.notify_all();
    }
    // The dispatcher always participates: every item gets drained even if
    // no helper is free, and a nested dispatch can never deadlock.
    let entered = job.try_enter();
    debug_assert!(entered, "job cannot be closed before the dispatcher ran");
    work(&job);
    job.exit();
    {
        let mut g = job.gate.lock().expect("job gate");
        while job.remaining.load(Ordering::Acquire) != 0 {
            g = job.cv.wait(g).expect("job gate");
        }
        job.state.fetch_or(CLOSED, Ordering::AcqRel);
        while job.state.load(Ordering::Acquire) & !CLOSED != 0 {
            g = job.cv.wait(g).expect("job gate");
        }
    }
    job.poisoned.load(Ordering::Relaxed)
}

impl ParPool {
    /// A pool using exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ParPool {
        ParPool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: every helper runs its exact sequential
    /// code path inline, never touching the worker set.
    pub fn sequential() -> ParPool {
        ParPool::new(1)
    }

    /// The default pool size: `DAP_THREADS` if set to a positive integer,
    /// otherwise [`std::thread::available_parallelism`] (`DAP_THREADS=0`
    /// explicitly requests auto). A malformed value is reported on stderr
    /// and treated as auto — silently ignoring a typo would defeat the
    /// `DAP_THREADS=1` sequential escape hatch.
    pub fn auto() -> ParPool {
        let from_env =
            std::env::var("DAP_THREADS")
                .ok()
                .and_then(|v| match v.trim().parse::<usize>() {
                    Ok(n) => Some(n).filter(|&n| n > 0),
                    Err(_) => {
                        eprintln!(
                            "warning: ignoring unparsable DAP_THREADS={v:?} \
                         (expected a non-negative integer; using auto)"
                        );
                        None
                    }
                });
        let threads = from_env.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ParPool::new(threads)
    }

    /// The process-wide default pool, resolved once from [`ParPool::auto`].
    pub fn global() -> ParPool {
        static GLOBAL: OnceLock<ParPool> = OnceLock::new();
        *GLOBAL.get_or_init(ParPool::auto)
    }

    /// Number of worker threads this pool shards across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The core primitive behind every helper: run `f(i)` for all
    /// `i in 0..n` with dynamic claiming over the persistent workers,
    /// each result written to its own slot — results in index order.
    fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = |job: &Job| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => *slots[i].lock().expect("result slot") = Some(r),
                Err(_) => job.poison(),
            }
            job.item_done();
        };
        let poisoned = dispatch(self.threads.min(n) - 1, n, &work);
        if poisoned {
            panic!("parallel worker panicked");
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every index produced a result")
            })
            .collect()
    }

    /// Split `0..n` into contiguous ranges, run `f` on each range in
    /// parallel, and concatenate the per-range outputs **in range order**
    /// — exactly the output a single `f(0..n)` call would produce when `f`
    /// maps each index independently. `grain` is the minimum range length
    /// worth sharding; small inputs run inline as one range.
    pub fn par_ranges<R, F>(&self, n: usize, grain: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> Vec<R> + Sync,
    {
        let grain = grain.max(MIN_ITEMS_PER_SHARD);
        let shards = (n / grain).clamp(1, self.threads);
        if shards == 1 {
            return f(0..n);
        }
        let ranges: Vec<Range<usize>> = (0..shards)
            .map(|s| (s * n / shards)..((s + 1) * n / shards))
            .collect();
        let mut chunks: Vec<Vec<R>> = self.run_indexed(shards, |s| f(ranges[s].clone()));
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in &mut chunks {
            out.append(chunk);
        }
        out
    }

    /// Run `f(i)` for every `i in 0..n` with **dynamic** scheduling (an
    /// atomic work counter, so skewed per-item costs balance), returning
    /// the results in index order. Use for coarse, uneven tasks — solver
    /// targets, search branches; [`ParPool::par_ranges`] is cheaper for
    /// uniform work.
    pub fn par_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_indexed(n, f)
    }

    /// [`ParPool::par_indices`] over a slice: `f` applied to every item,
    /// results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(&items[i]))
    }

    /// Map `f` over an owned vector, each worker owning a contiguous chunk
    /// (no clones), results in input order.
    pub fn par_map_owned<T, R, F>(&self, items: Vec<T>, grain: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let grain = grain.max(MIN_ITEMS_PER_SHARD);
        let shards = (n / grain).clamp(1, self.threads);
        if shards == 1 {
            return items.into_iter().map(f).collect();
        }
        // Split into owned chunks, front to back.
        let mut rest = items;
        let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let remaining_shards = shards - s;
            let take = rest.len().div_ceil(remaining_shards);
            let tail = rest.split_off(take);
            chunks.push(Mutex::new(Some(std::mem::replace(&mut rest, tail))));
        }
        let mut mapped: Vec<Vec<R>> = self.run_indexed(shards, |s| {
            let chunk = chunks[s].lock().expect("chunk slot").take();
            chunk
                .expect("each chunk is claimed exactly once")
                .into_iter()
                .map(&f)
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in &mut mapped {
            out.append(chunk);
        }
        out
    }

    /// Run a handful of **coarse, independent tasks** with *no grain
    /// floor* — unlike [`ParPool::par_map_owned`], which refuses to go
    /// parallel below a minimum item count per shard. Tasks are claimed
    /// dynamically (one at a time, so skew balances) and results come back
    /// in input order. Use when each task is itself substantial (one DAG
    /// node's delta propagation, one operator subtree) so that even two or
    /// three tasks are worth dispatching; the fine-grained helpers are
    /// cheaper for per-row work.
    pub fn par_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = tasks.len();
        if self.threads == 1 || n <= 1 {
            return tasks.into_iter().map(f).collect();
        }
        let cells: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.run_indexed(n, |i| {
            let task = cells[i]
                .lock()
                .expect("task slot")
                .take()
                .expect("each task is claimed exactly once");
            f(task)
        })
    }

    /// Run two independent closures, in parallel when the pool has more
    /// than one thread.
    pub fn join2<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads == 1 {
            return (fa(), fb());
        }
        enum Either<A, B> {
            A(A),
            B(B),
        }
        let ca = Mutex::new(Some(fa));
        let cb = Mutex::new(Some(fb));
        let mut out = self.run_indexed(2, |i| {
            if i == 0 {
                Either::A((ca.lock().expect("closure slot").take().expect("once"))())
            } else {
                Either::B((cb.lock().expect("closure slot").take().expect("once"))())
            }
        });
        let b = out.pop();
        let a = out.pop();
        match (a, b) {
            (Some(Either::A(a)), Some(Either::B(b))) => (a, b),
            _ => unreachable!("run_indexed returns slot 0 then slot 1"),
        }
    }
}

impl Default for ParPool {
    fn default() -> ParPool {
        ParPool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_never_shards() {
        let pool = ParPool::sequential();
        assert!(pool.is_sequential());
        assert_eq!(pool.threads(), 1);
        let out = pool.par_ranges(100, 1, |r| r.map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_ranges_matches_sequential_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ParPool::new(threads);
            let out = pool.par_ranges(1000, 1, |r| r.map(|i| i + 1).collect());
            assert_eq!(out, (0..1000).map(|i| i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_indices_restores_index_order() {
        for threads in [1, 2, 5] {
            let pool = ParPool::new(threads);
            let out = pool.par_indices(257, |i| i * i);
            assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_and_owned_agree() {
        let items: Vec<usize> = (0..300).collect();
        for threads in [1, 2, 4] {
            let pool = ParPool::new(threads);
            let by_ref = pool.par_map(&items, |&i| i + 7);
            let by_val = pool.par_map_owned(items.clone(), 1, |i| i + 7);
            assert_eq!(by_ref, by_val);
        }
    }

    #[test]
    fn par_tasks_preserves_input_order_below_the_grain_floor() {
        // Two tasks is below MIN_ITEMS_PER_SHARD — par_map_owned would run
        // them inline, par_tasks dispatches anyway.
        for threads in [1, 2, 3, 8] {
            let pool = ParPool::new(threads);
            for n in [0, 1, 2, 3, 7] {
                let tasks: Vec<usize> = (0..n).collect();
                let out = pool.par_tasks(tasks, |i| i * 10);
                assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn join2_returns_both_sides() {
        for threads in [1, 2] {
            let pool = ParPool::new(threads);
            let (a, b) = pool.join2(|| 1 + 1, || "two");
            assert_eq!((a, b), (2, "two"));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParPool::new(0).threads(), 1);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let pool = ParPool::new(4);
        assert!(pool.par_indices(0, |i| i).is_empty());
        assert!(pool
            .par_ranges(0, 1, |r| r.collect::<Vec<usize>>())
            .is_empty());
        assert!(pool.par_map_owned(Vec::<u8>::new(), 1, |b| b).is_empty());
    }

    #[test]
    fn workers_are_reused_across_many_dispatches() {
        // Thousands of back-to-back dispatches on one pool: the persistent
        // set must serve them all without unbounded thread growth (the
        // spawn counter is monotone and capped).
        let pool = ParPool::new(4);
        for round in 0..2_000 {
            let out = pool.par_indices(8, |i| i + round);
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
        assert!(workers().spawned.load(Ordering::Relaxed) <= MAX_HELPERS);
    }

    #[test]
    fn nested_dispatches_complete() {
        // A parallel call whose items themselves dispatch in parallel:
        // the caller-participates rule makes this deadlock-free even when
        // every helper is busy.
        let pool = ParPool::new(4);
        let out = pool.par_indices(6, |i| {
            let inner = ParPool::new(2).par_indices(5, move |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6)
            .map(|i| (0..5).map(|j| i * 10 + j).sum::<usize>())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_to_the_dispatcher() {
        let pool = ParPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_indices(64, |i| {
                if i == 33 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err(), "dispatcher observes the worker panic");
        // The pool is still usable afterwards.
        let out = pool.par_indices(4, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
