//! Property tests on the core data structures: values, tuples, schemas,
//! predicates and the parser.

use dap_relalg::{parse_pred, schema, tuple, Attr, CmpOp, Operand, Pred, Schema, Tuple, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::int),
        any::<bool>().prop_map(Value::bool),
        "[a-z][a-z0-9']{0,6}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert!(b > a),
            Ordering::Greater => prop_assert!(b < a),
        }
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn tuple_projection_composes(values in proptest::collection::vec(arb_value(), 1..6)) {
        let t = Tuple::new(values.clone());
        let all: Vec<usize> = (0..values.len()).collect();
        prop_assert_eq!(t.project_positions(&all), t.clone());
        let reversed: Vec<usize> = all.iter().rev().copied().collect();
        let double_reverse = t.project_positions(&reversed).project_positions(&reversed);
        prop_assert_eq!(double_reverse, t);
    }

    #[test]
    fn schema_rename_round_trips(n in 1..5usize) {
        let attrs: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        let s = Schema::new(attrs.clone()).expect("distinct");
        let forward: Vec<(Attr, Attr)> = attrs
            .iter()
            .map(|a| (Attr::new(a), Attr::new(format!("Z_{a}"))))
            .collect();
        let back: Vec<(Attr, Attr)> =
            forward.iter().map(|(o, n)| (n.clone(), o.clone())).collect();
        let there = s.rename(&forward).expect("fresh targets");
        let and_back = there.rename(&back).expect("fresh targets");
        prop_assert_eq!(and_back, s);
    }

    #[test]
    fn join_schema_is_idempotent_and_ordered(
        left in proptest::collection::btree_set("[A-F]", 1..4),
        right in proptest::collection::btree_set("[A-F]", 1..4),
    ) {
        let l = Schema::new(left.iter().cloned()).expect("distinct");
        let r = Schema::new(right.iter().cloned()).expect("distinct");
        let j = l.join_with(&r);
        // Every attribute of both sides appears exactly once.
        let union: std::collections::BTreeSet<&str> =
            left.iter().map(String::as_str).chain(right.iter().map(String::as_str)).collect();
        prop_assert_eq!(j.arity(), union.len());
        // Joining again with either side changes nothing.
        prop_assert_eq!(j.join_with(&l).arity(), j.arity());
        prop_assert_eq!(j.join_with(&r).arity(), j.arity());
    }

    #[test]
    fn pred_display_round_trips(
        attr in "[a-z]{1,4}",
        v in arb_value(),
        op_pick in 0..6usize,
        negate in any::<bool>(),
    ) {
        let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_pick];
        let mut p = Pred::cmp(Operand::Attr(attr.as_str().into()), op, Operand::Const(v));
        if negate {
            p = p.negate();
        }
        let text = p.to_string();
        let parsed = parse_pred(&text)
            .unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn predicate_de_morgan(
        x in -3..3i64,
        y in -3..3i64,
    ) {
        let s = schema(["A", "B"]);
        let t = tuple([x, y]);
        let a = Pred::attr_eq_const("A", 0);
        let b = Pred::attr_eq_const("B", 0);
        // ¬(a ∧ b) ≡ ¬a ∨ ¬b on every tuple.
        let lhs = a.clone().and(b.clone()).negate().eval(&s, &t).unwrap();
        let rhs = a.clone().negate().or(b.clone().negate()).eval(&s, &t).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn relation_dedup_is_idempotent(
        rows in proptest::collection::vec(proptest::collection::vec(arb_value(), 2), 0..10),
    ) {
        let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
        let r1 = dap_relalg::Relation::new("R", schema(["A", "B"]), tuples.clone()).unwrap();
        let r2 = dap_relalg::Relation::new("R", schema(["A", "B"]), r1.tuples().to_vec()).unwrap();
        prop_assert_eq!(r1.tuples(), r2.tuples());
        // Sortedness.
        prop_assert!(r1.tuples().windows(2).all(|w| w[0] < w[1]));
    }
}
