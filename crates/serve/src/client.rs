//! A retrying client for the `dap serve` protocol.
//!
//! The client is the other half of the server's robustness story:
//!
//! * Every request carries a monotone **sequence number**, and the
//!   server caches the last answered (seq, response) per client id — so
//!   a retry after a lost ack re-submits the *same* seq and converges on
//!   the original answer instead of double-applying.
//! * `overloaded` responses back off exponentially and resend the same
//!   seq — shed work is retried, never silently dropped.
//! * I/O errors reconnect and resend the same seq: a mid-commit
//!   disconnect is indistinguishable from a lost ack and the dedup cache
//!   (or WAL replay, across a crash) resolves it either way.
//! * A definitive `err` response is returned as-is — errors are answers,
//!   not transport faults, and are never retried.
//!
//! Asynchronous subscription [`Response::Event`] frames can interleave
//! with replies on the wire; the client collects them to the side
//! ([`Client::take_events`]) while matching replies by seq.

use crate::protocol::{encode_wire_frame, Command, FrameReader, Request, Response, MAX_FRAME};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client tuning knobs.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Client identity for the server's idempotency cache. Must be
    /// stable across reconnects of the *same logical client*.
    pub client_id: String,
    /// Attempts per request before giving up (connect + send + await).
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts.
    pub backoff: Duration,
    /// How long to wait for the reply to one request attempt.
    pub reply_timeout: Duration,
}

impl ClientOptions {
    /// Defaults for the given client identity.
    pub fn new(client_id: impl Into<String>) -> ClientOptions {
        ClientOptions {
            client_id: client_id.into(),
            max_attempts: 8,
            backoff: Duration::from_millis(10),
            reply_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a request ultimately failed (after retries).
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and every reconnect attempt failed too.
    Io(std::io::Error),
    /// The server answered with bytes that do not decode.
    Protocol(String),
    /// Attempts exhausted without a definitive reply (persistent
    /// overload or a server that never answers).
    RetriesExhausted,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection to a `dap serve` instance. See the module docs for the
/// retry semantics.
pub struct Client {
    addr: SocketAddr,
    opts: ClientOptions,
    conn: Option<Conn>,
    next_seq: u64,
    events: Vec<String>,
}

struct Conn {
    stream: TcpStream,
    frames: FrameReader,
}

impl Client {
    /// Create a client for `addr`. Connection is lazy — the first
    /// request dials.
    pub fn new(addr: SocketAddr, opts: ClientOptions) -> Client {
        Client {
            addr,
            opts,
            conn: None,
            next_seq: 1,
            events: Vec::new(),
        }
    }

    /// Shorthand: `new` with default options for `client_id`.
    pub fn connect(addr: SocketAddr, client_id: impl Into<String>) -> Client {
        Client::new(addr, ClientOptions::new(client_id))
    }

    /// Subscription events collected while awaiting replies (drained).
    pub fn take_events(&mut self) -> Vec<String> {
        std::mem::take(&mut self.events)
    }

    /// Wait up to `timeout` for one asynchronous event frame, polling
    /// the connection. Returns `None` on timeout or a dead connection.
    pub fn wait_event(&mut self, timeout: Duration) -> Option<String> {
        if let Some(ev) = self.pop_event() {
            return Some(ev);
        }
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.conn.is_none() && self.dial().is_err() {
                return None;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.read_one_response(remaining) {
                Ok(Some(Response::Event { body })) => return Some(body),
                Ok(Some(_)) | Ok(None) => {}
                Err(_) => return None,
            }
            if let Some(ev) = self.pop_event() {
                return Some(ev);
            }
        }
        None
    }

    fn pop_event(&mut self) -> Option<String> {
        if self.events.is_empty() {
            None
        } else {
            Some(self.events.remove(0))
        }
    }

    /// Issue one command with retry/backoff and idempotent
    /// re-submission. Returns the definitive response (`Ok` or `Err`
    /// from the server); transport-level failure only after every
    /// attempt is burned.
    pub fn request(&mut self, cmd: Command) -> Result<Response, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let req = Request {
            client: self.opts.client_id.clone(),
            seq,
            cmd,
        };
        let frame = encode_wire_frame(&req.encode());
        let mut last_io: Option<std::io::Error> = None;
        for attempt in 0..self.opts.max_attempts {
            if attempt > 0 {
                // Exponential backoff, capped so chaos tests stay quick.
                let exp = attempt.min(6);
                std::thread::sleep(self.opts.backoff * 2u32.pow(exp));
            }
            if self.conn.is_none() {
                match self.dial() {
                    Ok(()) => {}
                    Err(e) => {
                        last_io = Some(e);
                        continue;
                    }
                }
            }
            if let Err(e) = self.send_bytes(&frame) {
                last_io = Some(e);
                self.conn = None;
                continue;
            }
            match self.await_reply(seq) {
                Ok(Some(Response::Overloaded { .. })) => continue, // back off, same seq
                Ok(Some(resp)) => return Ok(resp),
                Ok(None) => continue, // reply deadline passed: resend same seq
                Err(AwaitError::Io(e)) => {
                    last_io = Some(e);
                    self.conn = None;
                    continue;
                }
                Err(AwaitError::Protocol(msg)) => return Err(ClientError::Protocol(msg)),
            }
        }
        match last_io {
            Some(e) => Err(ClientError::Io(e)),
            None => Err(ClientError::RetriesExhausted),
        }
    }

    fn dial(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(2))?;
        stream.set_nodelay(true)?;
        self.conn = Some(Conn {
            stream,
            frames: FrameReader::new(MAX_FRAME),
        });
        Ok(())
    }

    fn send_bytes(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let conn = self.conn.as_mut().expect("send_bytes without connection");
        conn.stream.write_all(frame)
    }

    /// Read frames until the reply for `seq` arrives, the deadline
    /// passes (`Ok(None)`), or the transport fails. Events and stale
    /// replies (earlier seqs re-delivered after a reconnect) are
    /// absorbed along the way.
    fn await_reply(&mut self, seq: u64) -> Result<Option<Response>, AwaitError> {
        let deadline = Instant::now() + self.opts.reply_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            match self.read_one_response(remaining) {
                Ok(Some(resp)) => match resp {
                    Response::Event { body } => self.events.push(body),
                    resp if resp.seq() == seq => return Ok(Some(resp)),
                    _ => {} // stale reply from a previous attempt
                },
                Ok(None) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    /// Pull one decoded response off the wire, waiting at most
    /// `timeout`. `Ok(None)` means the deadline passed with no complete
    /// frame.
    fn read_one_response(&mut self, timeout: Duration) -> Result<Option<Response>, AwaitError> {
        let conn = self.conn.as_mut().expect("read without connection");
        conn.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(AwaitError::Io)?;
        loop {
            match conn.frames.next_frame() {
                Ok(Some(payload)) => {
                    let resp = Response::decode(&payload).map_err(AwaitError::Protocol)?;
                    return Ok(Some(resp));
                }
                Ok(None) => {}
                Err(msg) => return Err(AwaitError::Protocol(msg)),
            }
            let mut buf = [0u8; 4096];
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(AwaitError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => conn.frames.push(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(AwaitError::Io(e)),
            }
        }
    }

    // ---- convenience verbs -------------------------------------------

    /// `ping`: liveness + the server's counter line.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(Command::Ping)
    }

    /// `register <query>`.
    pub fn register(&mut self, q: &dap_relalg::Query) -> Result<Response, ClientError> {
        self.request(Command::Register(q.clone()))
    }

    /// `unregister q<k>`.
    pub fn unregister(&mut self, id: dap_relalg::QueryId) -> Result<Response, ClientError> {
        self.request(Command::Unregister(id))
    }

    /// `subscribe q<k>`: committed deltas for the query start flowing to
    /// this connection as event frames.
    pub fn subscribe(&mut self, id: dap_relalg::QueryId) -> Result<Response, ClientError> {
        self.request(Command::Subscribe(id))
    }

    /// `delete-source t1,t2,...`.
    pub fn delete_source(&mut self, tids: &[dap_relalg::Tid]) -> Result<Response, ClientError> {
        self.request(Command::DeleteSource(tids.to_vec()))
    }

    /// `solve q<k> view|source <tuple>`.
    pub fn solve(
        &mut self,
        id: dap_relalg::QueryId,
        objective: crate::protocol::SolveObjective,
        target: dap_relalg::Tuple,
    ) -> Result<Response, ClientError> {
        self.request(Command::Solve {
            id,
            objective,
            target,
        })
    }

    /// `shutdown`: ask the server to drain, flush, snapshot, and exit.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(Command::Shutdown)
    }
}

enum AwaitError {
    Io(std::io::Error),
    Protocol(String),
}
