//! SIGTERM-to-flag bridge for graceful shutdown, with no libc
//! dependency: the std library exposes no signal API, so this module
//! registers a minimal handler through the POSIX `signal(2)` symbol
//! directly. The handler only stores into an atomic — the one thing
//! that is async-signal-safe — and the serving loop polls the flag.
//!
//! On non-unix targets installation is a no-op and the flag simply
//! never fires.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERM_FLAG;
    use std::sync::atomic::Ordering;

    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;

    unsafe extern "C" {
        /// POSIX `signal(2)`. Takes and returns the previous handler as a
        /// raw function address; `usize` matches the pointer-sized ABI on
        /// every unix target this crate builds for.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        TERM_FLAG.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_term` is an `extern "C" fn(i32)` whose address is a
        // valid handler for `signal(2)`, and it performs only an atomic
        // store, which is async-signal-safe. Replacing the process
        // disposition for SIGTERM/SIGINT is the explicit purpose of this
        // call.
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
        }
    }
}

/// Install the SIGTERM/SIGINT handler (idempotent) and return whether
/// installation is supported on this target.
pub fn install_term_handler() -> bool {
    #[cfg(unix)]
    {
        imp::install();
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether a termination signal has arrived since the handler was
/// installed.
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::SeqCst)
}

/// Reset the flag — for tests that exercise the signal path repeatedly
/// in one process.
pub fn clear_term_flag() {
    TERM_FLAG.store(false, Ordering::SeqCst);
}
