//! The server: one acceptor, one reader + one writer thread per
//! session, and a single-writer engine thread that owns the
//! [`DurableState`] — the commit log's append order *is* the
//! serialization order, so N concurrent sessions are exactly equivalent
//! to their commands applied serially in commit order.
//!
//! Robustness decisions, explicitly:
//!
//! * **Admission control.** Commands enter a bounded queue
//!   ([`ServeOptions::queue_capacity`]). A full queue sheds the command
//!   with an `overloaded` response instead of buffering — memory stays
//!   bounded under any flood, and the client's retry/backoff provides
//!   the pushback.
//! * **Per-session isolation.** A protocol violation (bad frame, bad
//!   checksum, oversized length, garbage command) answers once and
//!   closes *that* session. A read deadline evicts stalled
//!   (slow-loris) connections that park mid-frame.
//! * **Engine self-healing.** Every job runs under `catch_unwind`
//!   (mirroring `ParPool`'s poison propagation). If a job panics, the
//!   offending session is closed, the in-memory state is discarded, and
//!   the engine rebuilds it with [`dap_durability::recover`] — the WAL
//!   makes the rebuilt state exact, and surviving sessions'
//!   subscriptions are re-attached. No panic ever escapes the process.
//! * **Pathological solves degrade, not wedge.** Solver calls run under
//!   the configured ILP node budget and answer `err budget ...` instead
//!   of occupying the engine indefinitely.
//! * **Crash-safe by construction.** Startup is always
//!   [`dap_durability::recover`]; graceful shutdown drains queued jobs,
//!   syncs the WAL, and snapshots — but kill -9 at any point is a
//!   supported path, not an exceptional one.

use crate::protocol::{
    encode_wire_frame, Command, FrameReader, Request, Response, SolveObjective, EVENT_SEQ,
    MAX_FRAME,
};
use dap_core::{DeletionContext, IlpOptions};
use dap_durability::{recover_with, DurableOptions, DurableState};
use dap_relalg::{Database, QueryId, SubscriberId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Admission queue depth — the overload high-water mark. Commands
    /// past it are shed with `overloaded` responses.
    pub queue_capacity: usize,
    /// Maximum concurrently accepted sessions; further connects are
    /// refused (closed immediately).
    pub max_sessions: usize,
    /// Per-frame payload length cap.
    pub max_frame: u32,
    /// Read deadline per poll: a session parked mid-frame longer than
    /// this is evicted (slow-loris defense). Sessions idle *between*
    /// frames are fine.
    pub read_timeout: Duration,
    /// ILP node budget for `solve` commands: a pathological instance
    /// answers `err budget ...` instead of wedging the engine.
    pub node_budget: u64,
    /// Durability knobs (fsync discipline, snapshot cadence).
    pub durable: DurableOptions,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            queue_capacity: 64,
            max_sessions: 64,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(2),
            node_budget: 5_000_000,
            durable: DurableOptions::default(),
        }
    }
}

impl ServeOptions {
    /// Defaults overridden from the environment: `DAP_SERVE_QUEUE`
    /// (admission queue depth), `DAP_SERVE_SESSIONS` (max concurrent
    /// sessions), `DAP_SERVE_READ_TIMEOUT_MS` (slow-loris eviction
    /// deadline), `DAP_SERVE_NODE_BUDGET` (ILP node budget per solve),
    /// plus the durability knobs (`DAP_FSYNC`). Unset or unparsable
    /// variables keep the defaults.
    pub fn from_env() -> ServeOptions {
        fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = ServeOptions::default();
        ServeOptions {
            queue_capacity: env_num("DAP_SERVE_QUEUE", d.queue_capacity).max(1),
            max_sessions: env_num("DAP_SERVE_SESSIONS", d.max_sessions).max(1),
            read_timeout: Duration::from_millis(
                env_num(
                    "DAP_SERVE_READ_TIMEOUT_MS",
                    d.read_timeout.as_millis() as u64,
                )
                .max(1),
            ),
            node_budget: env_num("DAP_SERVE_NODE_BUDGET", d.node_budget),
            durable: DurableOptions::from_env(),
            ..d
        }
    }
}

/// Live server counters, shared lock-free with every thread.
#[derive(Default)]
struct Stats {
    last_seq: AtomicU64,
    // i64, not usize: the enqueue-side increment lands after `try_send`
    // and can race the engine's completion decrement, so the counter may
    // transiently dip below zero. What matters is that the *sampled*
    // post-increment value (the peak) counts only enqueued-or-executing
    // jobs, which is bounded by queue_capacity + 1.
    inflight: AtomicI64,
    peak_inflight: AtomicI64,
    shed: AtomicU64,
    panics: AtomicU64,
    sessions: AtomicUsize,
    commits: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StatsSnapshot {
    /// Sequence number of the last durably applied operation.
    pub last_seq: u64,
    /// Commands currently queued or executing.
    pub inflight: usize,
    /// High-water mark of `inflight` over the server's lifetime — the
    /// shedding bound: never exceeds `queue_capacity + 1` (one executing
    /// plus a full queue).
    pub peak_inflight: usize,
    /// Commands shed with `overloaded`.
    pub shed: u64,
    /// Engine panics caught and healed by WAL re-recovery.
    pub panics: u64,
    /// Sessions currently open.
    pub sessions: usize,
    /// Mutating commands durably applied.
    pub commits: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            last_seq: self.last_seq.load(Ordering::SeqCst),
            inflight: self.inflight.load(Ordering::SeqCst).max(0) as usize,
            peak_inflight: self.peak_inflight.load(Ordering::SeqCst).max(0) as usize,
            shed: self.shed.load(Ordering::SeqCst),
            panics: self.panics.load(Ordering::SeqCst),
            sessions: self.sessions.load(Ordering::SeqCst),
            commits: self.commits.load(Ordering::SeqCst),
        }
    }
}

/// One queued unit of engine work.
struct Job {
    session: u64,
    client: String,
    seq: u64,
    cmd: Command,
}

enum EngineMsg {
    Job(Job),
    SessionClosed(u64),
    /// Graceful drain: finish queued jobs, sync, snapshot, exit.
    Shutdown,
    /// Abrupt stop without drain/sync/snapshot — the in-process stand-in
    /// for kill -9 in crash tests.
    #[allow(dead_code)]
    Kill,
}

/// Per-session outbound frame queues, shared between the engine (which
/// routes responses and events) and the session threads (which register
/// and unregister themselves).
type Switchboard = Arc<Mutex<HashMap<u64, SyncSender<Vec<u8>>>>>;

/// The `dap serve` server. See the module docs for the architecture.
pub struct Server;

impl Server {
    /// Recover the durable directory and start serving it on
    /// `127.0.0.1:port` (`port` 0 picks a free one). Returns once the
    /// listener is bound and the engine is live.
    pub fn start(dir: &Path, port: u16, opts: ServeOptions) -> std::io::Result<ServerHandle> {
        let (state, _report) = recover_with(dir, opts.durable)
            .map_err(|e| std::io::Error::other(format!("recover {}: {e}", dir.display())))?;
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stats: Arc<Stats> = Arc::default();
        stats.last_seq.store(state.last_seq(), Ordering::SeqCst);
        let switchboard: Switchboard = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<EngineMsg>(opts.queue_capacity);

        let engine = Engine {
            dir: dir.to_path_buf(),
            opts: opts.clone(),
            state,
            ctxs: HashMap::new(),
            dedup: HashMap::new(),
            subs: HashMap::new(),
            switchboard: switchboard.clone(),
            stats: stats.clone(),
            shutdown: shutdown.clone(),
        };
        let engine_thread = std::thread::Builder::new()
            .name("dap-serve-engine".into())
            .spawn(move || engine.run(rx))?;

        let accept_thread = {
            let opts = opts.clone();
            let stats = stats.clone();
            let switchboard = switchboard.clone();
            let shutdown = shutdown.clone();
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("dap-serve-accept".into())
                .spawn(move || accept_loop(listener, opts, stats, switchboard, shutdown, tx))?
        };

        Ok(ServerHandle {
            addr,
            dir: dir.to_path_buf(),
            stats,
            tx,
            shutdown,
            engine: Some(engine_thread),
            accept: Some(accept_thread),
        })
    }

    /// Initialize `dir` over `db` and immediately serve it — convenience
    /// for tests and benches.
    pub fn create_and_start(
        dir: &Path,
        db: &Database,
        port: u16,
        opts: ServeOptions,
    ) -> std::io::Result<ServerHandle> {
        DurableState::create(dir, db, opts.durable)
            .map_err(|e| std::io::Error::other(format!("create {}: {e}", dir.display())))?;
        Server::start(dir, port, opts)
    }
}

/// Running-server handle: address, counters, and the shutdown paths.
pub struct ServerHandle {
    addr: SocketAddr,
    dir: PathBuf,
    stats: Arc<Stats>,
    tx: SyncSender<EngineMsg>,
    shutdown: Arc<AtomicBool>,
    engine: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The durable directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Whether the engine has exited (client-driven `shutdown`, kill, or
    /// a fatal error).
    pub fn is_finished(&self) -> bool {
        self.engine
            .as_ref()
            .map(JoinHandle::is_finished)
            .unwrap_or(true)
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.engine.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Gracefully stop: drain queued jobs, sync the WAL, snapshot, then
    /// join the server threads.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(EngineMsg::Shutdown);
        self.join_threads();
    }

    /// Block until the server stops on its own (a client `shutdown`
    /// command or a termination signal observed by the engine).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Abrupt stop *without* drain, sync, or snapshot — the in-process
    /// stand-in for kill -9. State on disk is whatever the WAL already
    /// holds; the next [`Server::start`] recovers it.
    #[cfg(any(test, feature = "testing"))]
    pub fn kill(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.tx.send(EngineMsg::Kill);
        self.join_threads();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort stop if the handle is dropped without an explicit
        // shutdown; never blocks (the engine may already be gone).
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.tx.try_send(EngineMsg::Shutdown);
        self.join_threads();
    }
}

fn accept_loop(
    listener: TcpListener,
    opts: ServeOptions,
    stats: Arc<Stats>,
    switchboard: Switchboard,
    shutdown: Arc<AtomicBool>,
    tx: SyncSender<EngineMsg>,
) {
    let mut next_session: u64 = 1;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stats.sessions.load(Ordering::SeqCst) >= opts.max_sessions {
                    drop(stream); // refuse: close immediately
                    continue;
                }
                let session = next_session;
                next_session += 1;
                stats.sessions.fetch_add(1, Ordering::SeqCst);
                let opts = opts.clone();
                let stats_outer = stats.clone();
                let stats = stats.clone();
                let switchboard = switchboard.clone();
                let shutdown = shutdown.clone();
                let tx = tx.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("dap-serve-session-{session}"))
                    .spawn(move || {
                        session_loop(session, stream, opts, &stats, &switchboard, &shutdown, &tx);
                        stats.sessions.fetch_sub(1, Ordering::SeqCst);
                        let _ = tx.send(EngineMsg::SessionClosed(session));
                    });
                if spawned.is_err() {
                    stats_outer.sessions.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Push one encoded frame to a session's writer queue from the engine
/// (or another session's) thread. The engine must never stall on one
/// slow consumer: a queue that stays full past a short grace marks the
/// session slow and drops it from the switchboard (its writer thread
/// closes once the last sender is gone).
fn send_frame(switchboard: &Switchboard, session: u64, frame: Vec<u8>) {
    let mut frame = frame;
    // Brief retry so a merely-unscheduled writer thread isn't mistaken
    // for a dead consumer; the total stall is bounded (~50ms).
    for attempt in 0..50 {
        let tx = {
            let board = switchboard.lock().expect("switchboard poisoned");
            board.get(&session).cloned()
        };
        let Some(tx) = tx else { return };
        match tx.try_send(frame) {
            Ok(()) => return,
            Err(TrySendError::Full(f)) if attempt < 49 => {
                frame = f;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    switchboard
        .lock()
        .expect("switchboard poisoned")
        .remove(&session);
}

/// Push one encoded frame to *this* session's writer queue from its own
/// reader thread, blocking until there is room. Blocking here is the
/// point: the reader stops pulling bytes off the socket, and TCP pushes
/// back on the client — bounded memory without dropping the session.
fn send_frame_own(switchboard: &Switchboard, session: u64, frame: Vec<u8>) {
    let tx = {
        let board = switchboard.lock().expect("switchboard poisoned");
        board.get(&session).cloned()
    };
    if let Some(tx) = tx {
        let _ = tx.send(frame);
    }
}

/// The per-session reader: pull frames off the socket under the read
/// deadline, decode, and dispatch. Owns the paired writer thread via the
/// switchboard registration.
fn session_loop(
    session: u64,
    stream: TcpStream,
    opts: ServeOptions,
    stats: &Arc<Stats>,
    switchboard: &Switchboard,
    shutdown: &Arc<AtomicBool>,
    tx: &SyncSender<EngineMsg>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(opts.read_timeout)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };

    // Writer thread: drains the outbound queue onto the socket. Depth 256
    // bounds what a slow consumer can pin.
    let (out_tx, out_rx) = sync_channel::<Vec<u8>>(256);
    switchboard
        .lock()
        .expect("switchboard poisoned")
        .insert(session, out_tx);
    let writer = std::thread::Builder::new()
        .name(format!("dap-serve-writer-{session}"))
        .spawn(move || writer_loop(stream, out_rx));

    reader_loop(session, read_half, &opts, stats, switchboard, shutdown, tx);

    // Unregister; the writer exits when the last sender is dropped.
    switchboard
        .lock()
        .expect("switchboard poisoned")
        .remove(&session);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>) {
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn reader_loop(
    session: u64,
    mut stream: TcpStream,
    opts: &ServeOptions,
    stats: &Arc<Stats>,
    switchboard: &Switchboard,
    shutdown: &Arc<AtomicBool>,
    tx: &SyncSender<EngineMsg>,
) {
    let mut frames = FrameReader::new(opts.max_frame);
    let mut buf = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => frames.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Deadline tick. Parked mid-frame = slow loris: evict.
                // Idle between frames is fine.
                if frames.pending() > 0 {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        loop {
            match frames.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    if !dispatch(session, &payload, stats, switchboard, shutdown, tx) {
                        return;
                    }
                }
                Err(violation) => {
                    // Protocol violation: answer once (seq unknowable —
                    // use the event seq), close this session only.
                    let resp = Response::Err {
                        seq: EVENT_SEQ,
                        msg: format!("protocol error: {violation}"),
                    };
                    send_frame_own(switchboard, session, encode_wire_frame(&resp.encode()));
                    return;
                }
            }
        }
    }
}

/// Decode and route one request. Returns `false` when the session must
/// close (malformed request — answered, then closed).
fn dispatch(
    session: u64,
    payload: &[u8],
    stats: &Arc<Stats>,
    switchboard: &Switchboard,
    shutdown: &Arc<AtomicBool>,
    tx: &SyncSender<EngineMsg>,
) -> bool {
    let req = match Request::decode(payload) {
        Ok(req) => req,
        Err(msg) => {
            let resp = Response::Err {
                seq: EVENT_SEQ,
                msg: format!("protocol error: {msg}"),
            };
            send_frame_own(switchboard, session, encode_wire_frame(&resp.encode()));
            return false;
        }
    };
    // Ping answers from the shared counters without touching the engine
    // queue — it stays accurate (and cheap) even under full load.
    if req.cmd == Command::Ping {
        let s = stats.snapshot();
        let resp = Response::Ok {
            seq: req.seq,
            body: format!(
                "pong seq={} inflight={} peak={} shed={} panics={} sessions={}",
                s.last_seq, s.inflight, s.peak_inflight, s.shed, s.panics, s.sessions
            ),
        };
        send_frame_own(switchboard, session, encode_wire_frame(&resp.encode()));
        return true;
    }
    if shutdown.load(Ordering::SeqCst) {
        let resp = Response::Err {
            seq: req.seq,
            msg: "server is shutting down".into(),
        };
        send_frame_own(switchboard, session, encode_wire_frame(&resp.encode()));
        return false;
    }
    let seq = req.seq;
    let job = EngineMsg::Job(Job {
        session,
        client: req.client,
        seq,
        cmd: req.cmd,
    });
    match tx.try_send(job) {
        Ok(()) => {
            // Count only after a successful enqueue, so `inflight` is
            // exactly queued + executing and `peak_inflight` is bounded
            // by `queue_capacity + 1` no matter how many sessions race.
            let now = stats.inflight.fetch_add(1, Ordering::SeqCst) + 1;
            stats.peak_inflight.fetch_max(now, Ordering::SeqCst);
            true
        }
        Err(_) => {
            // Queue full (or engine gone): shed, don't buffer.
            stats.shed.fetch_add(1, Ordering::SeqCst);
            let resp = Response::Overloaded { seq };
            send_frame_own(switchboard, session, encode_wire_frame(&resp.encode()));
            true
        }
    }
}

/// The single-writer engine: owns the durable state, per-query solver
/// contexts, the idempotency cache, and subscription bookkeeping.
struct Engine {
    dir: PathBuf,
    opts: ServeOptions,
    state: DurableState,
    /// One cached solver context per standing query, synced lazily
    /// before each solve. Evicted on unregister and on panic-recovery.
    ctxs: HashMap<QueryId, DeletionContext>,
    /// client id → (last answered seq, its response): the idempotent
    /// re-submission cache.
    dedup: HashMap<String, (u64, Response)>,
    /// session → its open subscriptions.
    subs: HashMap<u64, Vec<(QueryId, SubscriberId)>>,
    switchboard: Switchboard,
    stats: Arc<Stats>,
    shutdown: Arc<AtomicBool>,
}

impl Engine {
    fn run(mut self, rx: Receiver<EngineMsg>) {
        loop {
            // Poll with a timeout so a termination signal is noticed even
            // when no client traffic arrives.
            let msg = match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => msg,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if crate::signal::term_requested() || self.shutdown.load(Ordering::SeqCst) {
                        self.drain_and_exit(&rx);
                        return;
                    }
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            };
            match msg {
                EngineMsg::Job(job) => {
                    let shutdown_after = job.cmd == Command::Shutdown;
                    self.handle_job(job);
                    if shutdown_after {
                        self.drain_and_exit(&rx);
                        return;
                    }
                }
                EngineMsg::SessionClosed(session) => self.close_session_subs(session),
                EngineMsg::Shutdown => {
                    self.drain_and_exit(&rx);
                    return;
                }
                EngineMsg::Kill => {
                    self.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    /// Stop admissions, finish everything already queued, flush, snapshot.
    fn drain_and_exit(mut self, rx: &Receiver<EngineMsg>) {
        self.shutdown.store(true, Ordering::SeqCst);
        // One settle pass: sessions check the flag before enqueueing, so
        // after a short grace no new jobs can arrive.
        std::thread::sleep(Duration::from_millis(20));
        while let Ok(msg) = rx.try_recv() {
            match msg {
                EngineMsg::Job(job) => self.handle_job(job),
                EngineMsg::SessionClosed(session) => self.close_session_subs(session),
                EngineMsg::Shutdown | EngineMsg::Kill => {}
            }
        }
        let _ = self.state.sync();
        let _ = self.state.snapshot();
        self.switchboard
            .lock()
            .expect("switchboard poisoned")
            .clear();
    }

    fn handle_job(&mut self, job: Job) {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(&job)));
        self.stats.inflight.fetch_sub(1, Ordering::SeqCst);
        match outcome {
            Ok(resp) => {
                self.dedup
                    .insert(job.client.clone(), (job.seq, resp.clone()));
                self.reply(job.session, resp);
            }
            Err(_) => {
                // The engine state may be arbitrarily damaged mid-job.
                // Heal from the WAL: every acknowledged operation is on
                // disk, so the rebuilt state is exact.
                self.stats.panics.fetch_add(1, Ordering::SeqCst);
                self.heal();
                self.reply(
                    job.session,
                    Response::Err {
                        seq: job.seq,
                        msg: "internal error: engine panicked; state re-recovered from the log"
                            .into(),
                    },
                );
                // The offending session is closed; everyone else keeps
                // their (re-attached) subscriptions.
                self.close_session(job.session);
            }
        }
    }

    /// Discard in-memory state and rebuild it from the durable directory,
    /// then re-attach surviving sessions' subscriptions.
    fn heal(&mut self) {
        match recover_with(&self.dir, self.opts.durable) {
            Ok((state, _)) => {
                self.state = state;
                self.ctxs.clear();
                self.stats
                    .last_seq
                    .store(self.state.last_seq(), Ordering::SeqCst);
                let old = std::mem::take(&mut self.subs);
                for (session, entries) in old {
                    let mut fresh = Vec::new();
                    for (qid, _) in entries {
                        if let Some(sub) = self.state.registry_mut().subscribe_session(qid) {
                            fresh.push((qid, sub));
                        }
                    }
                    if !fresh.is_empty() {
                        self.subs.insert(session, fresh);
                    }
                }
            }
            Err(_) => {
                // Disk gone too: nothing to serve. Stop accepting work.
                self.shutdown.store(true, Ordering::SeqCst);
            }
        }
    }

    fn reply(&self, session: u64, resp: Response) {
        send_frame(
            &self.switchboard,
            session,
            encode_wire_frame(&resp.encode()),
        );
    }

    fn close_session(&mut self, session: u64) {
        self.switchboard
            .lock()
            .expect("switchboard poisoned")
            .remove(&session);
        self.close_session_subs(session);
    }

    fn close_session_subs(&mut self, session: u64) {
        if let Some(entries) = self.subs.remove(&session) {
            for (_, sub) in entries {
                self.state.registry_mut().unsubscribe_session(sub);
            }
        }
    }

    /// Execute one command against the durable state. Runs under
    /// `catch_unwind`; every normal failure is an `Err` response.
    fn execute(&mut self, job: &Job) -> Response {
        // Idempotent re-submission: answer a replayed sequence number
        // from the cache without re-executing.
        if let Some((last, resp)) = self.dedup.get(&job.client) {
            if job.seq == *last {
                return resp.clone();
            }
            if job.seq < *last {
                return Response::Err {
                    seq: job.seq,
                    msg: format!("stale sequence number {} (last answered {last})", job.seq),
                };
            }
        }
        let seq = job.seq;
        match &job.cmd {
            Command::Ping => Response::Ok {
                seq,
                body: "pong".into(),
            },
            Command::Register(q) => {
                // Content-idempotent: a textually identical catalog query
                // answers with the existing id, so a retried register
                // whose ack was lost converges across crashes too.
                if let Some((id, _)) = self.state.catalog().iter().find(|(_, cq)| *cq == q) {
                    return Response::Ok {
                        seq,
                        body: format!("{id} (existing)"),
                    };
                }
                match self.state.register(q) {
                    Ok(id) => {
                        self.after_commit();
                        Response::Ok {
                            seq,
                            body: id.to_string(),
                        }
                    }
                    Err(e) => Response::Err {
                        seq,
                        msg: e.to_string(),
                    },
                }
            }
            Command::Unregister(id) => match self.state.unregister(*id) {
                Ok(removed) => {
                    if removed {
                        self.after_commit();
                        // Evict the cached solver context and free its
                        // ephemeral registry registration.
                        if let Some(ctx) = self.ctxs.remove(id) {
                            if let Some(eph) = ctx.registry_query() {
                                self.state.registry_mut().unregister(eph);
                            }
                        }
                        // Registry-side session subscriptions died with
                        // the query; drop the bookkeeping entries.
                        for entries in self.subs.values_mut() {
                            entries.retain(|(qid, _)| qid != id);
                        }
                    }
                    Response::Ok {
                        seq,
                        body: if removed {
                            format!("{id} unregistered")
                        } else {
                            format!("{id} was not registered")
                        },
                    }
                }
                Err(e) => Response::Err {
                    seq,
                    msg: e.to_string(),
                },
            },
            Command::Subscribe(id) => match self.state.registry_mut().subscribe_session(*id) {
                Some(sub) => {
                    self.subs.entry(job.session).or_default().push((*id, sub));
                    Response::Ok {
                        seq,
                        body: format!("subscribed {sub} to {id}"),
                    }
                }
                None => Response::Err {
                    seq,
                    msg: format!("unknown query {id}"),
                },
            },
            Command::DeleteSource(tids) => match self.state.delete_sources(tids) {
                Ok(_) => {
                    self.after_commit();
                    self.fan_out_events(tids);
                    Response::Ok {
                        seq,
                        body: format!("seq={}", self.state.last_seq()),
                    }
                }
                Err(e) => Response::Err {
                    seq,
                    msg: e.to_string(),
                },
            },
            Command::Solve {
                id,
                objective,
                target,
            } => self.solve(seq, *id, *objective, target),
            Command::Shutdown => Response::Ok {
                seq,
                body: "bye".into(),
            },
            Command::CrashTest => {
                #[cfg(any(test, feature = "testing"))]
                {
                    panic!("injected crash-test panic");
                }
                #[cfg(not(any(test, feature = "testing")))]
                Response::Err {
                    seq,
                    msg: "crash-test is only available in testing builds".into(),
                }
            }
        }
    }

    fn after_commit(&mut self) {
        self.stats
            .last_seq
            .store(self.state.last_seq(), Ordering::SeqCst);
        self.stats.commits.fetch_add(1, Ordering::SeqCst);
    }

    /// Push committed deltas to every subscribed session.
    fn fan_out_events(&mut self, tids: &[dap_relalg::Tid]) {
        let rendered: Vec<String> = tids.iter().map(|t| t.to_string()).collect();
        let batch = rendered.join(",");
        let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
        for (&session, entries) in &self.subs {
            for &(qid, sub) in entries {
                for (_, delta) in self.state.registry_mut().drain_session(sub) {
                    let resp = Response::Event {
                        body: format!(
                            "{qid} batch={batch} removed={} changed={}",
                            delta.removed.len(),
                            delta.changed.len()
                        ),
                    };
                    frames.push((session, encode_wire_frame(&resp.encode())));
                }
            }
        }
        for (session, frame) in frames {
            send_frame(&self.switchboard, session, frame);
        }
    }

    fn solve(
        &mut self,
        seq: u64,
        id: QueryId,
        objective: SolveObjective,
        target: &dap_relalg::Tuple,
    ) -> Response {
        let Some(query) = self.state.catalog().get(&id).cloned() else {
            return Response::Err {
                seq,
                msg: format!("unknown query {id}"),
            };
        };
        // One cached context per standing query; built lazily, synced
        // with deltas committed since its last solve.
        if !self.ctxs.contains_key(&id) {
            match DeletionContext::new_in_registry(self.state.registry_mut(), &query) {
                Ok(ctx) => {
                    self.ctxs.insert(id, ctx);
                }
                Err(e) => {
                    return Response::Err {
                        seq,
                        msg: e.to_string(),
                    }
                }
            }
        }
        let ctx = self.ctxs.get_mut(&id).expect("just inserted");
        ctx.sync_in(self.state.registry_mut());
        let opts = IlpOptions {
            node_budget: self.opts.node_budget,
        };
        let solved = match objective {
            SolveObjective::View => ctx.min_view_side_effects_ilp_turn(target, &opts),
            SolveObjective::Source => ctx.min_source_deletion_ilp_turn(target, &opts),
        };
        match solved {
            Ok(deletion) => {
                let dels: Vec<String> = deletion.deletions.iter().map(|t| t.to_string()).collect();
                Response::Ok {
                    seq,
                    body: format!(
                        "deletions={} side-effects={} [{}]",
                        deletion.deletions.len(),
                        deletion.view_side_effects.len(),
                        dels.join(",")
                    ),
                }
            }
            Err(e) => Response::Err {
                seq,
                msg: e.to_string(),
            },
        }
    }
}
