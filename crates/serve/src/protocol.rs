//! The wire protocol: text commands and responses inside the durability
//! layer's `[len][crc32][payload]` frames.
//!
//! Requests are `<client-id> <seq> <command...>`; responses echo the
//! sequence number (`<seq> ok ...` / `<seq> err ...` / `<seq>
//! overloaded`), and server-pushed subscription events use the reserved
//! sequence number `0` (`0 event ...`). Explicit client ids and sequence
//! numbers make retries idempotent: the engine remembers each client's
//! last answered sequence and replays the cached response instead of
//! re-executing, so a client that lost an ack can resubmit the same
//! request verbatim until it converges.
//!
//! The framing is exactly [`dap_durability::frame`]'s: a corrupt frame is
//! detected by checksum before any command parsing runs, and the
//! [`FrameReader`] enforces a maximum frame length so a hostile header
//! cannot make a session buffer unboundedly.

use dap_durability::{crc32, frame_bytes};
use dap_relalg::{parse_query, Query, QueryId, Tid, Tuple, Value};

/// Default cap on one frame's payload length (1 MiB) — far above any
/// legitimate command, far below what a hostile length header could ask
/// a session to buffer.
pub const MAX_FRAME: u32 = 1 << 20;

/// The reserved sequence number carried by server-pushed events.
pub const EVENT_SEQ: u64 = 0;

/// Everything a client can ask the server to do.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Command {
    /// Liveness + stats probe; answered without entering the commit queue.
    Ping,
    /// Durably register a standing query. Content-idempotent: registering
    /// a query textually identical to a catalog entry returns the
    /// existing id, so a retried `register` whose ack was lost converges
    /// instead of minting duplicates.
    Register(Query),
    /// Durably unregister a standing query.
    Unregister(QueryId),
    /// Open a per-session subscription on a standing query: subsequent
    /// committed deltas are pushed to this session as `event` frames.
    Subscribe(QueryId),
    /// Durably delete source tuples from every registered view.
    DeleteSource(Vec<Tid>),
    /// Solve a deletion-propagation instance against a standing query's
    /// current view, through the ILP solver under the server's node
    /// budget.
    Solve {
        /// The standing query whose view holds the target.
        id: QueryId,
        /// Which objective to minimize.
        objective: SolveObjective,
        /// The view tuple to delete.
        target: Tuple,
    },
    /// Gracefully stop the server: drain queued work, flush the WAL,
    /// snapshot, exit.
    Shutdown,
    /// Panic inside the engine while holding this job — the fault the
    /// per-session isolation and recover-self-heal paths exist for.
    /// Parsed (so a release server answers `err` instead of desyncing)
    /// but only *executed* under the `testing` feature.
    CrashTest,
}

/// The two ILP objectives a `solve` command can name.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveObjective {
    /// Minimize view side effects (the paper's deletion propagation).
    View,
    /// Minimize source tuples deleted.
    Source,
}

impl std::fmt::Display for SolveObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolveObjective::View => "view",
            SolveObjective::Source => "source",
        })
    }
}

/// One framed client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Stable client identity (one token) — the idempotency key space.
    pub client: String,
    /// Client-assigned sequence number, strictly increasing per client;
    /// `0` is reserved for server events and rejected in requests.
    pub seq: u64,
    /// The command itself.
    pub cmd: Command,
}

/// One framed server response (or pushed event).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The command succeeded; `body` is command-specific text.
    Ok {
        /// Echo of the request sequence number.
        seq: u64,
        /// Command-specific result text.
        body: String,
    },
    /// The command failed definitively — retrying the same request
    /// returns the same answer.
    Err {
        /// Echo of the request sequence number.
        seq: u64,
        /// Human-readable diagnosis.
        msg: String,
    },
    /// The admission queue was full; the command was *not* executed.
    /// Retry after backoff.
    Overloaded {
        /// Echo of the request sequence number.
        seq: u64,
    },
    /// A server-pushed subscription event (sequence number 0 on the
    /// wire).
    Event {
        /// Event text: `q<k> batch=<tids> removed=<n> changed=<n>`.
        body: String,
    },
}

impl Response {
    /// The sequence number this response answers (`EVENT_SEQ` for
    /// events).
    pub fn seq(&self) -> u64 {
        match self {
            Response::Ok { seq, .. } | Response::Err { seq, .. } | Response::Overloaded { seq } => {
                *seq
            }
            Response::Event { .. } => EVENT_SEQ,
        }
    }
}

/// Render `rel#row,...` for a tid batch.
fn render_tids(tids: &[Tid]) -> String {
    let parts: Vec<String> = tids.iter().map(Tid::to_string).collect();
    parts.join(",")
}

impl Request {
    /// Render the frame payload for this request.
    pub fn encode(&self) -> Vec<u8> {
        let cmd = match &self.cmd {
            Command::Ping => "ping".to_string(),
            Command::Register(q) => format!("register {q}"),
            Command::Unregister(id) => format!("unregister {id}"),
            Command::Subscribe(id) => format!("subscribe {id}"),
            Command::DeleteSource(tids) => format!("delete-source {}", render_tids(tids)),
            Command::Solve {
                id,
                objective,
                target,
            } => format!("solve {id} {objective} {target}"),
            Command::Shutdown => "shutdown".to_string(),
            Command::CrashTest => "crash-test".to_string(),
        };
        format!("{} {} {cmd}", self.client, self.seq).into_bytes()
    }

    /// Parse a frame payload into a request. Every error is a *protocol*
    /// error: the session answers it once and closes.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "request is not utf-8".to_string())?;
        let mut parts = text.splitn(3, ' ');
        let client = parts.next().unwrap_or_default();
        if client.is_empty()
            || client.len() > 64
            || !client
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(format!("bad client id `{client}`"));
        }
        let seq_text = parts.next().ok_or("request missing sequence number")?;
        let seq: u64 = seq_text
            .parse()
            .map_err(|_| format!("bad sequence number `{seq_text}`"))?;
        if seq == EVENT_SEQ {
            return Err("sequence number 0 is reserved for events".into());
        }
        let rest = parts.next().ok_or("request missing command")?;
        let (verb, args) = match rest.split_once(' ') {
            Some((verb, args)) => (verb, args),
            None => (rest, ""),
        };
        let cmd = match verb {
            "ping" => Command::Ping,
            "register" => {
                let q = parse_query(args).map_err(|e| format!("register: {e}"))?;
                Command::Register(q)
            }
            "unregister" => Command::Unregister(parse_query_id(args)?),
            "subscribe" => Command::Subscribe(parse_query_id(args)?),
            "delete-source" => {
                let mut tids = Vec::new();
                for part in args.split(',').filter(|p| !p.is_empty()) {
                    tids.push(dap_durability::log::parse_tid(part)?);
                }
                if tids.is_empty() {
                    return Err("delete-source names no tuples".into());
                }
                Command::DeleteSource(tids)
            }
            "solve" => {
                let (id_text, rest) = args
                    .split_once(' ')
                    .ok_or("solve: missing objective and target")?;
                let (obj_text, target_text) =
                    rest.split_once(' ').ok_or("solve: missing target tuple")?;
                let objective = match obj_text {
                    "view" => SolveObjective::View,
                    "source" => SolveObjective::Source,
                    other => return Err(format!("solve: unknown objective `{other}`")),
                };
                Command::Solve {
                    id: parse_query_id(id_text)?,
                    objective,
                    target: parse_tuple(target_text)?,
                }
            }
            "shutdown" => Command::Shutdown,
            "crash-test" => Command::CrashTest,
            other => return Err(format!("unknown command `{other}`")),
        };
        Ok(Request {
            client: client.to_string(),
            seq,
            cmd,
        })
    }
}

impl Response {
    /// Render the frame payload for this response.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok { seq, body } if body.is_empty() => format!("{seq} ok"),
            Response::Ok { seq, body } => format!("{seq} ok {body}"),
            Response::Err { seq, msg } => format!("{seq} err {msg}"),
            Response::Overloaded { seq } => format!("{seq} overloaded"),
            Response::Event { body } => format!("{EVENT_SEQ} event {body}"),
        }
        .into_bytes()
    }

    /// Parse a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not utf-8".to_string())?;
        let (seq_text, rest) = text
            .split_once(' ')
            .ok_or("response missing sequence number")?;
        let seq: u64 = seq_text
            .parse()
            .map_err(|_| format!("bad sequence number `{seq_text}`"))?;
        let (kind, body) = match rest.split_once(' ') {
            Some((kind, body)) => (kind, body),
            None => (rest, ""),
        };
        match kind {
            "ok" => Ok(Response::Ok {
                seq,
                body: body.to_string(),
            }),
            "err" => Ok(Response::Err {
                seq,
                msg: body.to_string(),
            }),
            "overloaded" => Ok(Response::Overloaded { seq }),
            "event" if seq == EVENT_SEQ => Ok(Response::Event {
                body: body.to_string(),
            }),
            other => Err(format!("unknown response kind `{other}`")),
        }
    }
}

/// Parse `q<k>` (the [`QueryId`] `Display` form).
pub fn parse_query_id(text: &str) -> Result<QueryId, String> {
    let index = text
        .strip_prefix('q')
        .and_then(|k| k.parse::<u64>().ok())
        .ok_or_else(|| format!("bad query id `{text}` (want q<k>)"))?;
    Ok(QueryId::from_index(index))
}

/// Parse a tuple literal — `(bob, report)`, values as int / bool /
/// quoted-or-bare string. The same grammar the `dap` CLI accepts.
pub fn parse_tuple(src: &str) -> Result<Tuple, String> {
    let inner = src.trim().trim_start_matches('(').trim_end_matches(')');
    if inner.trim().is_empty() {
        return Ok(Tuple::new(Vec::<Value>::new()));
    }
    let values: Vec<Value> = inner
        .split(',')
        .map(|raw| {
            let v = raw.trim().trim_matches('\'');
            if let Ok(i) = v.parse::<i64>() {
                Value::int(i)
            } else if v == "true" {
                Value::bool(true)
            } else if v == "false" {
                Value::bool(false)
            } else {
                Value::str(v)
            }
        })
        .collect();
    Ok(Tuple::new(values))
}

/// Wrap a payload into one wire frame (the durability framing verbatim).
pub fn encode_wire_frame(payload: &[u8]) -> Vec<u8> {
    frame_bytes(payload)
}

/// Incremental frame parser over a byte stream — the session reader's
/// (and client's) receive buffer. Unlike the durability crate's
/// [`dap_durability::decode_frame`] (which diagnoses a short tail as a
/// torn write), a partial frame here just means "keep reading"; errors
/// are reserved for real protocol violations: an oversized length header
/// or a checksum mismatch.
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameReader {
    /// A reader enforcing `max_frame` as the payload length cap.
    pub fn new(max_frame: u32) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Feed freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Try to take the next complete frame's payload. `Ok(None)` means
    /// more bytes are needed; `Err` is a protocol violation and the
    /// stream is unusable from here on.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, String> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > self.max_frame {
            return Err(format!(
                "frame length {len} exceeds the {} byte cap",
                self.max_frame
            ));
        }
        let want = 8 + len as usize;
        if self.buf.len() < want {
            return Ok(None);
        }
        let expect = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        let payload = &self.buf[8..want];
        let got = crc32(payload);
        if got != expect {
            return Err(format!(
                "frame checksum mismatch (stored {expect:#010x}, computed {got:#010x})"
            ));
        }
        let payload = payload.to_vec();
        self.buf.drain(..want);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::tuple;

    fn roundtrip_req(cmd: Command) {
        let req = Request {
            client: "cli-1".into(),
            seq: 42,
            cmd,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_req(Command::Ping);
        roundtrip_req(Command::Register(
            parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap(),
        ));
        roundtrip_req(Command::Unregister(QueryId::from_index(3)));
        roundtrip_req(Command::Subscribe(QueryId::from_index(0)));
        roundtrip_req(Command::DeleteSource(vec![
            Tid::new("UserGroup", 2),
            Tid::new("S#odd", 0),
        ]));
        roundtrip_req(Command::Solve {
            id: QueryId::from_index(1),
            objective: SolveObjective::View,
            target: tuple(["bob", "report"]),
        });
        roundtrip_req(Command::Solve {
            id: QueryId::from_index(1),
            objective: SolveObjective::Source,
            target: Tuple::new([Value::int(7), Value::bool(true)]),
        });
        roundtrip_req(Command::Shutdown);
        roundtrip_req(Command::CrashTest);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok {
                seq: 7,
                body: "q3".into(),
            },
            Response::Ok {
                seq: 7,
                body: String::new(),
            },
            Response::Err {
                seq: 9,
                msg: "unknown query q9".into(),
            },
            Response::Overloaded { seq: 11 },
            Response::Event {
                body: "q1 batch=UserGroup#2 removed=1 changed=0".into(),
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_requests_are_diagnosed() {
        for bad in [
            &b"\xff\xfe"[..],
            b"",
            b"cli",
            b"cli notanum ping",
            b"cli 0 ping",
            b"cli 1",
            b"cli 1 frobnicate",
            b"cli 1 register scan(",
            b"cli 1 unregister 3",
            b"cli 1 delete-source",
            b"cli 1 delete-source ,",
            b"cli 1 solve q1",
            b"cli 1 solve q1 view",
            b"cli 1 solve q1 sideways (a)",
            b"bad client id 1 ping",
            b"sp ace 1 ping",
        ] {
            assert!(
                Request::decode(bad).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut rd = FrameReader::new(MAX_FRAME);
        let frame = encode_wire_frame(b"hello");
        let (a, b) = frame.split_at(5);
        rd.push(a);
        assert_eq!(rd.next_frame().unwrap(), None);
        rd.push(b);
        assert_eq!(rd.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(rd.next_frame().unwrap(), None);
        assert_eq!(rd.pending(), 0);
    }

    #[test]
    fn frame_reader_rejects_oversize_and_corrupt_frames() {
        let mut rd = FrameReader::new(16);
        let mut oversize = encode_wire_frame(&[0u8; 32]);
        rd.push(&oversize);
        assert!(rd.next_frame().is_err(), "length cap must trip");

        let mut rd = FrameReader::new(MAX_FRAME);
        oversize = encode_wire_frame(b"payload");
        oversize[10] ^= 0x40; // flip a payload bit under the checksum
        rd.push(&oversize);
        assert!(rd.next_frame().is_err(), "checksum must trip");
    }
}
