//! A fault-injecting TCP proxy for chaos-testing the server.
//!
//! Tests point a [`crate::Client`] at the proxy instead of the server;
//! the proxy forwards bytes both ways and injects one configured
//! [`Fault`] on selected connections — torn frames, flipped bits,
//! mid-frame stalls (slow loris), and disconnects that swallow acks.
//! Combined with [`crate::ServerHandle::kill`] and
//! `dap_durability::recover`, this covers the full fault matrix: bad
//! bytes, bad timing, and bad luck.
//!
//! Only available in test builds (the `testing` cargo feature).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One injected failure mode, applied to the client→server byte stream
/// of a selected connection.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// Forward only the first `after_bytes` bytes, then cut the
    /// connection — the server sees a frame torn mid-payload.
    TornFrame {
        /// Bytes to forward before cutting.
        after_bytes: usize,
    },
    /// Flip bit `bit` of the byte at stream `offset` — the server sees
    /// a frame whose checksum no longer matches (or a corrupt header).
    BitFlip {
        /// Byte offset into the client→server stream.
        offset: usize,
        /// Bit index 0–7 within that byte.
        bit: u8,
    },
    /// Forward `after_bytes` bytes, then hold the stream for `hold`
    /// before continuing — a slow-loris client parked mid-frame.
    Stall {
        /// Bytes to forward before stalling.
        after_bytes: usize,
        /// How long to park.
        hold: Duration,
    },
    /// Forward `n` complete request frames, then cut both directions —
    /// the n-th request reaches the server but its ack is lost, forcing
    /// the client into idempotent re-submission.
    DisconnectAfterRequests {
        /// Complete frames to forward before cutting.
        n: usize,
    },
}

/// Which connections receive the fault.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// The failure mode to inject.
    pub fault: Fault,
    /// `0`: only the first connection (index 0). `k > 0`: every k-th
    /// connection (indices `0, k, 2k, ...`).
    pub every: usize,
}

impl FaultPlan {
    fn applies(&self, conn_index: usize) -> bool {
        if self.every == 0 {
            conn_index == 0
        } else {
            conn_index % self.every == 0
        }
    }
}

/// The proxy itself. Listens on an ephemeral localhost port; forwards
/// to `upstream`.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<AtomicUsize>,
    faulted: Arc<AtomicUsize>,
}

impl ChaosProxy {
    /// Start proxying `upstream` with `plan` (or cleanly, with `None`).
    pub fn start(upstream: SocketAddr, plan: Option<FaultPlan>) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let faulted = Arc::new(AtomicUsize::new(0));
        let accept = {
            let stop = stop.clone();
            let connections = connections.clone();
            let faulted = faulted.clone();
            std::thread::Builder::new()
                .name("chaos-proxy".into())
                .spawn(move || {
                    let mut index: usize = 0;
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                connections.fetch_add(1, Ordering::SeqCst);
                                let fault = plan.filter(|p| p.applies(index)).map(|p| p.fault);
                                if fault.is_some() {
                                    faulted.fetch_add(1, Ordering::SeqCst);
                                }
                                index += 1;
                                std::thread::spawn(move || run_connection(client, upstream, fault));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => break,
                        }
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
            connections,
            faulted,
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Connections that received the fault.
    pub fn faulted(&self) -> usize {
        self.faulted.load(Ordering::SeqCst)
    }

    /// Stop accepting. In-flight pump threads die with their sockets.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn run_connection(client: TcpStream, upstream: SocketAddr, fault: Option<Fault>) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Server→client: a plain pump. Cutting c2s shuts these sockets too,
    // which is what loses the ack on a disconnect fault.
    let s2c = {
        let client_w = client;
        std::thread::spawn(move || pump_plain(server_r, client_w))
    };
    pump_with_fault(client_r, server, fault);
    let _ = s2c.join();
}

fn pump_plain(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
    let _ = from.shutdown(std::net::Shutdown::Both);
}

/// Frame-boundary tracker over the `[len][crc][payload]` wire format,
/// fed raw bytes as they stream through the proxy.
struct FrameCounter {
    header: Vec<u8>,
    payload_left: usize,
    complete: usize,
}

impl FrameCounter {
    fn new() -> FrameCounter {
        FrameCounter {
            header: Vec::with_capacity(8),
            payload_left: 0,
            complete: 0,
        }
    }

    fn feed(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            if self.payload_left > 0 {
                let take = self.payload_left.min(bytes.len());
                self.payload_left -= take;
                bytes = &bytes[take..];
                if self.payload_left == 0 {
                    self.complete += 1;
                }
            } else {
                let need = 8 - self.header.len();
                let take = need.min(bytes.len());
                self.header.extend_from_slice(&bytes[..take]);
                bytes = &bytes[take..];
                if self.header.len() == 8 {
                    let len = u32::from_le_bytes([
                        self.header[0],
                        self.header[1],
                        self.header[2],
                        self.header[3],
                    ]);
                    self.payload_left = len as usize;
                    self.header.clear();
                    if self.payload_left == 0 {
                        self.complete += 1;
                    }
                }
            }
        }
    }
}

fn pump_with_fault(mut from: TcpStream, mut to: TcpStream, fault: Option<Fault>) {
    let mut buf = [0u8; 4096];
    let mut sent: usize = 0;
    let mut stalled = false;
    let mut frames = FrameCounter::new();
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = buf[..n].to_vec();
        match fault {
            Some(Fault::TornFrame { after_bytes }) if sent + chunk.len() >= after_bytes => {
                chunk.truncate(after_bytes.saturating_sub(sent));
                let _ = to.write_all(&chunk);
                break; // cut mid-frame
            }
            Some(Fault::BitFlip { offset, bit })
                if offset >= sent && offset < sent + chunk.len() =>
            {
                chunk[offset - sent] ^= 1 << (bit & 7);
            }
            Some(Fault::Stall { after_bytes, hold })
                if !stalled && sent + chunk.len() >= after_bytes =>
            {
                let head = after_bytes.saturating_sub(sent);
                if to.write_all(&chunk[..head]).is_err() {
                    break;
                }
                std::thread::sleep(hold);
                stalled = true;
                chunk.drain(..head);
                if chunk.is_empty() {
                    sent = after_bytes;
                    continue;
                }
            }
            Some(Fault::DisconnectAfterRequests { n: cut_after }) => {
                // `feed` must see every chunk, so this arm has no guard.
                frames.feed(&chunk);
                if frames.complete >= cut_after {
                    // Forward through the end of the cut frame, then sever
                    // both directions before the reply can come back.
                    let _ = to.write_all(&chunk);
                    break;
                }
            }
            _ => {}
        }
        if to.write_all(&chunk).is_err() {
            break;
        }
        sent += chunk.len();
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
    let _ = from.shutdown(std::net::Shutdown::Both);
}
