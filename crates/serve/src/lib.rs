//! `dap serve`: a crash-safe, overload-shedding subscription server
//! over the durable deletion-propagation state.
//!
//! One long-lived process owns a durable directory
//! ([`dap_durability::DurableState`]) and serves it over a localhost
//! TCP socket. The wire protocol reuses the durability layer's
//! checksummed framing (`[len][crc32][payload]`), so a torn or
//! bit-flipped frame is detected the same way on the wire as in the
//! log. Text commands: `register`, `unregister`, `subscribe`,
//! `delete-source`, `solve`, `ping`, `shutdown`.
//!
//! The crate is structured around its failure story:
//!
//! * [`protocol`] — framing, request/response grammar, and the
//!   incremental [`protocol::FrameReader`] with its length cap.
//! * [`server`] (via [`Server`], [`ServerHandle`], [`ServeOptions`]) —
//!   single-writer engine, bounded admission queue with `overloaded`
//!   shedding, per-session isolation, panic self-healing via WAL
//!   re-recovery, graceful drain on shutdown.
//! * [`client`] (via [`Client`]) — retry/backoff with idempotent
//!   re-submission keyed by per-client sequence numbers.
//! * `chaos` (behind the `testing` cargo feature) — a fault-injecting
//!   proxy for torn frames, bit flips, slow-loris stalls, and
//!   ack-swallowing disconnects.
//! * [`signal`] — a SIGTERM/SIGINT-to-atomic-flag bridge so the serving
//!   loop can drain gracefully under process supervision.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod signal;

#[cfg(any(test, feature = "testing"))]
pub mod chaos;

#[cfg(any(test, feature = "testing"))]
pub use chaos::{ChaosProxy, Fault, FaultPlan};
pub use client::{Client, ClientError, ClientOptions};
pub use protocol::{Command, Request, Response, SolveObjective};
pub use server::{ServeOptions, Server, ServerHandle, StatsSnapshot};
