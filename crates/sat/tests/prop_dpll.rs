//! Property tests: DPLL agrees with exhaustive search on arbitrary small
//! CNFs, and models returned are always real models.

use dap_sat::{brute_force, solve, Clause, Cnf, Lit};
use proptest::prelude::*;

fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let lit = (0..max_vars, any::<bool>()).prop_map(|(var, positive)| Lit { var, positive });
    let clause = proptest::collection::vec(lit, 0..4).prop_map(Clause::new);
    proptest::collection::vec(clause, 0..max_clauses)
        .prop_map(move |clauses| Cnf::new(max_vars, clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dpll_agrees_with_brute_force(f in arb_cnf(7, 12)) {
        let fast = solve(&f);
        let slow = brute_force(&f);
        prop_assert_eq!(fast.is_some(), slow.is_some(), "formula {}", f);
    }

    #[test]
    fn returned_models_satisfy(f in arb_cnf(8, 16)) {
        if let Some(model) = solve(&f) {
            prop_assert!(f.eval(&model), "bogus model for {}", f);
            prop_assert_eq!(model.len(), f.num_vars);
        }
    }

    #[test]
    fn adding_clauses_never_makes_sat(f in arb_cnf(6, 10), extra in arb_cnf(6, 4)) {
        // Monotonicity of UNSAT: a superset of clauses cannot become
        // satisfiable.
        let mut both = f.clauses.clone();
        both.extend(extra.clauses.clone());
        let combined = Cnf::new(6, both);
        if solve(&f).is_none() {
            prop_assert!(solve(&combined).is_none());
        }
        if solve(&combined).is_some() {
            prop_assert!(solve(&f).is_some());
        }
    }

    #[test]
    fn duplicate_clauses_do_not_change_the_answer(f in arb_cnf(6, 8)) {
        let mut doubled = f.clauses.clone();
        doubled.extend(f.clauses.clone());
        let d = Cnf::new(f.num_vars, doubled);
        prop_assert_eq!(solve(&f).is_some(), solve(&d).is_some());
    }
}
