//! A 0/1 **pseudo-Boolean** (integer-linear) branch-and-bound solver.
//!
//! The deletion-propagation variants of the paper are all expressible as
//! small 0/1 integer programs over the witness hypergraph (Makhija &
//! Gatterbauer, *A Unified Approach for Resilience and Causal
//! Responsibility*, and the follow-up unified deletion-propagation ILP):
//! hitting constraints kill the target's witnesses, indicator variables
//! count collateral view damage, and the objective weighs whichever
//! side-effect the variant minimizes. This module is the solving substrate
//! for `dap_core::ilp`: linear constraints `Σ aᵢ·xᵢ ≥ b` over Boolean
//! variables, a non-negative linear objective to minimize, and a DPLL-style
//! branch-and-bound in the spirit of [`crate::dpll`] extended with
//! bound-slack propagation and objective pruning.
//!
//! The search is deterministic: ties break on the lowest constraint /
//! variable index, and the reported optimum is the first one found in that
//! fixed order.
//!
//! ```
//! use dap_sat::pb::{minimize, PbConstraint, PbOptions, PbProblem};
//!
//! // Hit both {0,1} and {1,2}, minimizing 3·x0 + 1·x1 + 3·x2.
//! let p = PbProblem {
//!     num_vars: 3,
//!     constraints: vec![
//!         PbConstraint::at_least([(0, 1), (1, 1)], 1),
//!         PbConstraint::at_least([(1, 1), (2, 1)], 1),
//!     ],
//!     objective: vec![3, 1, 3],
//! };
//! let sol = minimize(&p, &PbOptions::default()).unwrap().expect("feasible");
//! assert_eq!(sol.objective, 1, "x1 alone hits both");
//! assert_eq!(sol.assignment, vec![false, true, false]);
//! ```

use std::fmt;

/// One linear constraint `Σ aᵢ·xᵢ ≥ bound` over 0/1 variables. Coefficients
/// may be negative (that is how `≤` constraints are expressed — see
/// [`PbConstraint::at_most`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PbConstraint {
    /// `(variable, coefficient)` terms. A variable may appear at most once
    /// (the constructors merge duplicates).
    pub terms: Vec<(usize, i64)>,
    /// The right-hand side: the term sum must be `≥ bound`.
    pub bound: i64,
}

impl PbConstraint {
    /// `Σ aᵢ·xᵢ ≥ bound`, merging duplicate variables by summing their
    /// coefficients (dropping zero coefficients).
    pub fn at_least(terms: impl IntoIterator<Item = (usize, i64)>, bound: i64) -> PbConstraint {
        let mut merged: Vec<(usize, i64)> = Vec::new();
        for (v, a) in terms {
            match merged.iter_mut().find(|(w, _)| *w == v) {
                Some((_, acc)) => *acc += a,
                None => merged.push((v, a)),
            }
        }
        merged.retain(|(_, a)| *a != 0);
        PbConstraint {
            terms: merged,
            bound,
        }
    }

    /// `Σ aᵢ·xᵢ ≤ bound`, expressed by negating both sides.
    pub fn at_most(terms: impl IntoIterator<Item = (usize, i64)>, bound: i64) -> PbConstraint {
        PbConstraint::at_least(terms.into_iter().map(|(v, a)| (v, -a)), -bound)
    }
}

/// A 0/1 integer program: constraints plus a non-negative linear objective
/// to minimize.
#[derive(Clone, Debug)]
pub struct PbProblem {
    /// Number of Boolean variables, indexed `0..num_vars`.
    pub num_vars: usize,
    /// The constraints, all of which must hold.
    pub constraints: Vec<PbConstraint>,
    /// Objective coefficient per variable (`len == num_vars`): minimize
    /// `Σ objective[v]·xᵥ`. Coefficients are non-negative by construction
    /// (`u64`); callers must keep their total below `u64::MAX`.
    pub objective: Vec<u64>,
}

/// An optimal assignment with its objective value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PbSolution {
    /// One value per variable.
    pub assignment: Vec<bool>,
    /// The (minimal) objective value of the assignment.
    pub objective: u64,
}

/// Search limits for [`minimize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PbOptions {
    /// Maximum number of branch-and-bound nodes before giving up with
    /// [`PbError::BudgetExhausted`]. The encodings are NP-hard in general
    /// — this is the same pressure valve the exact hypergraph search has.
    pub node_budget: u64,
}

impl Default for PbOptions {
    fn default() -> PbOptions {
        PbOptions {
            node_budget: u64::MAX,
        }
    }
}

/// The solver ran out of a resource before proving optimality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PbError {
    /// The node budget in [`PbOptions`] was exhausted.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for PbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbError::BudgetExhausted { budget } => {
                write!(
                    f,
                    "pseudo-Boolean search exceeded its node budget of {budget}"
                )
            }
        }
    }
}

impl std::error::Error for PbError {}

/// Minimize the objective subject to the constraints. Returns `None` if the
/// problem is infeasible, `Err` if the node budget runs out first.
pub fn minimize(p: &PbProblem, opts: &PbOptions) -> Result<Option<PbSolution>, PbError> {
    assert_eq!(
        p.objective.len(),
        p.num_vars,
        "objective must cover every variable"
    );
    for c in &p.constraints {
        for &(v, _) in &c.terms {
            assert!(v < p.num_vars, "constraint variable {v} out of range");
        }
    }
    let mut search = Search::new(p, opts.node_budget);
    search.run()?;
    Ok(search.best)
}

/// Exhaustive reference solver for testing (≤ 24 variables): the first
/// minimum in ascending bit order.
pub fn brute_force_minimize(p: &PbProblem) -> Option<PbSolution> {
    assert!(p.num_vars <= 24, "brute force limited to 24 variables");
    let mut best: Option<PbSolution> = None;
    for bits in 0u64..(1u64 << p.num_vars) {
        let a: Vec<bool> = (0..p.num_vars).map(|i| bits & (1 << i) != 0).collect();
        let feasible = p.constraints.iter().all(|c| {
            c.terms
                .iter()
                .map(|&(v, coef)| if a[v] { coef } else { 0 })
                .sum::<i64>()
                >= c.bound
        });
        if !feasible {
            continue;
        }
        let cost: u64 = (0..p.num_vars)
            .filter(|&v| a[v])
            .map(|v| p.objective[v])
            .sum();
        if best.as_ref().is_none_or(|b| cost < b.objective) {
            best = Some(PbSolution {
                assignment: a,
                objective: cost,
            });
        }
    }
    best
}

/// Branch-and-bound state. Per constraint we keep the *maximum* and
/// *minimum* sums still achievable over completions of the current partial
/// assignment; `max < bound` is a conflict, `min ≥ bound` means the
/// constraint is settled whatever happens below.
struct Search<'a> {
    p: &'a PbProblem,
    assign: Vec<Option<bool>>,
    max_left: Vec<i64>,
    min_left: Vec<i64>,
    /// variable → (constraint, coefficient) occurrences.
    var_cons: Vec<Vec<(usize, i64)>>,
    /// Objective cost of the variables currently assigned 1.
    cost: u64,
    best: Option<PbSolution>,
    nodes: u64,
    budget: u64,
}

impl<'a> Search<'a> {
    fn new(p: &'a PbProblem, budget: u64) -> Search<'a> {
        let mut var_cons: Vec<Vec<(usize, i64)>> = vec![Vec::new(); p.num_vars];
        let mut max_left = Vec::with_capacity(p.constraints.len());
        let mut min_left = Vec::with_capacity(p.constraints.len());
        for (ci, c) in p.constraints.iter().enumerate() {
            let mut hi = 0i64;
            let mut lo = 0i64;
            for &(v, a) in &c.terms {
                var_cons[v].push((ci, a));
                hi += a.max(0);
                lo += a.min(0);
            }
            max_left.push(hi);
            min_left.push(lo);
        }
        Search {
            p,
            assign: vec![None; p.num_vars],
            max_left,
            min_left,
            var_cons,
            cost: 0,
            best: None,
            nodes: 0,
            budget,
        }
    }

    fn run(&mut self) -> Result<(), PbError> {
        self.search()
    }

    fn set(&mut self, v: usize, val: bool) {
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(val);
        if val {
            self.cost += self.p.objective[v];
        }
        for k in 0..self.var_cons[v].len() {
            let (ci, a) = self.var_cons[v][k];
            let contrib = if val { a } else { 0 };
            self.max_left[ci] += contrib - a.max(0);
            self.min_left[ci] += contrib - a.min(0);
        }
    }

    fn unset(&mut self, v: usize) {
        let val = self.assign[v].take().expect("unset of unassigned variable");
        if val {
            self.cost -= self.p.objective[v];
        }
        for k in 0..self.var_cons[v].len() {
            let (ci, a) = self.var_cons[v][k];
            let contrib = if val { a } else { 0 };
            self.max_left[ci] -= contrib - a.max(0);
            self.min_left[ci] -= contrib - a.min(0);
        }
    }

    fn unwind(&mut self, trail: &[usize]) {
        for &v in trail.iter().rev() {
            self.unset(v);
        }
    }

    /// Slack propagation to a fixed point: conflict when a constraint's
    /// maximum achievable sum drops below its bound; a variable is forced
    /// when one of its values would cause that. Returns `false` on
    /// conflict (with `trail` holding the assignments to unwind).
    fn propagate(&mut self, trail: &mut Vec<usize>) -> bool {
        'fixpoint: loop {
            for ci in 0..self.p.constraints.len() {
                let bound = self.p.constraints[ci].bound;
                if self.max_left[ci] < bound {
                    return false;
                }
                if self.min_left[ci] >= bound {
                    continue; // settled whatever the completion
                }
                for ti in 0..self.p.constraints[ci].terms.len() {
                    let (v, a) = self.p.constraints[ci].terms[ti];
                    if self.assign[v].is_some() {
                        continue;
                    }
                    // max_left counts this variable at max(a, 0); probe
                    // both concrete values.
                    let top = a.max(0);
                    let if_zero = self.max_left[ci] - top;
                    let if_one = self.max_left[ci] - top + a;
                    if if_zero < bound && if_one < bound {
                        return false;
                    }
                    let forced = if if_zero < bound {
                        Some(true)
                    } else if if_one < bound {
                        Some(false)
                    } else {
                        None
                    };
                    if let Some(val) = forced {
                        self.set(v, val);
                        trail.push(v);
                        continue 'fixpoint;
                    }
                }
            }
            return true;
        }
    }

    /// A lower bound on the objective of any feasible completion: the cost
    /// already committed, plus — for variable-disjoint constraints that the
    /// all-zeros completion would violate — the cheapest positive-coefficient
    /// variable each still needs (the generalization of the disjoint-set
    /// bound in `dap-setcover`).
    fn objective_lower_bound(&self) -> u64 {
        let mut lb = self.cost;
        let mut used = vec![false; self.p.num_vars];
        'constraints: for (ci, c) in self.p.constraints.iter().enumerate() {
            if self.min_left[ci] >= c.bound {
                continue;
            }
            // Sum under the all-zeros completion of the unassigned tail.
            let mut zeros = self.max_left[ci];
            let mut cheapest: Option<u64> = None;
            for &(v, a) in &c.terms {
                if self.assign[v].is_some() {
                    continue;
                }
                zeros -= a.max(0);
                if a > 0 {
                    if used[v] {
                        continue 'constraints; // not disjoint from a counted one
                    }
                    let w = self.p.objective[v];
                    cheapest = Some(cheapest.map_or(w, |c0| c0.min(w)));
                }
            }
            if zeros >= c.bound {
                continue; // satisfiable for free
            }
            let Some(w) = cheapest else { continue };
            for &(v, a) in &c.terms {
                if a > 0 && self.assign[v].is_none() {
                    used[v] = true;
                }
            }
            lb += w;
        }
        lb
    }

    fn search(&mut self) -> Result<(), PbError> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(PbError::BudgetExhausted {
                budget: self.budget,
            });
        }
        let mut trail = Vec::new();
        if !self.propagate(&mut trail) {
            self.unwind(&trail);
            return Ok(());
        }
        if let Some(best) = &self.best {
            if self.objective_lower_bound() >= best.objective {
                self.unwind(&trail);
                return Ok(());
            }
        }
        // Branch on the unsettled constraint with the fewest unassigned
        // variables (fail-first), lowest index on ties.
        let mut pick: Option<(usize, usize)> = None; // (unassigned count, ci)
        for (ci, c) in self.p.constraints.iter().enumerate() {
            if self.min_left[ci] >= c.bound {
                continue;
            }
            let unassigned = c
                .terms
                .iter()
                .filter(|(v, _)| self.assign[*v].is_none())
                .count();
            if pick.is_none_or(|(u, _)| unassigned < u) {
                pick = Some((unassigned, ci));
            }
        }
        let Some((_, ci)) = pick else {
            // Every constraint settled: complete with zeros (cost-minimal,
            // always feasible from here) and record on strict improvement —
            // the reported optimum is the first found in search order.
            if self.best.as_ref().is_none_or(|b| self.cost < b.objective) {
                self.best = Some(PbSolution {
                    assignment: self.assign.iter().map(|v| v.unwrap_or(false)).collect(),
                    objective: self.cost,
                });
            }
            self.unwind(&trail);
            return Ok(());
        };
        let (v, a) = self.p.constraints[ci]
            .terms
            .iter()
            .copied()
            .find(|(v, _)| self.assign[*v].is_none())
            .expect("unsettled constraint has an unassigned variable");
        // Try the value that moves the constraint toward satisfaction first.
        let toward = a > 0;
        for val in [toward, !toward] {
            self.set(v, val);
            self.search()?;
            self.unset(v);
        }
        self.unwind(&trail);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hitting(sets: &[&[usize]], costs: Vec<u64>) -> PbProblem {
        PbProblem {
            num_vars: costs.len(),
            constraints: sets
                .iter()
                .map(|s| PbConstraint::at_least(s.iter().map(|&v| (v, 1)), 1))
                .collect(),
            objective: costs,
        }
    }

    #[test]
    fn unweighted_hitting_set() {
        let p = hitting(&[&[0, 1], &[1, 2], &[0, 2]], vec![1; 3]);
        let sol = minimize(&p, &PbOptions::default()).unwrap().unwrap();
        assert_eq!(sol.objective, 2);
        let p = hitting(&[&[0, 3], &[1, 3], &[2, 3]], vec![1; 4]);
        let sol = minimize(&p, &PbOptions::default()).unwrap().unwrap();
        assert_eq!(sol.objective, 1);
        assert!(sol.assignment[3]);
    }

    #[test]
    fn weights_steer_the_optimum() {
        // The shared element is expensive: three cheap singletons win.
        let p = hitting(&[&[0, 3], &[1, 3], &[2, 3]], vec![1, 1, 1, 5]);
        let sol = minimize(&p, &PbOptions::default()).unwrap().unwrap();
        assert_eq!(sol.objective, 3);
        assert_eq!(sol.assignment, vec![true, true, true, false]);
    }

    #[test]
    fn at_most_and_indicator_rows() {
        // y ≥ 1 - s (dies unless a survivor), s ≤ 1 - x (survivor needs x=0),
        // and a hitting row forcing x = 1: the optimum must pay for y.
        let p = PbProblem {
            num_vars: 3, // x, s, y
            constraints: vec![
                PbConstraint::at_least([(0, 1)], 1),
                PbConstraint::at_most([(1, 1), (0, 1)], 1),
                PbConstraint::at_least([(2, 1), (1, 1)], 1),
            ],
            objective: vec![1, 0, 10],
        };
        let sol = minimize(&p, &PbOptions::default()).unwrap().unwrap();
        assert_eq!(sol.objective, 11, "x forced, s forced 0, y forced 1");
    }

    #[test]
    fn infeasible_is_none() {
        let p = PbProblem {
            num_vars: 2,
            constraints: vec![
                PbConstraint::at_least([(0, 1), (1, 1)], 2),
                PbConstraint::at_most([(0, 1)], 0),
            ],
            objective: vec![1, 1],
        };
        assert_eq!(minimize(&p, &PbOptions::default()).unwrap(), None);
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = PbProblem {
            num_vars: 0,
            constraints: vec![],
            objective: vec![],
        };
        let sol = minimize(&p, &PbOptions::default()).unwrap().unwrap();
        assert_eq!(sol.objective, 0);
        assert!(sol.assignment.is_empty());
    }

    #[test]
    fn budget_exhaustion_reports() {
        // Large enough to need more than one node.
        let sets: Vec<Vec<usize>> = (0..12).map(|i| vec![i, (i + 1) % 12, 12]).collect();
        let set_refs: Vec<&[usize]> = sets.iter().map(|s| s.as_slice()).collect();
        let p = hitting(&set_refs, vec![1; 13]);
        assert!(matches!(
            minimize(&p, &PbOptions { node_budget: 1 }),
            Err(PbError::BudgetExhausted { budget: 1 })
        ));
    }

    #[test]
    fn duplicate_terms_merge() {
        let c = PbConstraint::at_least([(0, 1), (0, 2), (1, -1), (1, 1)], 2);
        assert_eq!(c.terms, vec![(0, 3)]);
        assert_eq!(c.bound, 2);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        // Deterministic xorshift, mirroring the DPLL differential test.
        let mut seed = 0x5eedcafeu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..150 {
            let n = 3 + (next() % 6) as usize; // 3..=8 variables
            let m = 2 + (next() % 8) as usize;
            let constraints: Vec<PbConstraint> = (0..m)
                .map(|_| {
                    let width = 1 + (next() % 3) as usize;
                    let terms: Vec<(usize, i64)> = (0..width)
                        .map(|_| {
                            let v = (next() % n as u64) as usize;
                            let a = 1 + (next() % 3) as i64;
                            (v, if next() % 4 == 0 { -a } else { a })
                        })
                        .collect();
                    let bound = (next() % 4) as i64 - 1;
                    PbConstraint::at_least(terms, bound)
                })
                .collect();
            let objective: Vec<u64> = (0..n).map(|_| next() % 5).collect();
            let p = PbProblem {
                num_vars: n,
                constraints,
                objective,
            };
            let got = minimize(&p, &PbOptions::default()).unwrap();
            let want = brute_force_minimize(&p);
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    assert_eq!(g.objective, w.objective, "round {round}");
                    // The returned assignment really is feasible.
                    for c in &p.constraints {
                        let sum: i64 = c
                            .terms
                            .iter()
                            .map(|&(v, a)| if g.assignment[v] { a } else { 0 })
                            .sum();
                        assert!(sum >= c.bound, "round {round}");
                    }
                }
                (g, w) => panic!("round {round}: feasibility mismatch {g:?} vs {w:?}"),
            }
        }
    }
}
