//! # dap-sat — CNF, monotone 3SAT, a DPLL solver, and a 0/1-ILP solver
//!
//! SAT substrate for the hardness reductions of the paper: monotone 3SAT
//! (every clause all-positive or all-negative) is the source problem of
//! Theorems 2.1 and 2.2, and plain 3SAT of Theorem 3.2. The [`dpll`] solver
//! is the oracle the reduction round-trip tests compare against. The [`pb`]
//! module extends the same branch-and-bound style to 0/1 pseudo-Boolean
//! *optimization* — the solving substrate of `dap_core::ilp`'s unified
//! deletion-propagation encodings.
//!
//! ```
//! use dap_sat::{Monotone3Sat, dpll};
//!
//! let f = Monotone3Sat::parse("(!x1 + !x2 + !x3)(x2 + x4 + x5)").unwrap();
//! let model = dpll::solve(&f.to_cnf()).expect("satisfiable");
//! assert!(f.eval(&model));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cnf;
pub mod dpll;
pub mod gen;
pub mod pb;

pub use cnf::{Clause, Cnf, Lit, Monotone3Sat, MonotoneClause};
pub use dpll::{brute_force, is_satisfiable, solve};
pub use gen::{random_monotone_3sat, random_satisfiable_monotone_3sat};
pub use pb::{PbConstraint, PbError, PbOptions, PbProblem, PbSolution};
