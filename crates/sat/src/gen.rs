//! Random instance generators for the benches and property tests.

use crate::cnf::{Monotone3Sat, MonotoneClause};
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random monotone 3SAT instance: `m` clauses over `n ≥ 3`
/// variables, each clause all-positive or all-negative with probability ½,
/// over 3 distinct variables.
pub fn random_monotone_3sat<R: Rng>(rng: &mut R, n: usize, m: usize) -> Monotone3Sat {
    assert!(n >= 3, "need at least 3 variables");
    let vars: Vec<usize> = (0..n).collect();
    let clauses = (0..m)
        .map(|_| {
            let chosen: Vec<usize> = vars.choose_multiple(rng, 3).copied().collect();
            MonotoneClause {
                positive: rng.gen_bool(0.5),
                vars: chosen,
            }
        })
        .collect();
    Monotone3Sat::new(n, clauses).expect("generator produces valid instances")
}

/// A random monotone 3SAT instance biased toward satisfiability: a hidden
/// assignment is drawn first and every clause is made true under it. Useful
/// for exercising the "formula satisfiable ⇒ side-effect-free deletion
/// exists" direction of the reductions.
pub fn random_satisfiable_monotone_3sat<R: Rng>(
    rng: &mut R,
    n: usize,
    m: usize,
) -> (Monotone3Sat, Vec<bool>) {
    assert!(n >= 3);
    let hidden: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let vars: Vec<usize> = (0..n).collect();
    let mut clauses = Vec::with_capacity(m);
    while clauses.len() < m {
        let chosen: Vec<usize> = vars.choose_multiple(rng, 3).copied().collect();
        let positive = rng.gen_bool(0.5);
        // Keep only clauses the hidden assignment satisfies.
        if chosen.iter().any(|&v| hidden[v] == positive) {
            clauses.push(MonotoneClause {
                positive,
                vars: chosen,
            });
        }
    }
    let f = Monotone3Sat::new(n, clauses).expect("valid");
    debug_assert!(f.eval(&hidden));
    (f, hidden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_instances_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let f = random_monotone_3sat(&mut rng, 8, 12);
            assert_eq!(f.clauses.len(), 12);
            assert!(f.to_cnf().is_monotone());
            assert!(f.to_cnf().is_3cnf());
            for c in &f.clauses {
                let mut vs = c.vars.clone();
                vs.sort_unstable();
                vs.dedup();
                assert_eq!(vs.len(), 3, "variables within a clause are distinct");
            }
        }
    }

    #[test]
    fn planted_instances_are_satisfiable() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let (f, hidden) = random_satisfiable_monotone_3sat(&mut rng, 10, 25);
            assert!(f.eval(&hidden));
            assert!(dpll::is_satisfiable(&f.to_cnf()));
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_random_monotone_instances() {
        // Random monotone 3SAT is satisfiable with high probability (any
        // mixed assignment dodges purely-positive and purely-negative
        // clauses), so instead of expecting UNSAT we check solver agreement.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let f = random_monotone_3sat(&mut rng, 6, 30).to_cnf();
            assert_eq!(
                dpll::is_satisfiable(&f),
                dpll::brute_force(&f).is_some(),
                "formula {f}"
            );
        }
    }
}
