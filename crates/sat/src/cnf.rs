//! CNF formulas, with first-class support for the paper's **monotone 3SAT**
//! fragment (every clause all-positive or all-negative) — the source problem
//! of the hardness reductions in Theorems 2.1 and 2.2.

use std::fmt;

/// A literal: a 0-based variable index with a sign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit {
    /// 0-based variable index.
    pub var: usize,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// A positive literal.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The literal's value under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }

    /// The complementary literal.
    pub fn negated(&self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var + 1)
        } else {
            write!(f, "!x{}", self.var + 1)
        }
    }
}

/// A disjunction of literals.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub lits: Vec<Lit>,
}

impl Clause {
    /// Build a clause.
    pub fn new<I: IntoIterator<Item = Lit>>(lits: I) -> Clause {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// Whether the clause holds under `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(assignment))
    }

    /// All-positive or all-negative?
    pub fn is_monotone(&self) -> bool {
        self.lits.iter().all(|l| l.positive) || self.lits.iter().all(|l| !l.positive)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build a formula; `num_vars` must cover every literal.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Cnf {
        debug_assert!(clauses
            .iter()
            .flat_map(|c| &c.lits)
            .all(|l| l.var < num_vars));
        Cnf { num_vars, clauses }
    }

    /// Whether the formula holds under `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Every clause monotone?
    pub fn is_monotone(&self) -> bool {
        self.clauses.iter().all(Clause::is_monotone)
    }

    /// Every clause has exactly three literals?
    pub fn is_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.lits.len() == 3)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A monotone clause: a sign plus the variables it mentions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MonotoneClause {
    /// `true` = all-positive clause, `false` = all-negated.
    pub positive: bool,
    /// 0-based variable indices (typically 3 of them).
    pub vars: Vec<usize>,
}

impl MonotoneClause {
    /// Whether the clause holds under `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.vars.iter().any(|&v| assignment[v] == self.positive)
    }
}

/// A monotone 3SAT instance — the NP-hard variant the paper reduces from
/// (hardness shown by Gold \[5\], also via Schaefer's theorem \[10\]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Monotone3Sat {
    /// Number of variables.
    pub num_vars: usize,
    /// The monotone clauses.
    pub clauses: Vec<MonotoneClause>,
}

impl Monotone3Sat {
    /// Build an instance, validating that every clause has exactly three
    /// variable occurrences within range.
    pub fn new(num_vars: usize, clauses: Vec<MonotoneClause>) -> Result<Monotone3Sat, String> {
        for (i, c) in clauses.iter().enumerate() {
            if c.vars.len() != 3 {
                return Err(format!(
                    "clause {i} has {} literals, expected 3",
                    c.vars.len()
                ));
            }
            for &v in &c.vars {
                if v >= num_vars {
                    return Err(format!(
                        "clause {i} references variable x{} > x{num_vars}",
                        v + 1
                    ));
                }
            }
        }
        Ok(Monotone3Sat { num_vars, clauses })
    }

    /// Parse from the paper's notation, e.g.
    /// `"(x1 + x2 + x3)(!x2 + !x4 + !x5)(x4 + x1 + x3)"`.
    /// `!` (or `~`) negates; each clause must be all-positive or
    /// all-negative; variables are 1-based `x<k>` names.
    pub fn parse(src: &str) -> Result<Monotone3Sat, String> {
        let mut clauses = Vec::new();
        let mut num_vars = 0usize;
        let mut rest = src.trim();
        while !rest.is_empty() {
            let open = rest
                .find('(')
                .ok_or_else(|| format!("expected '(' at `{rest}`"))?;
            if !rest[..open].trim().is_empty() {
                return Err(format!(
                    "unexpected text before clause: `{}`",
                    &rest[..open]
                ));
            }
            let close = rest
                .find(')')
                .ok_or_else(|| "unterminated clause".to_string())?;
            let body = &rest[open + 1..close];
            let mut vars = Vec::new();
            let mut signs = Vec::new();
            for raw in body.split('+') {
                let lit = raw.trim();
                let (neg, name) = match lit.strip_prefix('!').or_else(|| lit.strip_prefix('~')) {
                    Some(n) => (true, n.trim()),
                    None => (false, lit),
                };
                let idx: usize = name
                    .strip_prefix('x')
                    .ok_or_else(|| format!("expected variable like x3, got `{lit}`"))?
                    .parse()
                    .map_err(|_| format!("bad variable `{lit}`"))?;
                if idx == 0 {
                    return Err("variables are 1-based (x1, x2, …)".to_string());
                }
                vars.push(idx - 1);
                signs.push(!neg);
                num_vars = num_vars.max(idx);
            }
            if signs.windows(2).any(|w| w[0] != w[1]) {
                return Err(format!(
                    "clause ({body}) mixes positive and negative literals"
                ));
            }
            clauses.push(MonotoneClause {
                positive: signs.first().copied().unwrap_or(true),
                vars,
            });
            rest = rest[close + 1..].trim_start();
        }
        Monotone3Sat::new(num_vars, clauses)
    }

    /// Whether the instance holds under `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Convert to a general CNF formula (for the DPLL solver).
    pub fn to_cnf(&self) -> Cnf {
        let clauses = self
            .clauses
            .iter()
            .map(|c| {
                Clause::new(c.vars.iter().map(|&v| Lit {
                    var: v,
                    positive: c.positive,
                }))
            })
            .collect();
        Cnf::new(self.num_vars, clauses)
    }

    /// The all-positive clauses, with their original indices.
    pub fn positive_clauses(&self) -> impl Iterator<Item = (usize, &MonotoneClause)> {
        self.clauses.iter().enumerate().filter(|(_, c)| c.positive)
    }

    /// The all-negated clauses, with their original indices.
    pub fn negative_clauses(&self) -> impl Iterator<Item = (usize, &MonotoneClause)> {
        self.clauses.iter().enumerate().filter(|(_, c)| !c.positive)
    }
}

impl fmt::Display for Monotone3Sat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            write!(f, "(")?;
            for (i, &v) in c.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                if !c.positive {
                    write!(f, "!")?;
                }
                write!(f, "x{}", v + 1)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval_and_negation() {
        let a = [true, false];
        assert!(Lit::pos(0).eval(&a));
        assert!(!Lit::pos(1).eval(&a));
        assert!(Lit::neg(1).eval(&a));
        assert_eq!(Lit::pos(0).negated(), Lit::neg(0));
        assert_eq!(Lit::pos(0).to_string(), "x1");
        assert_eq!(Lit::neg(2).to_string(), "!x3");
    }

    #[test]
    fn clause_and_cnf_eval() {
        let c = Clause::new([Lit::pos(0), Lit::neg(1)]);
        assert!(c.eval(&[false, false]));
        assert!(!c.eval(&[false, true]));
        let f = Cnf::new(2, vec![c.clone(), Clause::new([Lit::pos(1)])]);
        assert!(f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    fn monotonicity_checks() {
        assert!(Clause::new([Lit::pos(0), Lit::pos(1)]).is_monotone());
        assert!(Clause::new([Lit::neg(0), Lit::neg(1)]).is_monotone());
        assert!(!Clause::new([Lit::pos(0), Lit::neg(1)]).is_monotone());
    }

    #[test]
    fn parse_paper_example() {
        // The Figure 1 formula (with the overbars the postprint lost).
        let f = Monotone3Sat::parse("(!x1 + !x2 + !x3)(x2 + x4 + x5)(!x4 + !x1 + !x3)").unwrap();
        assert_eq!(f.num_vars, 5);
        assert_eq!(f.clauses.len(), 3);
        assert!(!f.clauses[0].positive);
        assert!(f.clauses[1].positive);
        assert!(!f.clauses[2].positive);
        assert_eq!(f.positive_clauses().count(), 1);
        assert_eq!(f.negative_clauses().count(), 2);
        // x2 = true satisfies clause 2; x1 = false satisfies clauses 1 and 3.
        assert!(f.eval(&[false, true, false, false, false]));
        assert!(!f.eval(&[true, false, true, true, false]));
    }

    #[test]
    fn parse_rejects_mixed_and_garbage() {
        assert!(Monotone3Sat::parse("(x1 + !x2 + x3)").is_err());
        assert!(Monotone3Sat::parse("(x1 + x2)").is_err(), "not 3 literals");
        assert!(Monotone3Sat::parse("(x0 + x1 + x2)").is_err(), "1-based");
        assert!(Monotone3Sat::parse("(y1 + y2 + y3)").is_err());
        assert!(Monotone3Sat::parse("junk(x1 + x2 + x3)").is_err());
        assert!(Monotone3Sat::parse("(x1 + x2 + x3").is_err());
    }

    #[test]
    fn display_round_trips() {
        let text = "(!x1 + !x2 + !x3)(x2 + x4 + x5)";
        let f = Monotone3Sat::parse(text).unwrap();
        assert_eq!(Monotone3Sat::parse(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn to_cnf_preserves_semantics() {
        let f = Monotone3Sat::parse("(!x1 + !x2 + !x3)(x2 + x4 + x5)(!x4 + !x1 + !x3)").unwrap();
        let cnf = f.to_cnf();
        assert!(cnf.is_monotone());
        assert!(cnf.is_3cnf());
        for bits in 0u32..(1 << f.num_vars) {
            let a: Vec<bool> = (0..f.num_vars).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(f.eval(&a), cnf.eval(&a), "assignment {a:?}");
        }
    }

    #[test]
    fn new_validates() {
        assert!(Monotone3Sat::new(
            2,
            vec![MonotoneClause {
                positive: true,
                vars: vec![0, 1, 2]
            }]
        )
        .is_err());
        assert!(Monotone3Sat::new(
            3,
            vec![MonotoneClause {
                positive: true,
                vars: vec![0, 1]
            }]
        )
        .is_err());
    }
}
