//! A DPLL SAT solver with unit propagation and pure-literal elimination.
//!
//! Used as the reference oracle for the hardness reductions: a monotone 3SAT
//! instance is satisfiable iff the reduced view-deletion (Thm 2.1/2.2) or
//! annotation-placement (Thm 3.2) instance has a side-effect-free solution —
//! the round-trip tests check both directions against this solver.

use crate::cnf::{Clause, Cnf, Lit};

/// Solver outcome: a satisfying assignment, or `None` for UNSAT.
pub fn solve(f: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; f.num_vars];
    if dpll(&f.clauses, &mut assignment) {
        // Unconstrained variables default to false.
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Whether the formula is satisfiable.
pub fn is_satisfiable(f: &Cnf) -> bool {
    solve(f).is_some()
}

/// Clause state under a partial assignment.
enum ClauseState {
    Satisfied,
    /// Still undecided, with the remaining free literals.
    Open(Vec<Lit>),
    Conflict,
}

fn clause_state(c: &Clause, assignment: &[Option<bool>]) -> ClauseState {
    let mut free = Vec::new();
    for l in &c.lits {
        match assignment[l.var] {
            Some(v) if v == l.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => free.push(*l),
        }
    }
    if free.is_empty() {
        ClauseState::Conflict
    } else {
        ClauseState::Open(free)
    }
}

fn dpll(clauses: &[Clause], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation + pure literal elimination to a fixed point.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut changed = false;
        let mut all_satisfied = true;
        // Track polarity occurrences among open clauses for pure literals.
        let mut occurs_pos = vec![false; assignment.len()];
        let mut occurs_neg = vec![false; assignment.len()];
        let mut unit: Option<Lit> = None;
        for c in clauses {
            match clause_state(c, assignment) {
                ClauseState::Satisfied => {}
                ClauseState::Conflict => {
                    undo(assignment, &trail);
                    return false;
                }
                ClauseState::Open(free) => {
                    all_satisfied = false;
                    if free.len() == 1 {
                        unit = Some(free[0]);
                    }
                    for l in &free {
                        if l.positive {
                            occurs_pos[l.var] = true;
                        } else {
                            occurs_neg[l.var] = true;
                        }
                    }
                }
            }
        }
        if all_satisfied {
            return true;
        }
        if let Some(l) = unit {
            assignment[l.var] = Some(l.positive);
            trail.push(l.var);
            changed = true;
        } else {
            // Pure literal: a variable occurring with one polarity only.
            for v in 0..assignment.len() {
                if assignment[v].is_none() && (occurs_pos[v] ^ occurs_neg[v]) {
                    assignment[v] = Some(occurs_pos[v]);
                    trail.push(v);
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Branch on the first unassigned variable appearing in an open clause.
    let branch_var = clauses
        .iter()
        .find_map(|c| match clause_state(c, assignment) {
            ClauseState::Open(free) => Some(free[0].var),
            _ => None,
        });
    let Some(v) = branch_var else {
        // No open clause → satisfied.
        return true;
    };
    for value in [true, false] {
        assignment[v] = Some(value);
        if dpll(clauses, assignment) {
            return true;
        }
        assignment[v] = None;
    }
    undo(assignment, &trail);
    false
}

fn undo(assignment: &mut [Option<bool>], trail: &[usize]) {
    for &v in trail {
        assignment[v] = None;
    }
}

/// Exhaustive reference solver for testing (up to ~20 variables).
pub fn brute_force(f: &Cnf) -> Option<Vec<bool>> {
    assert!(f.num_vars <= 24, "brute force limited to 24 variables");
    for bits in 0u64..(1u64 << f.num_vars) {
        let a: Vec<bool> = (0..f.num_vars).map(|i| bits & (1 << i) != 0).collect();
        if f.eval(&a) {
            return Some(a);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Monotone3Sat;

    fn cnf(clauses: Vec<Vec<i64>>) -> Cnf {
        // DIMACS-ish: positive k = x_{k}, negative = ¬x_{k} (1-based).
        let num_vars = clauses
            .iter()
            .flatten()
            .map(|l| l.unsigned_abs() as usize)
            .max()
            .unwrap_or(0);
        Cnf::new(
            num_vars,
            clauses
                .into_iter()
                .map(|c| {
                    Clause::new(c.into_iter().map(|l| Lit {
                        var: l.unsigned_abs() as usize - 1,
                        positive: l > 0,
                    }))
                })
                .collect(),
        )
    }

    #[test]
    fn trivially_sat_and_unsat() {
        assert!(is_satisfiable(&cnf(vec![vec![1]])));
        assert!(!is_satisfiable(&cnf(vec![vec![1], vec![-1]])));
        assert!(is_satisfiable(&Cnf::new(0, vec![])));
        assert!(!is_satisfiable(&Cnf::new(1, vec![Clause::new([])])));
    }

    #[test]
    fn model_actually_satisfies() {
        let f = cnf(vec![vec![1, 2], vec![-1, 3], vec![-2, -3], vec![1, -3]]);
        let m = solve(&f).expect("satisfiable");
        assert!(f.eval(&m));
    }

    #[test]
    fn unsat_pigeonhole_2_into_1() {
        // Two pigeons, one hole: x1 = pigeon1 in hole, x2 = pigeon2 in hole.
        let f = cnf(vec![vec![1], vec![2], vec![-1, -2]]);
        assert!(!is_satisfiable(&f));
    }

    #[test]
    fn agrees_with_brute_force_on_small_formulas() {
        // Deterministic pseudo-random 3-CNFs over 6 vars.
        let mut seed = 0xdecafbadu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..120 {
            let n = 6;
            let m = 3 + (next() % 18) as usize;
            let clauses: Vec<Vec<i64>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % n as u64) as i64 + 1;
                            if next() % 2 == 0 {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            let f = cnf(clauses);
            let dpll_sat = solve(&f);
            let brute = brute_force(&f);
            assert_eq!(dpll_sat.is_some(), brute.is_some(), "formula {f}");
            if let Some(m) = dpll_sat {
                assert!(f.eval(&m));
            }
        }
    }

    #[test]
    fn monotone_positive_only_is_always_sat() {
        let f = Monotone3Sat::parse("(x1 + x2 + x3)(x2 + x4 + x5)").unwrap();
        let m = solve(&f.to_cnf()).expect("all-true satisfies positive clauses");
        assert!(f.eval(&m));
    }

    #[test]
    fn unsat_monotone_instance() {
        // (x1+x1+x1)(!x1+!x1+!x1) forces x1 both ways.
        let f = Monotone3Sat::parse("(x1 + x1 + x1)(!x1 + !x1 + !x1)").unwrap();
        assert!(!is_satisfiable(&f.to_cnf()));
    }
}
