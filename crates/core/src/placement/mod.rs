//! Annotation placement (Section 3 of the paper).
//!
//! Given a view location `(Q(S), t, A)`, find a **single source location**
//! whose annotation propagates there (under the Section 3 forward rules)
//! while annotating the fewest other view locations. The optimal solution is
//! always a single source location (§3.1), unlike deletion where whole sets
//! are needed.
//!
//! | module | algorithm | paper result |
//! |--------|-----------|--------------|
//! | [`generic`] | where-provenance candidates + forward propagation, exact for every SPJRU query (exponential in query size for PJ — Thm 3.2 says that is unavoidable) | Thm 3.2 |
//! | [`spu`] | linear scan over normal-form branches | Thm 3.3 |
//! | [`sju`] | per-branch component counting without extra materialization | Thm 3.4 |

pub mod generic;
pub mod sju;
pub mod spu;

use dap_provenance::{SourceLoc, ViewLoc};
use std::collections::BTreeSet;
use std::fmt;

/// A solution to the annotation placement problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// The source location to annotate.
    pub source: SourceLoc,
    /// View locations other than the target that also receive the
    /// annotation.
    pub side_effects: BTreeSet<ViewLoc>,
}

impl Placement {
    /// Whether only the requested view location receives the annotation.
    pub fn is_side_effect_free(&self) -> bool {
        self.side_effects.is_empty()
    }

    /// Number of extra annotated view locations.
    pub fn cost(&self) -> usize {
        self.side_effects.len()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "annotate {} (side effects: {})",
            self.source,
            self.side_effects.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{tuple, Tid};

    #[test]
    fn accessors_and_display() {
        let p = Placement {
            source: SourceLoc::new(Tid::new("R", 1), "A"),
            side_effects: BTreeSet::from([ViewLoc::new(tuple(["v"]), "A")]),
        };
        assert!(!p.is_side_effect_free());
        assert_eq!(p.cost(), 1);
        assert_eq!(p.to_string(), "annotate (R#1, A) (side effects: 1)");
    }
}
