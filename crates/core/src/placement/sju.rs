//! Theorem 3.4 — annotation placement for SJU queries in polynomial time.
//!
//! Because SJU branches have **no projection**, a view tuple `t` of branch
//! `Q_i` determines the participating source tuple `t.R_{ij}` of every scan
//! `j` outright — no search. The candidates for annotating `(t, A)` are the
//! locations `(t.R_{ij}, A)` for scans whose (renamed) schema contains `A`;
//! the side-effect count of a candidate follows from a **one-pass component
//! index** over the (materialized) branch views — each branch tuple is
//! registered under the source tuple it embeds per scan, so counting "the
//! additional locations that would receive annotations through other
//! queries in the union" is a lookup instead of a rescan of every branch
//! view per candidate.

use crate::error::{CoreError, Result};
use crate::placement::Placement;
use dap_provenance::{SourceLoc, ViewLoc};
use dap_relalg::{
    eval, normalize, output_schema, Branch, Database, OpFootprint, Query, ResultSet, Tid, Tuple,
};
use std::collections::{BTreeSet, HashMap};

/// Minimum-side-effect placement for an SJU query (no projection; select,
/// join, union and rename allowed).
pub fn sju_placement(q: &Query, db: &Database, target: &ViewLoc) -> Result<Placement> {
    let fp = OpFootprint::of(q);
    if fp.project {
        return Err(CoreError::WrongClass {
            expected: "SJU (projection-free)",
            found: fp.letters(),
        });
    }
    let catalog = db.catalog();
    let out_schema = output_schema(q, &catalog)?;
    if !out_schema.contains(&target.attr) {
        return Err(CoreError::TargetLocationNotInView {
            loc: target.clone(),
        });
    }
    let nf = normalize(q, &catalog)?;
    // Materialize every branch view once (the paper's model takes Q(S) as
    // given; per-branch views are its union decomposition).
    let branch_views: Vec<ResultSet> = nf
        .branches
        .iter()
        .map(|b| eval(&b.to_query(), db))
        .collect::<dap_relalg::Result<_>>()?;

    // The source tuple of scan `j` that a branch output tuple `t` embeds.
    // (`t` is given in the branch's own output order here.)
    let scan_component =
        |branch: &Branch, view_schema: &dap_relalg::Schema, t: &Tuple, scan_idx: usize| -> Tuple {
            let scan = &branch.scans[scan_idx];
            scan.mapping
                .iter()
                .map(|(_, cur)| {
                    let pos = view_schema
                        .index_of(cur)
                        .expect("no projection: attr visible");
                    t.get(pos).clone()
                })
                .collect()
        };

    // Collect candidates from every branch containing the target tuple.
    let mut candidates: BTreeSet<SourceLoc> = BTreeSet::new();
    for (branch, view) in nf.branches.iter().zip(&branch_views) {
        // Align the target tuple to this branch's output order.
        let positions = view.schema.positions_of(out_schema.attrs())?;
        // target.tuple is in out_schema order; build the branch-order tuple.
        let mut branch_tuple_vals = vec![None; view.schema.arity()];
        for (out_idx, &branch_pos) in positions.iter().enumerate() {
            branch_tuple_vals[branch_pos] = Some(target.tuple.get(out_idx).clone());
        }
        let branch_tuple: Tuple = branch_tuple_vals
            .into_iter()
            .map(|v| v.expect("positions cover the schema"))
            .collect();
        if !view.contains(&branch_tuple) {
            continue;
        }
        for (j, scan) in branch.scans.iter().enumerate() {
            // Does this scan carry the target attribute (post-rename)?
            let Some(orig) = scan.original_of(&target.attr) else {
                continue;
            };
            let component = scan_component(branch, &view.schema, &branch_tuple, j);
            let Some(tid) = db.tid_of(scan.rel.as_str(), &component) else {
                continue;
            };
            candidates.insert(SourceLoc::new(tid, orig.clone()));
        }
    }
    if candidates.is_empty() {
        return Err(CoreError::TargetLocationNotInView {
            loc: target.clone(),
        });
    }

    // One-pass component index: realign every branch view to the output
    // order once, then register each branch tuple under the source tuple it
    // embeds at each scan — as `(branch, scan, tuple index)`, so the index
    // holds no tuple copies. Built once, reused by every candidate.
    let aligned_views: Vec<Vec<Tuple>> = branch_views
        .iter()
        .map(|view| {
            let positions = view
                .schema
                .positions_of(out_schema.attrs())
                .expect("union-compatible");
            view.tuples
                .iter()
                .map(|t| t.project_positions(&positions))
                .collect()
        })
        .collect();
    let mut embeds: HashMap<Tid, Vec<(usize, usize, usize)>> = HashMap::new();
    for (h, (branch, view)) in nf.branches.iter().zip(&branch_views).enumerate() {
        for (idx, t) in view.tuples.iter().enumerate() {
            for (j, scan) in branch.scans.iter().enumerate() {
                let component = scan_component(branch, &view.schema, t, j);
                let Some(tid) = db.tid_of(scan.rel.as_str(), &component) else {
                    continue;
                };
                embeds.entry(tid).or_default().push((h, j, idx));
            }
        }
    }

    // Side effects of annotating candidate ℓ = (u, a): every view location
    // (t', θ_hj'(a)) where branch h's scan j' reads relation rel(u), embeds
    // u as its component, and θ_hj' renames a — a lookup in the index.
    let mut best: Option<Placement> = None;
    for cand in candidates {
        let mut reached: BTreeSet<ViewLoc> = BTreeSet::new();
        for (h, j, idx) in embeds.get(&cand.tid).map(Vec::as_slice).unwrap_or(&[]) {
            let scan = &nf.branches[*h].scans[*j];
            let Some(cur) = scan.current_of(&cand.attr) else {
                continue;
            };
            reached.insert(ViewLoc::new(aligned_views[*h][*idx].clone(), cur.clone()));
        }
        debug_assert!(reached.contains(target), "candidate must reach the target");
        reached.remove(target);
        let better = match &best {
            None => true,
            Some(b) => reached.len() < b.side_effects.len(),
        };
        if better {
            let done = reached.is_empty();
            best = Some(Placement {
                source: cand,
                side_effects: reached,
            });
            if done {
                break;
            }
        }
    }
    Ok(best.expect("candidates were non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::generic::min_side_effect_placement;
    use dap_provenance::propagate;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (staff, memo)
             }",
        )
        .unwrap();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        (q, db)
    }

    #[test]
    fn sj_candidates_and_counts() {
        let (q, db) = fixture();
        // (ann, staff, report).grp: candidates are UserGroup(ann,staff).grp
        // (reaches ann×{report,memo} → 1 side effect) and
        // GroupFile(staff,report).grp (reaches {ann,bob}×report → 1 side
        // effect). Minimum is 1.
        let target = ViewLoc::new(tuple(["ann", "staff", "report"]), "grp");
        let p = sju_placement(&q, &db, &target).unwrap();
        assert_eq!(p.cost(), 1);
        // user attribute: only UserGroup(ann,staff).user, reaching ann's two
        // rows → 1 side effect.
        let target = ViewLoc::new(tuple(["ann", "staff", "report"]), "user");
        let p = sju_placement(&q, &db, &target).unwrap();
        assert_eq!(p.cost(), 1);
        assert_eq!(
            p.source,
            SourceLoc::new(
                db.tid_of("UserGroup", &tuple(["ann", "staff"])).unwrap(),
                "user"
            )
        );
    }

    #[test]
    fn agrees_with_generic_solver_on_sj() {
        let (q, db) = fixture();
        let view = eval(&q, &db).unwrap();
        for t in &view.tuples {
            for attr in view.schema.attrs() {
                let target = ViewLoc::new(t.clone(), attr.clone());
                let fast = sju_placement(&q, &db, &target).unwrap();
                let generic = min_side_effect_placement(&q, &db, &target).unwrap();
                assert_eq!(fast.cost(), generic.cost(), "target {target}");
                // Verify via the forward propagator.
                let mut reached = propagate(&q, &db, &fast.source).unwrap();
                assert!(reached.contains(&target));
                reached.remove(&target);
                assert_eq!(reached, fast.side_effects);
            }
        }
    }

    #[test]
    fn union_branches_are_counted() {
        // Union with renaming: a source location reaches locations through
        // BOTH branches.
        let db = parse_database(
            "relation R(A1) { (T) }
             relation RP(A2) { (F) }
             relation S(A2) { (c1) }",
        )
        .unwrap();
        let q = parse_query("union(join(scan R, scan RP), join(scan R, scan S))").unwrap();
        // (T, F).A1 candidates: R(T).A1 — but R(T) also builds (T, c1), so
        // annotating it hits (T, c1).A1 too.
        let target = ViewLoc::new(tuple(["T", "F"]), "A1");
        let p = sju_placement(&q, &db, &target).unwrap();
        assert_eq!(p.cost(), 1);
        assert!(p
            .side_effects
            .contains(&ViewLoc::new(tuple(["T", "c1"]), "A1")));
        // (T, F).A2 candidate: RP(F).A2 — side-effect-free.
        let target = ViewLoc::new(tuple(["T", "F"]), "A2");
        let p = sju_placement(&q, &db, &target).unwrap();
        assert!(p.is_side_effect_free());
        let generic = min_side_effect_placement(&q, &db, &target).unwrap();
        assert_eq!(generic.cost(), 0);
    }

    #[test]
    fn agrees_with_generic_on_sju_with_rename() {
        let db = parse_database(
            "relation R(A, B) { (a1, b1), (a2, b1) }
             relation S(C, B) { (a1, b1), (a3, b2) }",
        )
        .unwrap();
        // union(R, δ_{C→A}(S)) — rename-enabled union.
        let q = parse_query("union(scan R, rename(scan S, {C -> A}))").unwrap();
        let view = eval(&q, &db).unwrap();
        for t in &view.tuples {
            for attr in view.schema.attrs() {
                let target = ViewLoc::new(t.clone(), attr.clone());
                let fast = sju_placement(&q, &db, &target).unwrap();
                let generic = min_side_effect_placement(&q, &db, &target).unwrap();
                assert_eq!(fast.cost(), generic.cost(), "target {target}");
            }
        }
    }

    #[test]
    fn rejects_projection_and_missing_location() {
        let (_, db) = fixture();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        assert!(matches!(
            sju_placement(&q, &db, &ViewLoc::new(tuple(["ann", "report"]), "user")),
            Err(CoreError::WrongClass { .. })
        ));
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        assert!(matches!(
            sju_placement(&q, &db, &ViewLoc::new(tuple(["zz", "zz", "zz"]), "user")),
            Err(CoreError::TargetLocationNotInView { .. })
        ));
    }
}
