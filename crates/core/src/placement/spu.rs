//! Theorem 3.3 — annotation placement for SPU queries in linear time.
//!
//! "We scan the input relation until we find the tuple `t'` which satisfies
//! the selection condition and whose projected attributes equal `t`.
//! Annotate attribute `A` of `t'` — only the desired view location receives
//! the annotation." For unions, apply the procedure per SP branch until a
//! match is found.

use crate::error::{CoreError, Result};
use crate::placement::Placement;
use dap_provenance::{SourceLoc, ViewLoc};
use dap_relalg::{normalize, output_schema, Database, OpFootprint, Query, Tid};
use std::collections::BTreeSet;

/// Side-effect-free placement for an SPU query (select/project/union; no
/// join, no rename). Always succeeds when the target location exists
/// (Theorem 3.3: there is **always** a side-effect-free placement).
pub fn spu_placement(q: &Query, db: &Database, target: &ViewLoc) -> Result<Placement> {
    let fp = OpFootprint::of(q);
    if fp.join || fp.rename {
        return Err(CoreError::WrongClass {
            expected: "SPU (join-free, rename-free)",
            found: fp.letters(),
        });
    }
    let catalog = db.catalog();
    let out_schema = output_schema(q, &catalog)?;
    if !out_schema.contains(&target.attr) {
        return Err(CoreError::TargetLocationNotInView {
            loc: target.clone(),
        });
    }
    let nf = normalize(q, &catalog)?;
    for branch in &nf.branches {
        debug_assert_eq!(branch.scans.len(), 1, "join-free branches have one scan");
        let scan = &branch.scans[0];
        // No renames anywhere ⇒ current names are original names.
        if !branch.proj.contains(&target.attr) {
            // The branch projects the attribute away — it cannot transmit
            // annotations to (·, A). (With identical output attr sets per
            // branch this cannot actually happen; keep the guard.)
            continue;
        }
        let rel = db.require(&scan.rel)?;
        let schema = rel.schema();
        let positions = schema.positions_of(out_schema.attrs())?;
        for (row, u) in rel.tuples().iter().enumerate() {
            if branch.pred.eval(schema, u)? && u.project_positions(&positions) == target.tuple {
                // Found the paper's t': annotate (t', A).
                return Ok(Placement {
                    source: SourceLoc::new(
                        Tid {
                            rel: rel.name().clone(),
                            row,
                        },
                        target.attr.clone(),
                    ),
                    side_effects: BTreeSet::new(),
                });
            }
        }
    }
    Err(CoreError::TargetLocationNotInView {
        loc: target.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::generic::min_side_effect_placement;
    use dap_provenance::propagate;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation R(A, B) { (a1, b1), (a1, b2), (a2, b1) }
             relation S(A, B) { (a1, b1), (a3, b3) }",
        )
        .unwrap();
        let q = parse_query("union(project(select(scan R, B = 'b1'), [A]), project(scan S, [A]))")
            .unwrap();
        (q, db)
    }

    #[test]
    fn placement_is_side_effect_free_and_verified() {
        let (q, db) = fixture();
        let view = dap_relalg::eval(&q, &db).unwrap();
        for t in &view.tuples {
            let target = ViewLoc::new(t.clone(), "A");
            let p = spu_placement(&q, &db, &target).unwrap();
            assert!(p.is_side_effect_free());
            // The independent forward propagator confirms: exactly the
            // target is annotated.
            let reached = propagate(&q, &db, &p.source).unwrap();
            assert_eq!(reached, BTreeSet::from([target]));
        }
    }

    #[test]
    fn agrees_with_generic_solver() {
        let (q, db) = fixture();
        let view = dap_relalg::eval(&q, &db).unwrap();
        for t in &view.tuples {
            let target = ViewLoc::new(t.clone(), "A");
            let fast = spu_placement(&q, &db, &target).unwrap();
            let generic = min_side_effect_placement(&q, &db, &target).unwrap();
            assert_eq!(fast.cost(), generic.cost(), "both are optimal (0)");
            assert_eq!(generic.cost(), 0, "Thm 3.3: always side-effect-free");
        }
    }

    #[test]
    fn selection_is_respected() {
        let db = parse_database("relation R(A, B) { (a1, b1), (a1, b2) }").unwrap();
        let q = parse_query("project(select(scan R, B = 'b2'), [A])").unwrap();
        let p = spu_placement(&q, &db, &ViewLoc::new(tuple(["a1"]), "A")).unwrap();
        // Must pick the row passing the selection, not (a1, b1).
        assert_eq!(
            p.source,
            SourceLoc::new(db.tid_of("R", &tuple(["a1", "b2"])).unwrap(), "A")
        );
    }

    #[test]
    fn rejects_wrong_class_and_missing_locations() {
        let db = parse_database(
            "relation R(A, B) { (a, b) }
             relation S(B, C) { (b, c) }",
        )
        .unwrap();
        let joined = parse_query("join(scan R, scan S)").unwrap();
        assert!(matches!(
            spu_placement(&joined, &db, &ViewLoc::new(tuple(["a", "b", "c"]), "A")),
            Err(CoreError::WrongClass { .. })
        ));
        let q = parse_query("project(scan R, [A])").unwrap();
        assert!(matches!(
            spu_placement(&q, &db, &ViewLoc::new(tuple(["zz"]), "A")),
            Err(CoreError::TargetLocationNotInView { .. })
        ));
        assert!(matches!(
            spu_placement(&q, &db, &ViewLoc::new(tuple(["a"]), "B")),
            Err(CoreError::TargetLocationNotInView { .. })
        ));
    }
}
