//! The generic exact placement solver.
//!
//! Candidates are exactly the where-provenance of the target location; the
//! side-effect set of a candidate is its forward propagation. Both are
//! polynomial in the materialized view and intermediates — which for PJ
//! queries can be exponential in the query size. Theorem 3.2 shows that
//! exponential dependence cannot be avoided (deciding side-effect-freeness
//! is NP-hard in combined complexity), so this is the best uniform
//! algorithm one can hope for.
//!
//! The hot path is **batched**: [`PlacementIndex`] runs the annotated
//! evaluator once (the engine's where-provenance instance) and inverts it
//! into a source-location → reached-view-locations map, so solving for a
//! target — or many targets — costs one tree walk total instead of one
//! forward propagation per candidate. The per-candidate path survives as
//! `multipass_min_side_effect_placement` (cargo feature `legacy-oracles`),
//! the legacy oracle the differential tests and the `engine_vs_multipass`
//! bench compare against.

use crate::error::{CoreError, Result};
use crate::placement::Placement;
#[cfg(feature = "legacy-oracles")]
use dap_provenance::{propagate, where_provenance_legacy};
use dap_provenance::{where_provenance, SourceLoc, ViewLoc, WhereProvenance};
use dap_relalg::{Database, Query};
use std::collections::{BTreeMap, BTreeSet};

/// The batched placement solver: one annotated evaluation, shared by every
/// candidate of every target over the same `(Q, S)`.
#[derive(Clone, Debug)]
pub struct PlacementIndex {
    wp: WhereProvenance,
    reached: BTreeMap<SourceLoc, BTreeSet<ViewLoc>>,
}

impl PlacementIndex {
    /// Evaluate `q` once with batched location annotations and invert the
    /// result into the forward index.
    pub fn build(q: &Query, db: &Database) -> Result<PlacementIndex> {
        let wp = where_provenance(q, db)?;
        let reached = wp.inverted();
        Ok(PlacementIndex { wp, reached })
    }

    /// The where-provenance underlying the index.
    pub fn where_provenance(&self) -> &WhereProvenance {
        &self.wp
    }

    /// Solve the minimum-side-effect placement for one target location.
    pub fn place(&self, target: &ViewLoc) -> Result<Placement> {
        let candidates: &BTreeSet<SourceLoc> = self
            .wp
            .locations_of(&target.tuple, &target.attr)
            .ok_or_else(|| CoreError::TargetLocationNotInView {
                loc: target.clone(),
            })?;
        if candidates.is_empty() {
            return Err(CoreError::NoCandidateLocation {
                loc: target.clone(),
            });
        }
        Ok(best_candidate(target, candidates, &self.reached))
    }
}

/// The shared selection loop: among `candidates` (iterated in their sorted
/// order, matching the legacy tie-break), pick the one whose reached set —
/// looked up in `reached` — has the fewest locations besides the target.
fn best_candidate(
    target: &ViewLoc,
    candidates: &BTreeSet<SourceLoc>,
    reached: &BTreeMap<SourceLoc, BTreeSet<ViewLoc>>,
) -> Placement {
    let mut best: Option<Placement> = None;
    for cand in candidates {
        let full = reached.get(cand).expect("candidates reach the view");
        debug_assert!(full.contains(target), "candidate must reach the target");
        // Strictly-better check against the index before cloning.
        let better = match &best {
            None => true,
            Some(b) => full.len() - 1 < b.side_effects.len(),
        };
        if better {
            let mut side_effects = full.clone();
            side_effects.remove(target);
            let done = side_effects.is_empty();
            best = Some(Placement {
                source: cand.clone(),
                side_effects,
            });
            if done {
                break; // cannot beat zero side effects
            }
        }
    }
    best.expect("candidates were non-empty")
}

/// Find the source location whose annotation reaches `target` with the
/// fewest other annotated view locations. One batched annotated evaluation,
/// inverted only for the target's candidate set (one extra view pass — not
/// one per candidate, and no full-index allocation). To solve many targets
/// over the same `(Q, S)`, build a [`PlacementIndex`] once (or call
/// [`min_side_effect_placements`]).
pub fn min_side_effect_placement(q: &Query, db: &Database, target: &ViewLoc) -> Result<Placement> {
    let wp = where_provenance(q, db)?;
    let candidates: &BTreeSet<SourceLoc> = wp
        .locations_of(&target.tuple, &target.attr)
        .ok_or_else(|| CoreError::TargetLocationNotInView {
            loc: target.clone(),
        })?;
    if candidates.is_empty() {
        return Err(CoreError::NoCandidateLocation {
            loc: target.clone(),
        });
    }
    let reached = wp.inverted_for(candidates);
    Ok(best_candidate(target, candidates, &reached))
}

/// Solve the placement problem for many targets with **one** annotated
/// evaluation shared across all of them.
pub fn min_side_effect_placements(
    q: &Query,
    db: &Database,
    targets: &[ViewLoc],
) -> Result<Vec<Placement>> {
    let index = PlacementIndex::build(q, db)?;
    targets.iter().map(|t| index.place(t)).collect()
}

/// Decide whether a side-effect-free annotation exists for `target`
/// (the §3.1 dichotomy question), returning one if so.
pub fn side_effect_free_placement(
    q: &Query,
    db: &Database,
    target: &ViewLoc,
) -> Result<Option<Placement>> {
    let best = min_side_effect_placement(q, db, target)?;
    Ok(best.is_side_effect_free().then_some(best))
}

/// The legacy multipass solver: candidates from the standalone backward
/// walk, then **one full forward propagation per candidate**. Kept as the
/// cross-check oracle for the differential property tests and as the
/// baseline of the `engine_vs_multipass` bench — use
/// [`min_side_effect_placement`] everywhere else.
#[cfg(feature = "legacy-oracles")]
pub fn multipass_min_side_effect_placement(
    q: &Query,
    db: &Database,
    target: &ViewLoc,
) -> Result<Placement> {
    let wp = where_provenance_legacy(q, db)?;
    let candidates: &BTreeSet<SourceLoc> = wp
        .locations_of(&target.tuple, &target.attr)
        .ok_or_else(|| CoreError::TargetLocationNotInView {
            loc: target.clone(),
        })?;
    if candidates.is_empty() {
        return Err(CoreError::NoCandidateLocation {
            loc: target.clone(),
        });
    }
    let mut best: Option<Placement> = None;
    for cand in candidates {
        // One whole tree walk per candidate — the cost the batched index
        // eliminates.
        let mut reached = propagate(q, db, cand)?;
        debug_assert!(reached.contains(target), "candidate must reach the target");
        reached.remove(target);
        let better = match &best {
            None => true,
            Some(b) => reached.len() < b.side_effects.len(),
        };
        if better {
            let done = reached.is_empty();
            best = Some(Placement {
                source: cand.clone(),
                side_effects: reached,
            });
            if done {
                break; // cannot beat zero side effects
            }
        }
    }
    Ok(best.expect("candidates were non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_provenance::propagate;
    use dap_relalg::{parse_database, parse_query, tuple, Tid};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn finds_side_effect_free_candidate() {
        let (q, db) = fixture();
        // Annotate (ann, report).user: the only candidate is
        // (UserGroup(ann,staff), user), which reaches nothing else.
        let target = ViewLoc::new(tuple(["ann", "report"]), "user");
        let p = min_side_effect_placement(&q, &db, &target).unwrap();
        assert!(p.is_side_effect_free());
        assert_eq!(
            p.source,
            SourceLoc::new(
                db.tid_of("UserGroup", &tuple(["ann", "staff"])).unwrap(),
                "user"
            )
        );
        // Verify with the independent forward propagator.
        let reached = propagate(&q, &db, &p.source).unwrap();
        assert_eq!(reached, BTreeSet::from([target]));
    }

    #[test]
    fn reports_min_side_effects_when_unavoidable() {
        let (q, db) = fixture();
        // (bob, report).user candidates: bob's two UserGroup rows.
        // via staff: reaches only (bob,report) — staff gives bob only
        // report. via dev: reaches (bob,report) and (bob,main).
        let target = ViewLoc::new(tuple(["bob", "report"]), "user");
        let p = min_side_effect_placement(&q, &db, &target).unwrap();
        assert!(p.is_side_effect_free());
        assert_eq!(
            p.source,
            SourceLoc::new(
                db.tid_of("UserGroup", &tuple(["bob", "staff"])).unwrap(),
                "user"
            )
        );
        // And (bob, main).user has exactly one candidate, which also hits
        // (bob, report).user? No — (bob,dev).user reaches main and report.
        let target = ViewLoc::new(tuple(["bob", "main"]), "user");
        let p = min_side_effect_placement(&q, &db, &target).unwrap();
        assert_eq!(p.cost(), 1);
        assert!(p
            .side_effects
            .contains(&ViewLoc::new(tuple(["bob", "report"]), "user")));
        assert!(side_effect_free_placement(&q, &db, &target)
            .unwrap()
            .is_none());
    }

    #[test]
    fn file_attribute_candidates() {
        let (q, db) = fixture();
        // (bob, report).file: candidates (staff,report).file and
        // (dev,report).file. (staff,report).file also reaches
        // (ann,report).file; (dev,report).file reaches only bob's row —
        // side-effect-free.
        let target = ViewLoc::new(tuple(["bob", "report"]), "file");
        let p = min_side_effect_placement(&q, &db, &target).unwrap();
        assert!(p.is_side_effect_free());
        assert_eq!(
            p.source,
            SourceLoc::new(
                db.tid_of("GroupFile", &tuple(["dev", "report"])).unwrap(),
                "file"
            )
        );
    }

    #[test]
    fn missing_location_errors() {
        let (q, db) = fixture();
        let err = min_side_effect_placement(&q, &db, &ViewLoc::new(tuple(["zz", "zz"]), "user"))
            .unwrap_err();
        assert!(matches!(err, CoreError::TargetLocationNotInView { .. }));
        let err =
            min_side_effect_placement(&q, &db, &ViewLoc::new(tuple(["ann", "report"]), "nope"))
                .unwrap_err();
        assert!(matches!(err, CoreError::TargetLocationNotInView { .. }));
    }

    #[test]
    fn solution_verified_by_forward_propagation() {
        let (q, db) = fixture();
        let view = dap_relalg::eval(&q, &db).unwrap();
        for t in &view.tuples {
            for attr in view.schema.attrs() {
                let target = ViewLoc::new(t.clone(), attr.clone());
                let p = min_side_effect_placement(&q, &db, &target).unwrap();
                let mut reached = propagate(&q, &db, &p.source).unwrap();
                assert!(reached.contains(&target));
                reached.remove(&target);
                assert_eq!(reached, p.side_effects, "target {target}");
            }
        }
    }

    #[test]
    #[cfg(feature = "legacy-oracles")]
    fn batched_index_and_multipass_agree_everywhere() {
        let (q, db) = fixture();
        let view = dap_relalg::eval(&q, &db).unwrap();
        let index = PlacementIndex::build(&q, &db).unwrap();
        let targets: Vec<ViewLoc> = view
            .tuples
            .iter()
            .flat_map(|t| {
                view.schema
                    .attrs()
                    .iter()
                    .map(|a| ViewLoc::new(t.clone(), a.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let batched = min_side_effect_placements(&q, &db, &targets).unwrap();
        for (target, fast) in targets.iter().zip(&batched) {
            assert_eq!(fast, &index.place(target).unwrap());
            let slow = multipass_min_side_effect_placement(&q, &db, target).unwrap();
            assert_eq!(fast.source, slow.source, "target {target}");
            assert_eq!(fast.side_effects, slow.side_effects, "target {target}");
        }
    }

    #[test]
    fn union_placement_counts_cross_branch_effects() {
        let db = parse_database(
            "relation R(A) { (v) }
             relation S(A) { (v), (w) }",
        )
        .unwrap();
        let q = parse_query("union(scan R, scan S)").unwrap();
        // (v).A candidates: R's v (reaches only the merged (v)) and S's v
        // (same). Both side-effect-free.
        let p = min_side_effect_placement(&q, &db, &ViewLoc::new(tuple(["v"]), "A")).unwrap();
        assert!(p.is_side_effect_free());

        // A self-union duplicates locations: union(scan S, scan S).
        let q = parse_query("union(scan S, scan S)").unwrap();
        let p = min_side_effect_placement(&q, &db, &ViewLoc::new(tuple(["w"]), "A")).unwrap();
        assert!(p.is_side_effect_free());
        assert_eq!(p.source, SourceLoc::new(Tid::new("S", 1), "A"));
    }
}
