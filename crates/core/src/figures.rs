//! The paper's worked figures, regenerated exactly.
//!
//! * **Figure 1**: the Theorem 2.1 reduction of
//!   `(x̄1 + x̄2 + x̄3)(x2 + x4 + x5)(x̄4 + x̄1 + x̄3)` — relations `R1`, `R2`
//!   and the view `Π_{A,C}(R1 ⋈ R2)`;
//! * **Figure 2**: the Theorem 2.2 reduction of the same formula — sixteen
//!   unary relations and the 4-tuple JU view;
//! * **Figure 3**: the Theorem 2.5 relation shapes `R0(S, A1, …, An)` and
//!   `R_i(A_i, B_i, C)` on a concrete hitting-set instance.
//!
//! (The published postprint's text extraction dropped the negation overbars
//! in the Figure 1 caption; the relation contents printed in the figure pin
//! the signs down — see `reductions::thm2_1` — and these are what we
//! regenerate and assert byte-for-byte in the tests.)

use crate::reductions::{thm2_1, thm2_2, thm2_5};
use dap_relalg::eval;
use dap_sat::Monotone3Sat;
use dap_setcover::HittingSet;
use std::collections::BTreeSet;

/// The example formula of Figures 1 and 2 (overbars restored).
pub fn paper_formula() -> Monotone3Sat {
    Monotone3Sat::parse("(!x1 + !x2 + !x3)(x2 + x4 + x5)(!x4 + !x1 + !x3)")
        .expect("the paper's formula is well-formed")
}

/// The Theorem 2.1 instance of Figure 1.
pub fn figure1() -> thm2_1::Thm21 {
    thm2_1::reduce(&paper_formula())
}

/// The Theorem 2.2 instance of Figure 2.
pub fn figure2() -> thm2_2::Thm22 {
    thm2_2::reduce(&paper_formula())
}

/// A concrete Theorem 2.5 instance in the shape of Figure 3 (the paper's
/// figure is schematic): sets `S1 = {x1, x3}`, `S2 = {x2, x3}`,
/// `S3 = {x1, x2}` over three elements.
pub fn figure3() -> thm2_5::Thm25 {
    let hs = HittingSet::new(
        3,
        vec![
            BTreeSet::from([0, 2]),
            BTreeSet::from([1, 2]),
            BTreeSet::from([0, 1]),
        ],
    )
    .expect("valid instance");
    thm2_5::reduce(&hs)
}

/// Render a figure's relations and view as the aligned text tables the
/// report binaries print.
pub fn render_instance(inst: &crate::reductions::ReducedInstance) -> String {
    let mut out = String::new();
    for rel in inst.db.relations() {
        out.push_str(&rel.to_table_string());
        out.push('\n');
    }
    let view = eval(&inst.query, &inst.db).expect("figure instances evaluate");
    out.push_str(&view.to_table_string(&format!("{}", inst.query)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::tuple;

    #[test]
    fn figure1_matches_the_paper_exactly() {
        let fig = figure1();
        let db = &fig.instance.db;
        // R1 as printed in Figure 1 (sorted; the paper lists a-rows then
        // a2-rows).
        let r1_expected = "R1\n\
            A   B\n\
            a   x1\n\
            a   x2\n\
            a   x3\n\
            a   x4\n\
            a   x5\n\
            a2  x2\n\
            a2  x4\n\
            a2  x5\n";
        assert_eq!(db.get("R1").unwrap().to_table_string(), r1_expected);
        // R2 as printed (sorted here; same content as the paper's listing).
        let r2 = db.get("R2").unwrap();
        assert_eq!(r2.len(), 11);
        for (b, c) in [
            ("x1", "c"),
            ("x2", "c"),
            ("x3", "c"),
            ("x4", "c"),
            ("x5", "c"),
            ("x1", "c1"),
            ("x2", "c1"),
            ("x3", "c1"),
            ("x4", "c3"),
            ("x1", "c3"),
            ("x3", "c3"),
        ] {
            assert!(r2.contains(&tuple([b, c])), "R2 missing ({b}, {c})");
        }
        // The view table of Figure 1.
        let view = dap_relalg::eval(&fig.instance.query, db).unwrap();
        let expected: Vec<_> = [
            ("a", "c"),
            ("a", "c1"),
            ("a", "c3"),
            ("a2", "c"),
            ("a2", "c1"),
            ("a2", "c3"),
        ]
        .iter()
        .map(|(a, c)| tuple([*a, *c]))
        .collect();
        assert_eq!(view.tuples, expected);
    }

    #[test]
    fn figure2_matches_the_paper_exactly() {
        let fig = figure2();
        let view = dap_relalg::eval(&fig.instance.query, &fig.instance.db).unwrap();
        // Figure 2's output table: (c1,F), (T,c2), (c3,F), (T,F).
        let expected: BTreeSet<_> = [
            tuple(["c1", "F"]),
            tuple(["T", "c2"]),
            tuple(["c3", "F"]),
            tuple(["T", "F"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(view.tuple_set(), expected);
        // 2(m+n) = 16 relations, all unary with one tuple.
        assert_eq!(fig.instance.db.relation_count(), 16);
        for rel in fig.instance.db.relations() {
            assert_eq!(rel.len(), 1);
            assert_eq!(rel.schema().arity(), 1);
        }
    }

    #[test]
    fn figure3_shapes() {
        let fig = figure3();
        let db = &fig.instance.db;
        let r0 = db.get("R0").unwrap();
        assert_eq!(r0.schema().to_string(), "(S, A1, A2, A3)");
        // S1 = {x1, x3} → (s1, x1, d, x3).
        assert!(r0.contains(&tuple(["s1", "x1", "d", "x3"])));
        assert!(r0.contains(&tuple(["s2", "d", "x2", "x3"])));
        assert!(r0.contains(&tuple(["s3", "x1", "x2", "d"])));
        // R1 = (x1, α0, c), (d, α1, c), …, (d, α3, c).
        let r1 = db.get("R1").unwrap();
        assert!(r1.contains(&tuple(["x1", "alpha0", "c"])));
        assert!(r1.contains(&tuple(["d", "alpha1", "c"])));
        assert!(r1.contains(&tuple(["d", "alpha3", "c"])));
        assert_eq!(r1.len(), 4);
    }

    #[test]
    fn render_produces_all_tables() {
        let fig = figure1();
        let text = render_instance(&fig.instance);
        assert!(text.contains("R1\n"));
        assert!(text.contains("R2\n"));
        assert!(text.contains("project(join(scan R1, scan R2), [A, C])"));
    }

    #[test]
    fn paper_formula_signs() {
        let f = paper_formula();
        assert_eq!(f.clauses.len(), 3);
        assert!(!f.clauses[0].positive);
        assert!(f.clauses[1].positive);
        assert!(!f.clauses[2].positive);
    }
}
