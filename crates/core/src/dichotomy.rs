//! The paper's dichotomy tables and the solver dispatcher.
//!
//! Sections 2.1, 2.2 and 3.1 each close with a table classifying SPJU
//! subclasses as poly-time or NP-hard. This module encodes those tables
//! ([`complexity`], [`paper_table`]) and provides dispatchers that route a
//! problem instance to the best applicable solver — the paper's algorithms
//! for the tractable classes, exact search otherwise.

use crate::deletion::chain::chain_min_source_deletion;
use crate::deletion::source_side_effect::{
    min_source_deletion, sj_source_deletion, spu_source_deletion,
};
use crate::deletion::view_side_effect::{
    min_view_side_effects, sj_view_deletion, sj_view_deletion_in, spu_view_deletion, ExactOptions,
};
use crate::deletion::{Deletion, DeletionContext};
use crate::error::Result;
use crate::placement::generic::{min_side_effect_placement, PlacementIndex};
use crate::placement::sju::sju_placement;
use crate::placement::spu::spu_placement;
use crate::placement::Placement;
use dap_provenance::ViewLoc;
use dap_relalg::{detect_chain_join, Database, OpFootprint, ParPool, Query, Tuple};
use std::fmt;

/// The two sides of the dichotomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Complexity {
    /// Solvable in polynomial time.
    PolyTime,
    /// NP-hard (and for minimum source deletions, set-cover-hard to
    /// approximate).
    NpHard,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::PolyTime => write!(f, "P"),
            Complexity::NpHard => write!(f, "NP-hard"),
        }
    }
}

/// The three problems the paper classifies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Problem {
    /// §2.1: does a side-effect-free view deletion exist / minimize `|ΔV|`.
    ViewSideEffect,
    /// §2.2: minimize the number of source deletions.
    SourceSideEffect,
    /// §3.1: side-effect-free annotation placement.
    AnnotationPlacement,
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Problem::ViewSideEffect => write!(f, "view side-effect (deletion)"),
            Problem::SourceSideEffect => write!(f, "source side-effect (deletion)"),
            Problem::AnnotationPlacement => write!(f, "annotation placement"),
        }
    }
}

/// The complexity of `problem` for queries with footprint `fp`, per the
/// paper's three tables. Renaming (δ) never changes the class.
pub fn complexity(problem: Problem, fp: &OpFootprint) -> Complexity {
    match problem {
        // §2.1 and §2.2 share the boundary: hard iff join combines with
        // projection or union; SPU (no join) and SJ (join only) are in P.
        Problem::ViewSideEffect | Problem::SourceSideEffect => {
            if fp.join && (fp.project || fp.union_) {
                Complexity::NpHard
            } else {
                Complexity::PolyTime
            }
        }
        // §3.1: hard iff projection and join are combined; SJU and SPU are
        // in P.
        Problem::AnnotationPlacement => {
            if fp.join && fp.project {
                Complexity::NpHard
            } else {
                Complexity::PolyTime
            }
        }
    }
}

/// A row of one of the paper's tables: the query-class label and its
/// complexity.
pub type TableRow = (&'static str, Complexity);

/// The exact rows of the paper's table for `problem`, in the paper's order.
pub fn paper_table(problem: Problem) -> Vec<TableRow> {
    match problem {
        Problem::ViewSideEffect | Problem::SourceSideEffect => vec![
            ("Queries involving PJ", Complexity::NpHard),
            ("Queries involving JU", Complexity::NpHard),
            ("SPU", Complexity::PolyTime),
            ("SJ", Complexity::PolyTime),
        ],
        Problem::AnnotationPlacement => vec![
            ("Queries involving PJ", Complexity::NpHard),
            ("SJU", Complexity::PolyTime),
            ("SPU", Complexity::PolyTime),
        ],
    }
}

/// Which solver the dispatcher chose (returned for reporting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolverKind {
    /// Theorem 2.3 / 2.8 / 3.3 linear scan (SPU).
    Spu,
    /// Theorem 2.4 / 2.9 component scan (SJ).
    Sj,
    /// Theorem 3.4 per-branch counting (SJU).
    Sju,
    /// Theorem 2.6 min-cut (chain joins).
    ChainMinCut,
    /// §2.1.1 keyed fast path (FDs make witnesses unique).
    Keyed,
    /// Exact search over the witness hypergraph (NP-hard classes).
    ExactSearch,
    /// The unified 0/1-ILP solver ([`crate::ilp`]) — one encoding for
    /// every variant, including the weighted and multi-target
    /// generalizations no specialized solver expresses.
    Ilp,
    /// Generic where-provenance placement.
    GenericPlacement,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverKind::Spu => write!(f, "SPU linear scan (Thm 2.3/2.8/3.3)"),
            SolverKind::Sj => write!(f, "SJ component scan (Thm 2.4/2.9)"),
            SolverKind::Sju => write!(f, "SJU branch counting (Thm 3.4)"),
            SolverKind::ChainMinCut => write!(f, "chain-join min-cut (Thm 2.6)"),
            SolverKind::Keyed => write!(f, "keyed fast path (§2.1.1 FDs)"),
            SolverKind::ExactSearch => write!(f, "exact witness-hypergraph search"),
            SolverKind::Ilp => write!(f, "unified 0/1-ILP (pseudo-Boolean branch-and-bound)"),
            SolverKind::GenericPlacement => write!(f, "generic where-provenance placement"),
        }
    }
}

/// Delete `target` with minimum view side effects, dispatching to the
/// polynomial algorithm when the query class has one.
pub fn delete_min_view_side_effects(
    q: &Query,
    db: &Database,
    target: &Tuple,
) -> Result<(Deletion, SolverKind)> {
    let fp = OpFootprint::of(q);
    if !fp.join && !fp.rename {
        return Ok((spu_view_deletion(q, db, target)?, SolverKind::Spu));
    }
    if !fp.project && !fp.union_ {
        return Ok((sj_view_deletion(q, db, target)?, SolverKind::Sj));
    }
    let sol = min_view_side_effects(q, db, target, &ExactOptions::default())?;
    Ok((sol, SolverKind::ExactSearch))
}

/// Delete `target` with minimum source deletions, dispatching to the
/// polynomial algorithm when the query class has one (including the chain
/// min-cut special case).
pub fn delete_min_source(
    q: &Query,
    db: &Database,
    target: &Tuple,
) -> Result<(Deletion, SolverKind)> {
    let fp = OpFootprint::of(q);
    if !fp.join && !fp.rename {
        return Ok((spu_source_deletion(q, db, target)?, SolverKind::Spu));
    }
    if !fp.project && !fp.union_ {
        return Ok((sj_source_deletion(q, db, target)?, SolverKind::Sj));
    }
    if detect_chain_join(q, &db.catalog()).is_some() {
        return Ok((
            chain_min_source_deletion(q, db, target)?,
            SolverKind::ChainMinCut,
        ));
    }
    Ok((min_source_deletion(q, db, target)?, SolverKind::ExactSearch))
}

/// Batched [`delete_min_view_side_effects`]: solve many view-deletion
/// targets over the same `(Q, S)` with the provenance work shared **and
/// the targets fanned out across the process-default [`ParPool`]**. The
/// classes that materialize provenance (SJ and the exact search) build one
/// [`DeletionContext`] — a single annotated evaluation plus one hypergraph
/// skeleton — and stamp per-thread instances/indexes from it; SPU never
/// materializes provenance and dispatches per target as before. Identical
/// results to the sequential (one-thread) dispatch in target order.
pub fn delete_min_view_side_effects_many(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
) -> Result<Vec<(Deletion, SolverKind)>> {
    delete_min_view_side_effects_many_with(q, db, targets, ParPool::global())
}

/// [`delete_min_view_side_effects_many`] with an explicit pool. Each
/// target solves independently against the immutable shared context (its
/// own stamped [`crate::deletion::WitnessIndex`] lives on the worker's
/// stack), so every pool size returns the same `Vec` — pinned by
/// `tests/prop_parallel.rs`.
pub fn delete_min_view_side_effects_many_with(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
    pool: ParPool,
) -> Result<Vec<(Deletion, SolverKind)>> {
    let fp = OpFootprint::of(q);
    if !fp.join && !fp.rename {
        return pool
            .par_map(targets, |t| {
                Ok((spu_view_deletion(q, db, t)?, SolverKind::Spu))
            })
            .into_iter()
            .collect();
    }
    let ctx = DeletionContext::new_with(q, db, pool)?;
    if !fp.project && !fp.union_ {
        return pool
            .par_map(targets, |t| {
                Ok((sj_view_deletion_in(&ctx, t)?, SolverKind::Sj))
            })
            .into_iter()
            .collect();
    }
    let opts = ExactOptions::default();
    // Target-level fan-out; each solve stays sequential inside (nesting
    // the first-level branch fan-out would oversubscribe the pool).
    pool.par_map(targets, |t| {
        let (_, mut idx) = ctx.instance_and_index(t)?;
        Ok((
            crate::deletion::view_side_effect::min_view_side_effects_on(&mut idx, &opts)?,
            SolverKind::ExactSearch,
        ))
    })
    .into_iter()
    .collect()
}

/// Batched [`delete_min_source`]: one shared [`DeletionContext`] for the
/// classes that materialize provenance, targets fanned out across the
/// process-default [`ParPool`] (see
/// [`delete_min_view_side_effects_many`]); SPU and the chain min-cut
/// dispatch per target.
pub fn delete_min_source_many(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
) -> Result<Vec<(Deletion, SolverKind)>> {
    delete_min_source_many_with(q, db, targets, ParPool::global())
}

/// [`delete_min_source_many`] with an explicit pool; identical results
/// for every pool size.
pub fn delete_min_source_many_with(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
    pool: ParPool,
) -> Result<Vec<(Deletion, SolverKind)>> {
    let fp = OpFootprint::of(q);
    if !fp.join && !fp.rename {
        return pool
            .par_map(targets, |t| {
                Ok((spu_source_deletion(q, db, t)?, SolverKind::Spu))
            })
            .into_iter()
            .collect();
    }
    if fp.project || fp.union_ {
        // Both arms share one context — the chain min-cut reads the same
        // materialized why-provenance the exact search does (and stays
        // consistent with the single-target and serving-loop dispatches).
        let ctx = DeletionContext::new_with(q, db, pool)?;
        if detect_chain_join(q, &db.catalog()).is_some() {
            return pool
                .par_map(targets, |t| {
                    Ok((ctx.chain_min_source_deletion(t)?, SolverKind::ChainMinCut))
                })
                .into_iter()
                .collect();
        }
        return pool
            .par_map(targets, |t| {
                Ok((ctx.min_source_deletion(t)?, SolverKind::ExactSearch))
            })
            .into_iter()
            .collect();
    }
    // SJ: Thm 2.9 = Thm 2.4's component scan, shared through the context.
    let ctx = DeletionContext::new_with(q, db, pool)?;
    pool.par_map(targets, |t| {
        Ok((sj_view_deletion_in(&ctx, t)?, SolverKind::Sj))
    })
    .into_iter()
    .collect()
}

/// The **apply-and-re-solve serving loop** over one maintained
/// [`DeletionContext`]: solve each target with minimum view side effects,
/// **commit** its deletion (the context pushes it through the materialized
/// plan and patches the why-provenance and touch skeleton in
/// `O(affected)`), and solve the next target against the updated view.
/// Targets that an earlier commit has already removed from the view come
/// back as `None` — there is nothing left to delete for them.
///
/// Unlike [`delete_min_view_side_effects_many`] (which answers independent
/// what-if questions over the *same* view), the loop's turns are data
/// dependent, so parallelism lives inside each turn (the exact search's
/// branch fan-out), not across turns. SPU targets take the Thm 2.3 linear
/// path ([`DeletionContext::spu_view_deletion`]) and SJ targets the
/// Thm 2.4 component scan — same solutions the exact search degenerates
/// to, read straight off the maintained context. Everything else solves
/// via [`DeletionContext::min_view_side_effects_turn`], which keeps each
/// target's [`crate::deletion::WitnessIndex`] warm (patched in place)
/// across turns. (The chain min-cut is a *source*-objective solver; for
/// the view objective chain queries take the exact turn like any other PJ
/// class.)
pub fn delete_min_view_side_effects_apply_many(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
) -> Result<Vec<Option<Deletion>>> {
    let opts = ExactOptions::default();
    serve_apply_loop(q, db, targets, |ctx, t| {
        ctx.min_view_side_effects_turn(t, &opts)
    })
}

/// The apply-and-re-solve loop for the **source** side-effect objective:
/// like [`delete_min_view_side_effects_apply_many`], but targets outside
/// the SPU/SJ fast paths solve with
/// [`DeletionContext::min_source_deletion_turn`] (cached indexes again)
/// before their deletion is committed — except chain joins, which take
/// the **maintenance-aware** Thm 2.6 min-cut
/// ([`DeletionContext::chain_min_source_turn`]): polynomial where the
/// exact turn is NP-hard, and solved against the context's patched
/// why-provenance, never the stale original database. The fast paths
/// apply equally: SPU's unique deletion is simultaneously both optima
/// (Thm 2.8), and SJ's Thm 2.9 component scan already returns the size-1
/// minimum.
pub fn delete_min_source_apply_many(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
) -> Result<Vec<Option<Deletion>>> {
    let chain = detect_chain_join(q, &db.catalog()).is_some();
    serve_apply_loop(q, db, targets, move |ctx, t| {
        if chain {
            ctx.chain_min_source_turn(t)
        } else {
            ctx.min_source_deletion_turn(t)
        }
    })
}

/// The shared driver of both apply-and-re-solve loops: per-class routing
/// (SPU linear / SJ component scan / `exact_turn` for the rest), one
/// commit per live target, `None` for targets an earlier commit already
/// removed. Keeping the routing here — one point of maintenance — is
/// what keeps the two objectives' loops from drifting apart.
fn serve_apply_loop(
    q: &Query,
    db: &Database,
    targets: &[Tuple],
    mut exact_turn: impl FnMut(&mut DeletionContext, &Tuple) -> Result<Deletion>,
) -> Result<Vec<Option<Deletion>>> {
    let fp = OpFootprint::of(q);
    let mut ctx = DeletionContext::new(q, db)?;
    let mut out = Vec::with_capacity(targets.len());
    for t in targets {
        if !ctx.contains(t) {
            out.push(None);
            continue;
        }
        let sol = if !fp.join && !fp.rename {
            ctx.spu_view_deletion(t)?
        } else if !fp.project && !fp.union_ {
            sj_view_deletion_in(&ctx, t)?
        } else {
            exact_turn(&mut ctx, t)?
        };
        ctx.apply_delete(&sol.deletions);
        out.push(Some(sol));
    }
    Ok(out)
}

/// Like [`delete_min_view_side_effects`], but additionally aware of
/// declared functional dependencies: when the §2.1.1 keyed condition holds,
/// the polynomial fast path is used even though the bare query class is
/// NP-hard.
pub fn delete_min_view_side_effects_with_fds(
    q: &Query,
    db: &Database,
    fds: &dap_relalg::FdCatalog,
    target: &Tuple,
) -> Result<(Deletion, SolverKind)> {
    if crate::deletion::keyed::is_keyed(q, db, fds)? {
        let sol = crate::deletion::keyed::keyed_view_deletion(q, db, fds, target)?;
        return Ok((sol, SolverKind::Keyed));
    }
    delete_min_view_side_effects(q, db, target)
}

/// Place an annotation reaching `target` with minimum side effects,
/// dispatching to the polynomial algorithm when the query class has one.
/// For the generic class [`min_side_effect_placement`] inverts the batched
/// where-provenance only for this target's candidates — it does not build
/// the whole [`PlacementIndex`].
pub fn place_annotation(
    q: &Query,
    db: &Database,
    target: &ViewLoc,
) -> Result<(Placement, SolverKind)> {
    match placement_solver_for(q) {
        SolverKind::Spu => Ok((spu_placement(q, db, target)?, SolverKind::Spu)),
        SolverKind::Sju => Ok((sju_placement(q, db, target)?, SolverKind::Sju)),
        _ => Ok((
            min_side_effect_placement(q, db, target)?,
            SolverKind::GenericPlacement,
        )),
    }
}

/// The single dispatch rule shared by [`place_annotation`] and
/// [`place_annotations`]: SPU → Thm 3.3 scan, SJU → Thm 3.4 counting,
/// everything else → the generic engine-backed solver.
fn placement_solver_for(q: &Query) -> SolverKind {
    let fp = OpFootprint::of(q);
    if !fp.join && !fp.rename {
        SolverKind::Spu
    } else if !fp.project {
        SolverKind::Sju
    } else {
        SolverKind::GenericPlacement
    }
}

/// Batched version of [`place_annotation`]: solve many target locations
/// over the same `(Q, S)` with the work shared across targets. For the
/// generic (NP-hard) class this builds the annotated-evaluation placement
/// index **once** — one tree walk for the whole batch — instead of one per
/// target; the polynomial classes dispatch per target as before (they never
/// materialize provenance).
pub fn place_annotations(
    q: &Query,
    db: &Database,
    targets: &[ViewLoc],
) -> Result<(Vec<Placement>, SolverKind)> {
    place_annotations_with(q, db, targets, ParPool::global())
}

/// [`place_annotations`] with an explicit [`ParPool`]: the per-target
/// solves are independent, so the batch shards across the pool and
/// recombines in index order — placements (and which error surfaces, on
/// failure: the lowest-index one) are bit-identical for every pool size,
/// and a one-thread pool runs the exact sequential path. The shared
/// [`PlacementIndex`] for the generic class is still built once, before
/// the fan-out.
pub fn place_annotations_with(
    q: &Query,
    db: &Database,
    targets: &[ViewLoc],
    pool: ParPool,
) -> Result<(Vec<Placement>, SolverKind)> {
    match placement_solver_for(q) {
        SolverKind::Spu => {
            let sols = pool
                .par_map(targets, |t| spu_placement(q, db, t))
                .into_iter()
                .collect::<Result<_>>()?;
            Ok((sols, SolverKind::Spu))
        }
        SolverKind::Sju => {
            let sols = pool
                .par_map(targets, |t| sju_placement(q, db, t))
                .into_iter()
                .collect::<Result<_>>()?;
            Ok((sols, SolverKind::Sju))
        }
        _ => {
            let index = PlacementIndex::build(q, db)?;
            let sols = pool
                .par_map(targets, |t| index.place(t))
                .into_iter()
                .collect::<Result<_>>()?;
            Ok((sols, SolverKind::GenericPlacement))
        }
    }
}

/// Render one of the paper's tables as aligned text (used by the report
/// binaries and EXPERIMENTS.md).
pub fn format_paper_table(problem: Problem) -> String {
    let rows = paper_table(problem);
    let header = match problem {
        Problem::ViewSideEffect => "Deciding whether there is a side-effect-free deletion",
        Problem::SourceSideEffect => "Finding the minimum source deletions",
        Problem::AnnotationPlacement => "Deciding whether there is a side-effect-free annotation",
    };
    let width = rows
        .iter()
        .map(|(c, _)| c.len())
        .max()
        .unwrap_or(0)
        .max("Query class".len());
    let mut out = String::new();
    out.push_str(&format!(
        "{:width$}  {}\n",
        "Query class",
        header,
        width = width
    ));
    for (class, cx) in rows {
        out.push_str(&format!("{class:width$}  {cx}\n", width = width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fp_of(text: &str) -> OpFootprint {
        OpFootprint::of(&parse_query(text).unwrap())
    }

    #[test]
    fn deletion_boundary_matches_paper() {
        // PJ and JU are hard for both deletion problems.
        let pj = fp_of("project(join(scan R, scan S), [A])");
        let ju = fp_of("union(join(scan R, scan S), scan T)");
        let spu = fp_of("union(project(select(scan R, A = 1), [A]), scan T)");
        let sj = fp_of("select(join(scan R, scan S), A = 1)");
        for problem in [Problem::ViewSideEffect, Problem::SourceSideEffect] {
            assert_eq!(complexity(problem, &pj), Complexity::NpHard);
            assert_eq!(complexity(problem, &ju), Complexity::NpHard);
            assert_eq!(complexity(problem, &spu), Complexity::PolyTime);
            assert_eq!(complexity(problem, &sj), Complexity::PolyTime);
        }
    }

    #[test]
    fn annotation_boundary_matches_paper() {
        let pj = fp_of("project(join(scan R, scan S), [A])");
        let ju = fp_of("union(join(scan R, scan S), scan T)");
        let sju = fp_of("select(join(scan R, scan S), A = 1)");
        let spu = fp_of("project(select(scan R, A = 1), [A])");
        assert_eq!(
            complexity(Problem::AnnotationPlacement, &pj),
            Complexity::NpHard
        );
        // JU without projection is polynomial for annotation — the class
        // that flips between the two problems.
        assert_eq!(
            complexity(Problem::AnnotationPlacement, &ju),
            Complexity::PolyTime
        );
        assert_eq!(
            complexity(Problem::AnnotationPlacement, &sju),
            Complexity::PolyTime
        );
        assert_eq!(
            complexity(Problem::AnnotationPlacement, &spu),
            Complexity::PolyTime
        );
    }

    #[test]
    fn rename_never_changes_the_class() {
        let with = fp_of("rename(project(join(scan R, scan S), [A]), {A -> B})");
        let without = fp_of("project(join(scan R, scan S), [A])");
        for problem in [
            Problem::ViewSideEffect,
            Problem::SourceSideEffect,
            Problem::AnnotationPlacement,
        ] {
            assert_eq!(complexity(problem, &with), complexity(problem, &without));
        }
    }

    #[test]
    fn paper_tables_have_expected_shape() {
        assert_eq!(paper_table(Problem::ViewSideEffect).len(), 4);
        assert_eq!(paper_table(Problem::SourceSideEffect).len(), 4);
        assert_eq!(paper_table(Problem::AnnotationPlacement).len(), 3);
        let rendered = format_paper_table(Problem::ViewSideEffect);
        assert!(rendered.contains("Queries involving PJ"));
        assert!(rendered.contains("NP-hard"));
        assert!(rendered.contains("SPU"));
    }

    #[test]
    fn dispatchers_choose_the_expected_solver() {
        let db = parse_database(
            "relation R(A, B) { (a, x) }
             relation S(B, C) { (x, c) }",
        )
        .unwrap();

        // SPU → Spu.
        let q = parse_query("project(scan R, [A])").unwrap();
        let (_, kind) = delete_min_view_side_effects(&q, &db, &tuple(["a"])).unwrap();
        assert_eq!(kind, SolverKind::Spu);
        let (_, kind) = delete_min_source(&q, &db, &tuple(["a"])).unwrap();
        assert_eq!(kind, SolverKind::Spu);
        let (_, kind) = place_annotation(&q, &db, &ViewLoc::new(tuple(["a"]), "A")).unwrap();
        assert_eq!(kind, SolverKind::Spu);

        // SJ → Sj / Sju.
        let q = parse_query("join(scan R, scan S)").unwrap();
        let t = tuple(["a", "x", "c"]);
        let (_, kind) = delete_min_view_side_effects(&q, &db, &t).unwrap();
        assert_eq!(kind, SolverKind::Sj);
        let (_, kind) = delete_min_source(&q, &db, &t).unwrap();
        assert_eq!(kind, SolverKind::Sj);
        let (_, kind) = place_annotation(&q, &db, &ViewLoc::new(t, "A")).unwrap();
        assert_eq!(kind, SolverKind::Sju);

        // Chain PJ → ChainMinCut for source, ExactSearch for view.
        let q = parse_query("project(join(scan R, scan S), [A, C])").unwrap();
        let t = tuple(["a", "c"]);
        let (_, kind) = delete_min_source(&q, &db, &t).unwrap();
        assert_eq!(kind, SolverKind::ChainMinCut);
        let (_, kind) = delete_min_view_side_effects(&q, &db, &t).unwrap();
        assert_eq!(kind, SolverKind::ExactSearch);
        let (_, kind) = place_annotation(&q, &db, &ViewLoc::new(tuple(["a", "c"]), "A")).unwrap();
        assert_eq!(kind, SolverKind::GenericPlacement);
    }

    #[test]
    fn batch_placement_agrees_with_single_dispatch() {
        let db = parse_database(
            "relation R(A, B) { (a, x), (a2, x) }
             relation S(B, C) { (x, c), (x, c2) }",
        )
        .unwrap();
        for text in [
            "project(scan R, [A])",                  // SPU
            "join(scan R, scan S)",                  // SJU
            "project(join(scan R, scan S), [A, C])", // generic PJ
        ] {
            let q = parse_query(text).unwrap();
            let view = dap_relalg::eval(&q, &db).unwrap();
            let targets: Vec<ViewLoc> = view
                .tuples
                .iter()
                .flat_map(|t| {
                    view.schema
                        .attrs()
                        .iter()
                        .map(|a| ViewLoc::new(t.clone(), a.clone()))
                        .collect::<Vec<_>>()
                })
                .collect();
            let (batch, batch_kind) = place_annotations(&q, &db, &targets).unwrap();
            assert_eq!(batch.len(), targets.len());
            for (target, sol) in targets.iter().zip(&batch) {
                let (single, kind) = place_annotation(&q, &db, target).unwrap();
                assert_eq!(kind, batch_kind, "query {text}");
                assert_eq!(sol.cost(), single.cost(), "query {text} target {target}");
            }
        }
    }

    #[test]
    fn apply_many_serves_targets_against_the_maintained_view() {
        let db = parse_database(
            "relation R(A, B) { (a, x), (a2, x) }
             relation S(B, C) { (x, c), (x, c2) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R, scan S), [A, C])").unwrap();
        let view = dap_relalg::eval(&q, &db).unwrap();
        let sols = delete_min_view_side_effects_apply_many(&q, &db, &view.tuples).unwrap();
        assert_eq!(sols.len(), view.len());
        assert!(sols[0].is_some(), "first target always solvable");
        // Every committed deletion accumulates; at the end the view is
        // empty under the union of all deletion sets.
        let all: std::collections::BTreeSet<_> = sols
            .iter()
            .flatten()
            .flat_map(|d| d.deletions.iter().cloned())
            .collect();
        let after = dap_relalg::eval(&q, &db.without(&all)).unwrap();
        assert!(after.is_empty(), "serving loop cleared every target");
        // Targets removed as an earlier side effect come back as None —
        // and at least one None appears here, since every deletion of
        // (a, c) side-effects a neighbor.
        assert!(sols.iter().any(Option::is_none));
        // The source-objective loop clears the view too.
        let sols = delete_min_source_apply_many(&q, &db, &view.tuples).unwrap();
        let all: std::collections::BTreeSet<_> = sols
            .iter()
            .flatten()
            .flat_map(|d| d.deletions.iter().cloned())
            .collect();
        assert!(dap_relalg::eval(&q, &db.without(&all)).unwrap().is_empty());
    }

    #[test]
    fn source_apply_loop_serves_chain_targets_against_the_patched_view() {
        use crate::deletion::source_side_effect::min_source_deletion;
        let db = parse_database(
            "relation R1(A, B) { (a, b1), (a, b2) }
             relation R2(B, C) { (b1, c1), (b2, c2) }
             relation R3(C, D) { (c1, d), (c2, d), (c1, e) }",
        )
        .unwrap();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        assert!(detect_chain_join(&q, &db.catalog()).is_some());
        let view = dap_relalg::eval(&q, &db).unwrap();
        let sols = delete_min_source_apply_many(&q, &db, &view.tuples).unwrap();
        // Each turn's solution must be minimal and sound for the database
        // *as patched by the earlier commits* — exactly what the stale
        // free-function min-cut gets wrong.
        let mut acc = std::collections::BTreeSet::new();
        for (t, sol) in view.tuples.iter().zip(&sols) {
            let db_now = db.without(&acc);
            let Some(sol) = sol else {
                assert!(
                    !dap_relalg::eval(&q, &db_now).unwrap().contains(t),
                    "None only for targets earlier commits removed"
                );
                continue;
            };
            assert!(
                sol.deletions.is_disjoint(&acc),
                "serving loop proposed an already-deleted tuple for {t}"
            );
            let exact = min_source_deletion(&q, &db_now, t).unwrap();
            assert_eq!(
                sol.source_cost(),
                exact.source_cost(),
                "stale cut for {t} after commits {acc:?}"
            );
            assert!(!dap_relalg::eval(&q, &db_now.without(&sol.deletions))
                .unwrap()
                .contains(t));
            acc.extend(sol.deletions.iter().cloned());
        }
        // The batched what-if dispatcher stays on the (now context-backed)
        // chain arm and agrees with the single-shot dispatch.
        let batch = delete_min_source_many(&q, &db, &view.tuples).unwrap();
        for (t, (sol, kind)) in view.tuples.iter().zip(&batch) {
            assert_eq!(*kind, SolverKind::ChainMinCut);
            let (single, single_kind) = delete_min_source(&q, &db, t).unwrap();
            assert_eq!(single_kind, SolverKind::ChainMinCut);
            assert_eq!(sol.source_cost(), single.source_cost(), "target {t}");
        }
    }

    #[test]
    fn fd_aware_dispatcher_uses_keyed_path() {
        let db = parse_database(
            "relation Emp(eid, dept) { (e1, sales), (e2, eng) }
             relation Dept(dept, mgr) { (sales, ann), (eng, bob) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        let mut fds = dap_relalg::FdCatalog::new();
        fds.add_key(&db, "Emp", &["eid"]);
        fds.add_key(&db, "Dept", &["dept"]);
        let (sol, kind) =
            delete_min_view_side_effects_with_fds(&q, &db, &fds, &tuple(["e1", "ann"])).unwrap();
        assert_eq!(kind, SolverKind::Keyed);
        assert!(sol.is_side_effect_free());
        // Without FDs the same call falls back to the exact search.
        let (_, kind) = delete_min_view_side_effects_with_fds(
            &q,
            &db,
            &dap_relalg::FdCatalog::new(),
            &tuple(["e1", "ann"]),
        )
        .unwrap();
        assert_eq!(kind, SolverKind::ExactSearch);
    }

    #[test]
    fn dispatcher_solutions_are_correct() {
        let db = parse_database(
            "relation R(A, B) { (a, x), (a2, x) }
             relation S(B, C) { (x, c), (x, c2) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R, scan S), [A, C])").unwrap();
        let t = tuple(["a", "c"]);
        let (view_sol, _) = delete_min_view_side_effects(&q, &db, &t).unwrap();
        assert_eq!(view_sol.view_cost(), 1, "unavoidable side effect");
        let (src_sol, _) = delete_min_source(&q, &db, &t).unwrap();
        assert_eq!(src_sol.source_cost(), 1);
        let (placement, _) = place_annotation(&q, &db, &ViewLoc::new(t.clone(), "A")).unwrap();
        // The only candidate (R(a,x).A) also reaches (a,c2).A — one
        // unavoidable side effect.
        assert_eq!(placement.cost(), 1);
    }
}
