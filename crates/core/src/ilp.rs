//! **Unified 0/1-ILP deletion propagation** — every variant of the paper's
//! deletion problem as one pseudo-Boolean program over the witness
//! hypergraph.
//!
//! The specialized solvers in [`crate::deletion`] each exploit one slice of
//! the dichotomy: branch-and-bound over minimal hitting sets for the view
//! objective, set-cover branch-and-bound for the source objective, min-cut
//! for chain joins, closed forms for SPU / SJ. This module expresses the
//! *whole* family — minimum view side-effect, minimum source side-effect,
//! chain min-cut, plus generalizations the specialized stack does not
//! cover (per-tuple **weights** and **multi-tuple target sets**) — as a
//! single 0/1 integer linear program solved by [`dap_sat::pb`]'s
//! pseudo-Boolean branch-and-bound.
//!
//! ## The encoding
//!
//! One 0/1 variable `x_i` per support tuple (`x_i = 1` ⇔ delete it).
//!
//! * **Hitting constraints** — for every witness `w` of every target,
//!   `Σ_{i ∈ w} x_i ≥ 1`: each target loses all its witnesses.
//! * **Source objective** — minimize `Σ weight_i · x_i`.
//! * **View objective** — for every frontier tuple `f` (a non-target view
//!   tuple all of whose witnesses intersect the support) introduce a
//!   *death indicator* `y_f` and per-witness *survival* variables `s_w`
//!   with `s_w + x_i ≤ 1` for every member `i` of `w` (a witness survives
//!   only if no member is deleted) and `y_f + Σ_w s_w ≥ 1` (`f` is dead
//!   unless some witness survives). Minimizing
//!   `Σ_f B · y_f + Σ_i weight_i · x_i` with `B > Σ_i weight_i` orders
//!   solutions lexicographically: fewest (weighted) side effects first,
//!   cheapest deletion as the tie-break — exactly the specialized
//!   [`crate::deletion::view_side_effect`] objective when all weights
//!   are 1.
//!
//! Chain queries need no special casing: the chain min-cut instances are
//! hitting-set instances whose constraint matrix happens to be an interval
//! matrix, and the ILP solves them exactly like everything else. The
//! specialized solvers stay on as **differential oracles** — the property
//! tests in `tests/prop_ilp.rs` pin cost-identity on every dichotomy
//! class, and the `report_ilp` bench binary races the two stacks and
//! asserts identical optima per row.

use crate::deletion::index::WitnessIndex;
use crate::deletion::{Deletion, DeletionContext};
use crate::error::{CoreError, Result};
use dap_relalg::{Database, Query, Tid, Tuple};
use dap_sat::pb::{self, PbConstraint, PbProblem};
use std::collections::{BTreeSet, HashMap};

/// Knobs for the ILP solver.
#[derive(Clone, Debug)]
pub struct IlpOptions {
    /// Maximum branch-and-bound nodes before
    /// [`CoreError::BudgetExhausted`]. Defaults to unlimited.
    pub node_budget: u64,
}

impl Default for IlpOptions {
    fn default() -> IlpOptions {
        IlpOptions {
            node_budget: u64::MAX,
        }
    }
}

/// Which cost the ILP minimizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IlpObjective {
    /// Lexicographic (weighted view side-effects, then weighted deletion
    /// cost) — the paper's §2.1 problem, generalized.
    ViewSideEffects,
    /// Weighted source deletion cost — the paper's §2.2 problem,
    /// generalized.
    SourceDeletions,
}

/// One deletion-propagation problem for [`DeletionContext::solve_ilp`]:
/// which view tuples must go, which cost to minimize, and optional
/// per-source-tuple weights (unlisted tuples weigh 1).
#[derive(Clone, Debug)]
pub struct IlpRequest {
    /// View tuples that must all disappear (duplicates are ignored).
    pub targets: Vec<Tuple>,
    /// The cost to minimize.
    pub objective: IlpObjective,
    /// Per-tuple deletion weights; any tid not present weighs 1.
    pub weights: HashMap<Tid, u64>,
    /// Solver knobs.
    pub options: IlpOptions,
}

impl IlpRequest {
    /// A view-objective request over `targets` with unit weights.
    pub fn view(targets: impl IntoIterator<Item = Tuple>) -> IlpRequest {
        IlpRequest {
            targets: targets.into_iter().collect(),
            objective: IlpObjective::ViewSideEffects,
            weights: HashMap::new(),
            options: IlpOptions::default(),
        }
    }

    /// A source-objective request over `targets` with unit weights.
    pub fn source(targets: impl IntoIterator<Item = Tuple>) -> IlpRequest {
        IlpRequest {
            targets: targets.into_iter().collect(),
            objective: IlpObjective::SourceDeletions,
            weights: HashMap::new(),
            options: IlpOptions::default(),
        }
    }

    /// Override per-tuple weights (tids not listed keep weight 1).
    pub fn weighted(mut self, weights: impl IntoIterator<Item = (Tid, u64)>) -> IlpRequest {
        self.weights = weights.into_iter().collect();
        self
    }

    /// Cap the branch-and-bound at `nodes` search nodes.
    pub fn with_node_budget(mut self, nodes: u64) -> IlpRequest {
        self.options.node_budget = nodes;
        self
    }
}

/// The encoded hypergraph slice one ILP solve runs over: the (sorted)
/// support, its weights, the targets' witness slot-lists (the hitting
/// constraints), and the frontier tuples with their witness slot-lists
/// (the view-objective indicators).
struct IlpInstance {
    support: Vec<Tid>,
    slot_weights: Vec<u64>,
    target_witnesses: Vec<Vec<usize>>,
    frontier: Vec<(Tuple, Vec<Vec<usize>>)>,
}

impl IlpInstance {
    /// Encode `req`'s targets against `ctx`'s **current** (maintained)
    /// why-provenance and touch skeleton. Errors with
    /// [`CoreError::TargetNotInView`] if any target is missing from the
    /// patched view.
    fn from_context(ctx: &DeletionContext, req: &IlpRequest) -> Result<IlpInstance> {
        let mut targets: Vec<&Tuple> = Vec::new();
        for t in &req.targets {
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        let mut support_set: BTreeSet<Tid> = BTreeSet::new();
        let mut witness_lists: Vec<&[dap_provenance::Witness]> = Vec::new();
        for t in &targets {
            let ws = ctx
                .why()
                .witnesses_of(t)
                .ok_or_else(|| CoreError::TargetNotInView {
                    tuple: (*t).clone(),
                })?;
            support_set.extend(ws.iter().flatten().cloned());
            witness_lists.push(ws);
        }
        let support: Vec<Tid> = support_set.into_iter().collect();
        let slot_of = |tid: &Tid| support.binary_search(tid).ok();
        let target_witnesses: Vec<Vec<usize>> = witness_lists
            .iter()
            .flat_map(|ws| ws.iter())
            .map(|w| w.iter().filter_map(slot_of).collect::<Vec<usize>>())
            .collect();
        debug_assert!(
            target_witnesses.iter().all(|w| !w.is_empty()),
            "target witnesses lie within the union support"
        );
        // Frontier: candidates from the touch skeleton, minus the targets,
        // keeping only tuples whose *every* witness intersects the support
        // (anything else keeps a witness forever and cannot die).
        let mut frontier = Vec::new();
        'candidates: for t in ctx.candidates_touching(support.iter()) {
            if targets.contains(&t) {
                continue;
            }
            let Some(ws) = ctx.why().witnesses_of(t) else {
                continue;
            };
            let mut lists = Vec::with_capacity(ws.len());
            for w in ws {
                let slots: Vec<usize> = w.iter().filter_map(slot_of).collect();
                if slots.is_empty() {
                    continue 'candidates;
                }
                lists.push(slots);
            }
            frontier.push((t.clone(), lists));
        }
        Ok(IlpInstance::weigh(support, target_witnesses, frontier, req))
    }

    /// Encode a single-target problem straight off a stamped
    /// [`WitnessIndex`] — the same hypergraph the specialized solvers
    /// search, read through the index's lazy transpose.
    fn from_index(idx: &mut WitnessIndex, req: &IlpRequest) -> IlpInstance {
        let support = idx.support().to_vec();
        let target_witnesses: Vec<Vec<usize>> = (0..idx.target_witness_count())
            .map(|i| idx.target_witness_members(i).to_vec())
            .collect();
        let target_id = idx.target_id();
        let mut frontier = Vec::new();
        for id in 0..idx.frontier_len() {
            if id == target_id {
                continue;
            }
            let lists = idx.witness_slot_lists(id);
            if lists.is_empty() {
                continue; // retired by a serving-loop commit
            }
            frontier.push((idx.tuple_at(id).clone(), lists));
        }
        IlpInstance::weigh(support, target_witnesses, frontier, req)
    }

    fn weigh(
        support: Vec<Tid>,
        target_witnesses: Vec<Vec<usize>>,
        frontier: Vec<(Tuple, Vec<Vec<usize>>)>,
        req: &IlpRequest,
    ) -> IlpInstance {
        let slot_weights = support
            .iter()
            .map(|tid| req.weights.get(tid).copied().unwrap_or(1))
            .collect();
        IlpInstance {
            support,
            slot_weights,
            target_witnesses,
            frontier,
        }
    }

    /// Lower the instance to a [`PbProblem`], run [`pb::minimize`], and
    /// decode the assignment back into a [`Deletion`].
    fn solve(&self, objective: IlpObjective, options: &IlpOptions) -> Result<Deletion> {
        let n = self.support.len();
        let mut constraints: Vec<PbConstraint> = self
            .target_witnesses
            .iter()
            .map(|w| PbConstraint::at_least(w.iter().map(|&i| (i, 1)), 1))
            .collect();
        let mut obj: Vec<u64> = self.slot_weights.clone();
        if objective == IlpObjective::ViewSideEffects {
            // B must dominate any achievable deletion cost so the view
            // term is the primary key of the lexicographic objective.
            let big = self
                .slot_weights
                .iter()
                .try_fold(0u64, |a, &w| a.checked_add(w))
                .and_then(|s| s.checked_add(1))
                .expect("total deletion weight fits in u64");
            let mut next = n;
            for (_, lists) in &self.frontier {
                let y = next;
                next += 1;
                obj.push(big);
                let mut death = vec![(y, 1)];
                for list in lists {
                    let s = next;
                    next += 1;
                    obj.push(0);
                    for &slot in list {
                        constraints.push(PbConstraint::at_most([(s, 1), (slot, 1)], 1));
                    }
                    death.push((s, 1));
                }
                constraints.push(PbConstraint::at_least(death, 1));
            }
        }
        let problem = PbProblem {
            num_vars: obj.len(),
            constraints,
            objective: obj,
        };
        let opts = pb::PbOptions {
            node_budget: options.node_budget,
        };
        let solution = pb::minimize(&problem, &opts)
            .map_err(
                |pb::PbError::BudgetExhausted { budget }| CoreError::BudgetExhausted { budget },
            )?
            .expect("deleting the whole support removes every target");
        let deletions: BTreeSet<Tid> = (0..n)
            .filter(|&i| solution.assignment[i])
            .map(|i| self.support[i].clone())
            .collect();
        // Side effects come from a direct frontier scan over the chosen
        // deletion — the indicator variables only shape the objective.
        let chosen = &solution.assignment;
        let view_side_effects: BTreeSet<Tuple> = self
            .frontier
            .iter()
            .filter(|(_, lists)| {
                lists
                    .iter()
                    .all(|list| list.iter().any(|&slot| chosen[slot]))
            })
            .map(|(t, _)| t.clone())
            .collect();
        if objective == IlpObjective::ViewSideEffects {
            let big: u64 = self.slot_weights.iter().sum::<u64>() + 1;
            let weight: u64 = (0..n)
                .filter(|&i| chosen[i])
                .map(|i| self.slot_weights[i])
                .sum();
            debug_assert_eq!(
                solution.objective,
                big * view_side_effects.len() as u64 + weight,
                "indicators agree with the frontier scan"
            );
        }
        Ok(Deletion {
            deletions,
            view_side_effects,
        })
    }
}

impl DeletionContext {
    /// Solve an arbitrary [`IlpRequest`] — any dichotomy class, weighted
    /// tuples, multi-tuple target sets — against this context's current
    /// (maintained) view. Returns the optimal [`Deletion`]; side effects
    /// are reported unweighted (the weights steer the optimizer only).
    pub fn solve_ilp(&self, req: &IlpRequest) -> Result<Deletion> {
        IlpInstance::from_context(self, req)?.solve(req.objective, &req.options)
    }

    /// [`DeletionContext::min_view_side_effects`] through the unified ILP:
    /// single target, unit weights, identical optimum.
    pub fn min_view_side_effects_ilp(&self, target: &Tuple, opts: &IlpOptions) -> Result<Deletion> {
        let (_, mut idx) = self.instance_and_index(target)?;
        let req = IlpRequest::view([target.clone()]);
        IlpInstance::from_index(&mut idx, &req).solve(IlpObjective::ViewSideEffects, opts)
    }

    /// [`DeletionContext::min_source_deletion`] through the unified ILP:
    /// single target, unit weights, identical optimum.
    pub fn min_source_deletion_ilp(&self, target: &Tuple, opts: &IlpOptions) -> Result<Deletion> {
        let (_, mut idx) = self.instance_and_index(target)?;
        let req = IlpRequest::source([target.clone()]);
        IlpInstance::from_index(&mut idx, &req).solve(IlpObjective::SourceDeletions, opts)
    }

    /// [`DeletionContext::min_view_side_effects_ilp`] for the serving
    /// loop: reuses the per-target cached [`WitnessIndex`] (same cache as
    /// the specialized `*_turn` solvers — the stacks share warm state).
    pub fn min_view_side_effects_ilp_turn(
        &mut self,
        target: &Tuple,
        opts: &IlpOptions,
    ) -> Result<Deletion> {
        let mut idx = self.take_index(target)?;
        let req = IlpRequest::view([target.clone()]);
        let sol =
            IlpInstance::from_index(&mut idx, &req).solve(IlpObjective::ViewSideEffects, opts);
        self.cache_index(target, idx);
        sol
    }

    /// [`DeletionContext::min_source_deletion_ilp`] for the serving loop
    /// (cached-index variant).
    pub fn min_source_deletion_ilp_turn(
        &mut self,
        target: &Tuple,
        opts: &IlpOptions,
    ) -> Result<Deletion> {
        let mut idx = self.take_index(target)?;
        let req = IlpRequest::source([target.clone()]);
        let sol =
            IlpInstance::from_index(&mut idx, &req).solve(IlpObjective::SourceDeletions, opts);
        self.cache_index(target, idx);
        sol
    }
}

/// One-shot [`DeletionContext::solve_ilp`]: build the context, solve, drop.
pub fn solve_ilp(q: &Query, db: &Database, req: &IlpRequest) -> Result<Deletion> {
    DeletionContext::new(q, db)?.solve_ilp(req)
}

/// One-shot [`DeletionContext::min_view_side_effects_ilp`].
pub fn min_view_side_effects_ilp(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &IlpOptions,
) -> Result<Deletion> {
    DeletionContext::new(q, db)?.min_view_side_effects_ilp(target, opts)
}

/// One-shot [`DeletionContext::min_source_deletion_ilp`].
pub fn min_source_deletion_ilp(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &IlpOptions,
) -> Result<Deletion> {
    DeletionContext::new(q, db)?.min_source_deletion_ilp(target, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::view_side_effect::ExactOptions;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn ilp_matches_the_specialized_solvers_on_every_view_tuple() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        let opts = IlpOptions::default();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let exact_view = ctx
                .min_view_side_effects(&t, &ExactOptions::default())
                .unwrap();
            let ilp_view = ctx.min_view_side_effects_ilp(&t, &opts).unwrap();
            assert_eq!(ilp_view.view_cost(), exact_view.view_cost(), "{t}");
            let exact_src = ctx.min_source_deletion(&t).unwrap();
            let ilp_src = ctx.min_source_deletion_ilp(&t, &opts).unwrap();
            assert_eq!(ilp_src.source_cost(), exact_src.source_cost(), "{t}");
            // Solutions are sound, not just cost-identical.
            let inst = ctx.for_target(&t).unwrap();
            assert!(inst
                .verify_against_reevaluation(&ilp_view.deletions)
                .unwrap());
            assert!(inst
                .verify_against_reevaluation(&ilp_src.deletions)
                .unwrap());
        }
    }

    #[test]
    fn weights_steer_the_source_optimum() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        // (bob, report) is reachable via staff and via dev: cheapest unit
        // cut deletes one UserGroup row... unless we make it expensive.
        let t = tuple(["bob", "report"]);
        let unit = ctx.solve_ilp(&IlpRequest::source([t.clone()])).unwrap();
        assert_eq!(unit.source_cost(), 2);
        let bob_staff = db.tid_of("UserGroup", &tuple(["bob", "staff"])).unwrap();
        let bob_dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        let weighted = ctx
            .solve_ilp(
                &IlpRequest::source([t.clone()])
                    .weighted([(bob_staff.clone(), 10), (bob_dev.clone(), 10)]),
            )
            .unwrap();
        // The GroupFile pair (staff,report) + (dev,report) costs 2; the
        // UserGroup pair now costs 20. The optimizer must switch sides.
        assert_eq!(weighted.source_cost(), 2);
        assert!(!weighted.deletions.contains(&bob_staff));
        assert!(!weighted.deletions.contains(&bob_dev));
        let inst = ctx.for_target(&t).unwrap();
        assert!(inst
            .verify_against_reevaluation(&weighted.deletions)
            .unwrap());
    }

    #[test]
    fn multi_target_requests_cover_every_target() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        let targets = vec![tuple(["bob", "report"]), tuple(["bob", "main"])];
        let sol = ctx.solve_ilp(&IlpRequest::source(targets.clone())).unwrap();
        let db2 = db.without(&sol.deletions);
        let view2 = dap_relalg::eval(&q, &db2).unwrap();
        for t in &targets {
            assert!(!view2.contains(t), "{t} must be gone");
        }
        // Deleting (bob, dev) kills both derivations of main and one of
        // report; (bob, staff) or (staff, report) finishes report: cost 2.
        assert_eq!(sol.source_cost(), 2);
        // Side effects are measured against non-target view tuples only.
        for t in &sol.view_side_effects {
            assert!(!targets.contains(t));
        }
    }

    #[test]
    fn turn_variants_match_and_reuse_the_cache() {
        let (q, db) = fixture();
        let mut ctx = DeletionContext::new(&q, &db).unwrap();
        let opts = IlpOptions::default();
        let t = tuple(["bob", "report"]);
        let cold_view = ctx.min_view_side_effects_ilp(&t, &opts).unwrap();
        let turn_view = ctx.min_view_side_effects_ilp_turn(&t, &opts).unwrap();
        assert_eq!(cold_view, turn_view);
        assert_eq!(ctx.cached_index_count(), 1);
        let cold_src = ctx.min_source_deletion_ilp(&t, &opts).unwrap();
        let turn_src = ctx.min_source_deletion_ilp_turn(&t, &opts).unwrap();
        assert_eq!(cold_src, turn_src);
        assert_eq!(ctx.cached_index_count(), 1, "same target, same slot");
    }

    #[test]
    fn budget_exhaustion_surfaces_as_a_core_error() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        let req = IlpRequest::view([tuple(["bob", "report"])]).with_node_budget(1);
        assert!(matches!(
            ctx.solve_ilp(&req).unwrap_err(),
            CoreError::BudgetExhausted { budget: 1 }
        ));
    }

    #[test]
    fn context_and_index_builders_encode_the_same_problem() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let req = IlpRequest::view([t.clone()]);
            let a = IlpInstance::from_context(&ctx, &req).unwrap();
            let (_, mut idx) = ctx.instance_and_index(&t).unwrap();
            let mut b = IlpInstance::from_index(&mut idx, &req);
            assert_eq!(a.support, b.support, "{t}");
            assert_eq!(a.slot_weights, b.slot_weights, "{t}");
            let norm = |w: &mut Vec<Vec<usize>>| {
                for l in w.iter_mut() {
                    l.sort_unstable();
                }
                w.sort();
            };
            let mut aw = a.target_witnesses.clone();
            let mut bw = b.target_witnesses.clone();
            norm(&mut aw);
            norm(&mut bw);
            assert_eq!(aw, bw, "{t}");
            let mut af: Vec<(Tuple, Vec<Vec<usize>>)> = a.frontier.clone();
            af.sort_by(|x, y| x.0.cmp(&y.0));
            b.frontier.sort_by(|x, y| x.0.cmp(&y.0));
            for ((ta, mut wa), (tb, mut wb)) in af.into_iter().zip(b.frontier.clone()) {
                assert_eq!(ta, tb);
                norm(&mut wa);
                norm(&mut wb);
                assert_eq!(wa, wb, "{ta}");
            }
        }
    }

    #[test]
    fn missing_target_errors() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        assert!(matches!(
            ctx.solve_ilp(&IlpRequest::source([tuple(["zz", "zz"])]))
                .unwrap_err(),
            CoreError::TargetNotInView { .. }
        ));
    }
}
