//! Error type for the solver layer.

use dap_provenance::ViewLoc;
use dap_relalg::{RelalgError, Tuple};
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Everything that can go wrong posing or solving a deletion-propagation or
/// annotation-placement problem.
#[derive(Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying relational-algebra error (type checking, evaluation…).
    Relalg(RelalgError),
    /// The tuple asked to be deleted is not in the view.
    TargetNotInView {
        /// The missing tuple.
        tuple: Tuple,
    },
    /// The view location asked to be annotated does not exist (tuple not in
    /// the view, or attribute not in the view schema).
    TargetLocationNotInView {
        /// The missing location.
        loc: ViewLoc,
    },
    /// No source location propagates to the target view location. Per the
    /// paper this only happens for queries introducing constants, which the
    /// framework excludes — but a caller can still ask.
    NoCandidateLocation {
        /// The unreachable location.
        loc: ViewLoc,
    },
    /// A class-specific solver was invoked on a query outside its class.
    WrongClass {
        /// What the solver requires, e.g. `"SPU (join-free, rename-free)"`.
        expected: &'static str,
        /// The operator footprint actually found.
        found: String,
    },
    /// The chain-join solver was invoked on a non-chain query.
    NotAChain,
    /// The exact solver exceeded its search-node budget.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relalg(e) => write!(f, "{e}"),
            CoreError::TargetNotInView { tuple } => {
                write!(f, "tuple {tuple} is not in the view")
            }
            CoreError::TargetLocationNotInView { loc } => {
                write!(f, "view location {loc} does not exist")
            }
            CoreError::NoCandidateLocation { loc } => {
                write!(f, "no source location propagates to view location {loc}")
            }
            CoreError::WrongClass { expected, found } => {
                write!(
                    f,
                    "solver requires a {expected} query, found footprint {found}"
                )
            }
            CoreError::NotAChain => {
                write!(f, "query is not a chain join over distinct relations")
            }
            CoreError::BudgetExhausted { budget } => {
                write!(f, "exact search exceeded its node budget of {budget}")
            }
        }
    }
}

impl fmt::Debug for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoreError({self})")
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelalgError> for CoreError {
    fn from(e: RelalgError) -> Self {
        CoreError::Relalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: CoreError = RelalgError::UnknownRelation { rel: "R".into() }.into();
        assert!(e.to_string().contains("unknown relation"));
        let e = CoreError::TargetNotInView {
            tuple: dap_relalg::tuple(["a"]),
        };
        assert_eq!(e.to_string(), "tuple (a) is not in the view");
        let e = CoreError::WrongClass {
            expected: "SPU",
            found: "PJ".into(),
        };
        assert!(e.to_string().contains("SPU") && e.to_string().contains("PJ"));
        let e = CoreError::BudgetExhausted { budget: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e: CoreError = RelalgError::UnknownRelation { rel: "R".into() }.into();
        assert!(e.source().is_some());
        assert!(CoreError::NotAChain.source().is_none());
    }
}
