//! Error type for the solver layer.

use dap_provenance::ViewLoc;
use dap_relalg::{RelalgError, Tuple};
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Everything that can go wrong posing or solving a deletion-propagation or
/// annotation-placement problem.
#[derive(Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying relational-algebra error (type checking, evaluation…).
    Relalg(RelalgError),
    /// The tuple asked to be deleted is not in the view.
    TargetNotInView {
        /// The missing tuple.
        tuple: Tuple,
    },
    /// The view location asked to be annotated does not exist (tuple not in
    /// the view, or attribute not in the view schema).
    TargetLocationNotInView {
        /// The missing location.
        loc: ViewLoc,
    },
    /// No source location propagates to the target view location. Per the
    /// paper this only happens for queries introducing constants, which the
    /// framework excludes — but a caller can still ask.
    NoCandidateLocation {
        /// The unreachable location.
        loc: ViewLoc,
    },
    /// A class-specific solver was invoked on a query outside its class.
    WrongClass {
        /// What the solver requires, e.g. `"SPU (join-free, rename-free)"`.
        expected: &'static str,
        /// The operator footprint actually found.
        found: String,
    },
    /// The chain-join solver was invoked on a non-chain query.
    NotAChain,
    /// The exact solver exceeded its search-node budget.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// An I/O failure in the durability layer. `CoreError` is `Clone + Eq`
    /// (solver results carry it by value), so the underlying
    /// `std::io::Error` is rendered into `context` rather than stored.
    Io {
        /// What was being done and what the OS said, e.g.
        /// `"append to commit.log: No space left on device"`.
        context: String,
    },
    /// The commit log (or a snapshot file) failed validation: a checksum
    /// mismatch, a torn frame, or a semantically impossible record.
    /// Recovery truncates at `offset` and reports this — it never applies
    /// the bytes past it.
    CorruptLog {
        /// Byte offset of the first invalid frame.
        offset: u64,
        /// Human-readable diagnosis, e.g. `"crc mismatch"`.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relalg(e) => write!(f, "{e}"),
            CoreError::TargetNotInView { tuple } => {
                write!(f, "tuple {tuple} is not in the view")
            }
            CoreError::TargetLocationNotInView { loc } => {
                write!(f, "view location {loc} does not exist")
            }
            CoreError::NoCandidateLocation { loc } => {
                write!(f, "no source location propagates to view location {loc}")
            }
            CoreError::WrongClass { expected, found } => {
                write!(
                    f,
                    "solver requires a {expected} query, found footprint {found}"
                )
            }
            CoreError::NotAChain => {
                write!(f, "query is not a chain join over distinct relations")
            }
            CoreError::BudgetExhausted { budget } => {
                write!(f, "exact search exceeded its node budget of {budget}")
            }
            CoreError::Io { context } => write!(f, "io error: {context}"),
            CoreError::CorruptLog { offset, reason } => {
                write!(f, "corrupt log at byte {offset}: {reason}")
            }
        }
    }
}

impl fmt::Debug for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoreError({self})")
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelalgError> for CoreError {
    fn from(e: RelalgError) -> Self {
        CoreError::Relalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: CoreError = RelalgError::UnknownRelation { rel: "R".into() }.into();
        assert!(e.to_string().contains("unknown relation"));
        let e = CoreError::TargetNotInView {
            tuple: dap_relalg::tuple(["a"]),
        };
        assert_eq!(e.to_string(), "tuple (a) is not in the view");
        let e = CoreError::WrongClass {
            expected: "SPU",
            found: "PJ".into(),
        };
        assert!(e.to_string().contains("SPU") && e.to_string().contains("PJ"));
        let e = CoreError::BudgetExhausted { budget: 7 };
        assert!(e.to_string().contains('7'));
        let e = CoreError::Io {
            context: "append to commit.log: disk full".into(),
        };
        assert!(e.to_string().contains("commit.log"));
        let e = CoreError::CorruptLog {
            offset: 42,
            reason: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("byte 42") && e.to_string().contains("crc mismatch"));
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e: CoreError = RelalgError::UnknownRelation { rel: "R".into() }.into();
        assert!(e.source().is_some());
        assert!(CoreError::NotAChain.source().is_none());
    }
}
