//! Theorem 2.6 — minimum source deletion for **chain joins** via min-cut.
//!
//! For a normal-form PJ query whose joined relations form a chain
//! `R_1 ⋈ … ⋈ R_k` (only consecutive relations share attributes), the
//! paper's construction:
//!
//! 1. drop from each `R_i` the tuples that disagree with the target `t_0`
//!    on `R_i`'s projected attributes;
//! 2. build a layered graph — one node per surviving tuple, an edge between
//!    consecutive layers when the tuples agree on the shared attributes;
//! 3. connect a source `s` to all of layer 1 and all of layer `k` to a sink
//!    `t`, give nodes capacity 1 and edges capacity ∞ (node-splitting);
//! 4. every `s–t` path is a witness of `t_0`, so a minimum `s–t` node cut is
//!    a minimum source deletion.
//!
//! This gives a **polynomial** algorithm for a query class whose general
//! form is set-cover-hard — the special case the dichotomy table footnotes.

use crate::deletion::Deletion;
use crate::error::{CoreError, Result};
use dap_flow::UnitNodeGraph;
use dap_relalg::{detect_chain_join, eval, Attr, Database, Query, Schema, Tid, Tuple};
use std::collections::BTreeSet;

/// Minimum source deletion for a chain-join query (optional outer
/// projection over a join of distinct relations whose shared-attribute graph
/// is a path). Errors with [`CoreError::NotAChain`] if the query does not
/// have that shape.
pub fn chain_min_source_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let catalog = db.catalog();
    let chain = detect_chain_join(q, &catalog).ok_or(CoreError::NotAChain)?;
    let out_schema = dap_relalg::output_schema(q, &catalog)?;
    if target.arity() != out_schema.arity() {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }

    // Step 1: per layer, the tuples that agree with the target on the
    // layer's projected attributes.
    struct Layer {
        rel: dap_relalg::RelName,
        schema: Schema,
        rows: Vec<usize>, // surviving row indices
    }
    let mut layers: Vec<Layer> = Vec::with_capacity(chain.order.len());
    for rel_name in &chain.order {
        let rel = db.require(rel_name)?;
        let projected: Vec<(usize, &dap_relalg::Value)> = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                out_schema
                    .index_of(a)
                    .map(|out_idx| (i, target.get(out_idx)))
            })
            .collect();
        let rows = rel
            .tuples()
            .iter()
            .enumerate()
            .filter(|(_, u)| projected.iter().all(|(i, v)| u.get(*i) == *v))
            .map(|(row, _)| row)
            .collect();
        layers.push(Layer {
            rel: rel.name().clone(),
            schema: rel.schema().clone(),
            rows,
        });
    }

    // Step 2–3: the node-split layered network.
    let total: usize = layers.iter().map(|l| l.rows.len()).sum();
    let mut graph = UnitNodeGraph::new(total);
    let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(layers.len());
    let mut next = 0usize;
    for layer in &layers {
        node_of.push(
            layer
                .rows
                .iter()
                .map(|_| {
                    let n = next;
                    next += 1;
                    n
                })
                .collect(),
        );
    }
    for (i, layer) in layers.iter().enumerate() {
        if i == 0 {
            for &n in &node_of[0] {
                graph.connect_source(n);
            }
        }
        if i + 1 == layers.len() {
            for &n in &node_of[i] {
                graph.connect_sink(n);
            }
            break;
        }
        let nxt = &layers[i + 1];
        let shared: Vec<Attr> = layer.schema.shared_with(&nxt.schema);
        let l_pos: Vec<usize> = shared
            .iter()
            .map(|a| layer.schema.index_of(a).expect("shared attr"))
            .collect();
        let r_pos: Vec<usize> = shared
            .iter()
            .map(|a| nxt.schema.index_of(a).expect("shared attr"))
            .collect();
        let lrel = db.require(&layer.rel)?;
        let rrel = db.require(&nxt.rel)?;
        for (li, &lrow) in layer.rows.iter().enumerate() {
            let lt = lrel.tuple_at(lrow).expect("surviving row");
            for (ri, &rrow) in nxt.rows.iter().enumerate() {
                let rt = rrel.tuple_at(rrow).expect("surviving row");
                let agree = l_pos
                    .iter()
                    .zip(&r_pos)
                    .all(|(&lp, &rp)| lt.get(lp) == rt.get(rp));
                if agree {
                    graph.add_edge(node_of[i][li], node_of[i + 1][ri]);
                }
            }
        }
    }

    // Step 4: min node cut = minimum source deletion.
    let (value, cut_nodes) = graph.min_node_cut();
    if value == 0 {
        // No s–t path means no witness: the target is not in the view.
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    // Map node ids back to tids.
    let mut deletions = BTreeSet::new();
    for (i, layer) in layers.iter().enumerate() {
        for (li, &row) in layer.rows.iter().enumerate() {
            if cut_nodes.contains(&node_of[i][li]) {
                deletions.insert(Tid {
                    rel: layer.rel.clone(),
                    row,
                });
            }
        }
    }
    debug_assert_eq!(deletions.len() as u64, value);

    // Side effects by re-evaluation (the why-provenance of a chain join can
    // be exponentially large; the view diff is not).
    let before = eval(q, db)?;
    if !before.contains(target) {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    let after = eval(q, &db.without(&deletions))?;
    debug_assert!(!after.contains(target), "the cut must delete the target");
    let view_side_effects: BTreeSet<Tuple> = before
        .tuples
        .iter()
        .filter(|u| *u != target && !after.contains(u))
        .cloned()
        .collect();
    Ok(Deletion {
        deletions,
        view_side_effects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::source_side_effect::min_source_deletion;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn chain_db() -> Database {
        parse_database(
            "relation R1(A, B) { (a, b1), (a, b2) }
             relation R2(B, C) { (b1, c1), (b2, c1), (b2, c2) }
             relation R3(C, D) { (c1, d), (c2, d) }",
        )
        .unwrap()
    }

    #[test]
    fn three_layer_chain_minimum() {
        let db = chain_db();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        let t = tuple(["a", "d"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        // Exact hitting-set agrees on the size.
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), exact.source_cost());
        // Verify the deletion really removes the target.
        let after = eval(&q, &db.without(&sol.deletions)).unwrap();
        assert!(!after.contains(&t));
    }

    #[test]
    fn bottleneck_is_found() {
        // All paths go through the single (x, c) tuple.
        let db = parse_database(
            "relation R1(A, B) { (a1, x), (a2, x), (a3, x) }
             relation R2(B, C) { (x, c) }
             relation R3(C, D) { (c, d1), (c, d2) }",
        )
        .unwrap();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A])").unwrap();
        let t = tuple(["a1"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        // The target (a1) requires only paths through (a1,x): deleting
        // (a1,x) is the unique minimum of size 1 — the filtered first layer
        // contains only (a1, x).
        assert_eq!(sol.source_cost(), 1);
        assert_eq!(
            sol.deletions,
            BTreeSet::from([db.tid_of("R1", &tuple(["a1", "x"])).unwrap()])
        );
    }

    #[test]
    fn projection_filter_restricts_layers() {
        let db = chain_db();
        // Project A and C: target fixes C = c1, so (b2,c2), (c2,d) rows are
        // irrelevant.
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, C])").unwrap();
        let t = tuple(["a", "c1"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), exact.source_cost());
        let after = eval(&q, &db.without(&sol.deletions)).unwrap();
        assert!(!after.contains(&t));
    }

    #[test]
    fn two_relation_chain_agrees_with_exact() {
        let db = parse_database(
            "relation R1(A, B) { (a, x1), (a, x2), (a2, x1) }
             relation R2(B, C) { (x1, c), (x2, c) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [A, C])").unwrap();
        for t in eval(&q, &db).unwrap().tuples.clone() {
            let chain = chain_min_source_deletion(&q, &db, &t).unwrap();
            let exact = min_source_deletion(&q, &db, &t).unwrap();
            assert_eq!(chain.source_cost(), exact.source_cost(), "target {t}");
        }
    }

    #[test]
    fn rejects_non_chain_and_missing_target() {
        let db = chain_db();
        let q = parse_query("project(join(scan R1, scan R1), [A])").unwrap();
        assert!(matches!(
            chain_min_source_deletion(&q, &db, &tuple(["a"])),
            Err(CoreError::NotAChain)
        ));
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        assert!(matches!(
            chain_min_source_deletion(&q, &db, &tuple(["zz", "zz"])),
            Err(CoreError::TargetNotInView { .. })
        ));
    }

    #[test]
    fn pure_join_chain_without_projection() {
        let db = parse_database(
            "relation R1(A, B) { (a, b) }
             relation R2(B, C) { (b, c) }",
        )
        .unwrap();
        let q = parse_query("join(scan R1, scan R2)").unwrap();
        let t = tuple(["a", "b", "c"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), 1);
        assert!(sol.is_side_effect_free());
    }
}
