//! Theorem 2.6 — minimum source deletion for **chain joins** via min-cut.
//!
//! For a normal-form PJ query whose joined relations form a chain
//! `R_1 ⋈ … ⋈ R_k` (only consecutive relations share attributes), the
//! paper's construction:
//!
//! 1. drop from each `R_i` the tuples that disagree with the target `t_0`
//!    on `R_i`'s projected attributes;
//! 2. build a layered graph — one node per surviving tuple, an edge between
//!    consecutive layers when the tuples agree on the shared attributes;
//! 3. connect a source `s` to all of layer 1 and all of layer `k` to a sink
//!    `t`, give nodes capacity 1 and edges capacity ∞ (node-splitting);
//! 4. every `s–t` path is a witness of `t_0`, so a minimum `s–t` node cut is
//!    a minimum source deletion.
//!
//! This gives a **polynomial** algorithm for a query class whose general
//! form is set-cover-hard — the special case the dichotomy table footnotes.

use crate::deletion::index::WitnessIndex;
use crate::deletion::{Deletion, DeletionContext};
use crate::error::{CoreError, Result};
use dap_flow::UnitNodeGraph;
use dap_relalg::{
    detect_chain_join, eval, Attr, ChainJoin, Database, Query, RelName, Schema, Tid, Tuple,
};
use std::collections::{BTreeSet, HashMap};

/// Minimum source deletion for a chain-join query (optional outer
/// projection over a join of distinct relations whose shared-attribute graph
/// is a path). Errors with [`CoreError::NotAChain`] if the query does not
/// have that shape.
pub fn chain_min_source_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let catalog = db.catalog();
    let chain = detect_chain_join(q, &catalog).ok_or(CoreError::NotAChain)?;
    let out_schema = dap_relalg::output_schema(q, &catalog)?;
    if target.arity() != out_schema.arity() {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }

    // Step 1: per layer, the tuples that agree with the target on the
    // layer's projected attributes.
    struct Layer {
        rel: dap_relalg::RelName,
        schema: Schema,
        rows: Vec<usize>, // surviving row indices
    }
    let mut layers: Vec<Layer> = Vec::with_capacity(chain.order.len());
    for rel_name in &chain.order {
        let rel = db.require(rel_name)?;
        let projected: Vec<(usize, &dap_relalg::Value)> = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                out_schema
                    .index_of(a)
                    .map(|out_idx| (i, target.get(out_idx)))
            })
            .collect();
        let rows = rel
            .tuples()
            .iter()
            .enumerate()
            .filter(|(_, u)| projected.iter().all(|(i, v)| u.get(*i) == *v))
            .map(|(row, _)| row)
            .collect();
        layers.push(Layer {
            rel: rel.name().clone(),
            schema: rel.schema().clone(),
            rows,
        });
    }

    // Step 2–3: the node-split layered network.
    let total: usize = layers.iter().map(|l| l.rows.len()).sum();
    let mut graph = UnitNodeGraph::new(total);
    let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(layers.len());
    let mut next = 0usize;
    for layer in &layers {
        node_of.push(
            layer
                .rows
                .iter()
                .map(|_| {
                    let n = next;
                    next += 1;
                    n
                })
                .collect(),
        );
    }
    for (i, layer) in layers.iter().enumerate() {
        if i == 0 {
            for &n in &node_of[0] {
                graph.connect_source(n);
            }
        }
        if i + 1 == layers.len() {
            for &n in &node_of[i] {
                graph.connect_sink(n);
            }
            break;
        }
        let nxt = &layers[i + 1];
        let shared: Vec<Attr> = layer.schema.shared_with(&nxt.schema);
        let l_pos: Vec<usize> = shared
            .iter()
            .map(|a| layer.schema.index_of(a).expect("shared attr"))
            .collect();
        let r_pos: Vec<usize> = shared
            .iter()
            .map(|a| nxt.schema.index_of(a).expect("shared attr"))
            .collect();
        let lrel = db.require(&layer.rel)?;
        let rrel = db.require(&nxt.rel)?;
        for (li, &lrow) in layer.rows.iter().enumerate() {
            let lt = lrel.tuple_at(lrow).expect("surviving row");
            for (ri, &rrow) in nxt.rows.iter().enumerate() {
                let rt = rrel.tuple_at(rrow).expect("surviving row");
                let agree = l_pos
                    .iter()
                    .zip(&r_pos)
                    .all(|(&lp, &rp)| lt.get(lp) == rt.get(rp));
                if agree {
                    graph.add_edge(node_of[i][li], node_of[i + 1][ri]);
                }
            }
        }
    }

    // Step 4: min node cut = minimum source deletion.
    let (value, cut_nodes) = graph.min_node_cut();
    if value == 0 {
        // No s–t path means no witness: the target is not in the view.
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    // Map node ids back to tids.
    let mut deletions = BTreeSet::new();
    for (i, layer) in layers.iter().enumerate() {
        for (li, &row) in layer.rows.iter().enumerate() {
            if cut_nodes.contains(&node_of[i][li]) {
                deletions.insert(Tid {
                    rel: layer.rel.clone(),
                    row,
                });
            }
        }
    }
    debug_assert_eq!(deletions.len() as u64, value);

    // Side effects by re-evaluation (the why-provenance of a chain join can
    // be exponentially large; the view diff is not).
    let before = eval(q, db)?;
    if !before.contains(target) {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    let after = eval(q, &db.without(&deletions))?;
    debug_assert!(!after.contains(target), "the cut must delete the target");
    let view_side_effects: BTreeSet<Tuple> = before
        .tuples
        .iter()
        .filter(|u| *u != target && !after.contains(u))
        .cloned()
        .collect();
    Ok(Deletion {
        deletions,
        view_side_effects,
    })
}

/// Theorem 2.6 on a **maintained** context: build the layered witness
/// network from the target's *patched* why-provenance instead of re-scanning
/// the original database. Nodes are the target's support tids (one layer
/// per chain relation), and edges connect consecutive-layer tids that
/// co-occur in some witness. By the chain property (non-consecutive
/// relations share no attributes) every source–sink path through that graph
/// — including paths mixing tuples from different witnesses — is itself a
/// minimal witness of the target already present in the provenance, so the
/// path set *is* the witness set and a minimum node cut is a minimum
/// hitting set, i.e. a minimum source deletion **against the current
/// view**. Side effects are read off the index counters (patched state
/// again), not off a re-evaluation of the stale original database.
fn chain_cut_on(chain: &ChainJoin, idx: &mut WitnessIndex) -> Result<Deletion> {
    let layer_of: HashMap<&RelName, usize> = chain
        .order
        .iter()
        .enumerate()
        .map(|(i, r)| (r, i))
        .collect();
    let layers = chain.order.len();
    let slot_layer: Vec<usize> = idx.support().iter().map(|tid| layer_of[&tid.rel]).collect();
    let mut graph = UnitNodeGraph::new(idx.support().len());
    let mut sources = BTreeSet::new();
    let mut sinks = BTreeSet::new();
    let mut edges = BTreeSet::new();
    for wi in 0..idx.target_witness_count() {
        let mut by_layer: Vec<Option<usize>> = vec![None; layers];
        for &slot in idx.target_witness_members(wi) {
            debug_assert!(
                by_layer[slot_layer[slot]].is_none(),
                "a chain witness has one tuple per relation"
            );
            by_layer[slot_layer[slot]] = Some(slot);
        }
        let path: Vec<usize> = by_layer
            .into_iter()
            .map(|s| s.expect("a chain witness covers every layer"))
            .collect();
        sources.insert(path[0]);
        sinks.insert(path[layers - 1]);
        for w in path.windows(2) {
            edges.insert((w[0], w[1]));
        }
    }
    for &s in &sources {
        graph.connect_source(s);
    }
    for &t in &sinks {
        graph.connect_sink(t);
    }
    for &(a, b) in &edges {
        graph.add_edge(a, b);
    }
    let (value, cut) = graph.min_node_cut();
    debug_assert!(value >= 1, "a target in the view has a witness path");
    debug_assert_eq!(value as usize, cut.len());
    for &slot in &cut {
        idx.insert_slot(slot);
    }
    debug_assert!(idx.deletes_target(), "the cut hits every witness");
    let sol = Deletion {
        deletions: idx.deleted_tids(),
        view_side_effects: idx.side_effects(),
    };
    for &slot in &cut {
        idx.remove_slot(slot);
    }
    Ok(sol)
}

impl DeletionContext {
    /// [`chain_min_source_deletion`] against this context's **patched**
    /// state: after [`DeletionContext::apply_delete`] commits, the free
    /// function keeps solving over the original database (stale cuts over
    /// tuples that no longer exist); this method rebuilds the Thm 2.6 flow
    /// network from the maintained why-provenance, so committed tuples are
    /// never proposed and costs track the current view. Within a context
    /// the witness lists are already materialized, so — unlike the free
    /// function, which deliberately avoids why-provenance — reading them
    /// costs nothing extra. Errors with [`CoreError::NotAChain`] on
    /// non-chain queries and [`CoreError::TargetNotInView`] when the
    /// (current) view lacks the target.
    pub fn chain_min_source_deletion(&self, target: &Tuple) -> Result<Deletion> {
        let chain =
            detect_chain_join(self.query(), &self.db().catalog()).ok_or(CoreError::NotAChain)?;
        let (_, mut idx) = self.instance_and_index(target)?;
        chain_cut_on(&chain, &mut idx)
    }

    /// [`DeletionContext::chain_min_source_deletion`] for the serving
    /// loop: solves on the target's cached, in-place-patched
    /// [`WitnessIndex`] (same cache as the other `*_turn` entry points —
    /// the chain class no longer bypasses it). Identical solutions to the
    /// uncached entry point.
    pub fn chain_min_source_turn(&mut self, target: &Tuple) -> Result<Deletion> {
        let chain =
            detect_chain_join(self.query(), &self.db().catalog()).ok_or(CoreError::NotAChain)?;
        let mut idx = self.take_index(target)?;
        let sol = chain_cut_on(&chain, &mut idx);
        self.cache_index(target, idx);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::source_side_effect::min_source_deletion;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn chain_db() -> Database {
        parse_database(
            "relation R1(A, B) { (a, b1), (a, b2) }
             relation R2(B, C) { (b1, c1), (b2, c1), (b2, c2) }
             relation R3(C, D) { (c1, d), (c2, d) }",
        )
        .unwrap()
    }

    #[test]
    fn three_layer_chain_minimum() {
        let db = chain_db();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        let t = tuple(["a", "d"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        // Exact hitting-set agrees on the size.
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), exact.source_cost());
        // Verify the deletion really removes the target.
        let after = eval(&q, &db.without(&sol.deletions)).unwrap();
        assert!(!after.contains(&t));
    }

    #[test]
    fn bottleneck_is_found() {
        // All paths go through the single (x, c) tuple.
        let db = parse_database(
            "relation R1(A, B) { (a1, x), (a2, x), (a3, x) }
             relation R2(B, C) { (x, c) }
             relation R3(C, D) { (c, d1), (c, d2) }",
        )
        .unwrap();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A])").unwrap();
        let t = tuple(["a1"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        // The target (a1) requires only paths through (a1,x): deleting
        // (a1,x) is the unique minimum of size 1 — the filtered first layer
        // contains only (a1, x).
        assert_eq!(sol.source_cost(), 1);
        assert_eq!(
            sol.deletions,
            BTreeSet::from([db.tid_of("R1", &tuple(["a1", "x"])).unwrap()])
        );
    }

    #[test]
    fn projection_filter_restricts_layers() {
        let db = chain_db();
        // Project A and C: target fixes C = c1, so (b2,c2), (c2,d) rows are
        // irrelevant.
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, C])").unwrap();
        let t = tuple(["a", "c1"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), exact.source_cost());
        let after = eval(&q, &db.without(&sol.deletions)).unwrap();
        assert!(!after.contains(&t));
    }

    #[test]
    fn two_relation_chain_agrees_with_exact() {
        let db = parse_database(
            "relation R1(A, B) { (a, x1), (a, x2), (a2, x1) }
             relation R2(B, C) { (x1, c), (x2, c) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [A, C])").unwrap();
        for t in eval(&q, &db).unwrap().tuples.clone() {
            let chain = chain_min_source_deletion(&q, &db, &t).unwrap();
            let exact = min_source_deletion(&q, &db, &t).unwrap();
            assert_eq!(chain.source_cost(), exact.source_cost(), "target {t}");
        }
    }

    #[test]
    fn rejects_non_chain_and_missing_target() {
        let db = chain_db();
        let q = parse_query("project(join(scan R1, scan R1), [A])").unwrap();
        assert!(matches!(
            chain_min_source_deletion(&q, &db, &tuple(["a"])),
            Err(CoreError::NotAChain)
        ));
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        assert!(matches!(
            chain_min_source_deletion(&q, &db, &tuple(["zz", "zz"])),
            Err(CoreError::TargetNotInView { .. })
        ));
    }

    #[test]
    fn context_chain_cut_matches_free_function_on_a_fresh_context() {
        let db = chain_db();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        for t in eval(&q, &db).unwrap().tuples.clone() {
            let via_ctx = ctx.chain_min_source_deletion(&t).unwrap();
            let via_free = chain_min_source_deletion(&q, &db, &t).unwrap();
            assert_eq!(via_ctx.source_cost(), via_free.source_cost(), "target {t}");
            assert_eq!(via_ctx.view_cost(), via_free.view_cost(), "target {t}");
            let exact = min_source_deletion(&q, &db, &t).unwrap();
            assert_eq!(via_ctx.source_cost(), exact.source_cost(), "target {t}");
        }
    }

    /// The headline regression: after a commit, the free function solves
    /// the *original* database (silently wrong), the context method the
    /// patched one.
    #[test]
    fn chain_cut_reads_the_patched_state_after_commits() {
        let db = parse_database(
            "relation R1(A, B) { (a, b1), (a, b2) }
             relation R2(B, C) { (b1, c1), (b2, c2) }
             relation R3(C, D) { (c1, d), (c2, d), (c1, e) }",
        )
        .unwrap();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        let t = tuple(["a", "d"]);
        let mut ctx = DeletionContext::new(&q, &db).unwrap();
        // Commit R2(b1,c1): (a,e) dies, (a,d) drops to its b2-c2 witness.
        let committed = BTreeSet::from([db.tid_of("R2", &tuple(["b1", "c1"])).unwrap()]);
        ctx.apply_delete(&committed);
        assert!(!ctx.contains(&tuple(["a", "e"])));

        let sol = ctx.chain_min_source_deletion(&t).unwrap();
        assert_eq!(sol.source_cost(), 1, "one surviving witness path");
        assert!(
            sol.deletions.is_disjoint(ctx.committed()),
            "a chain-class solve after apply_delete must never propose an \
             already-deleted tuple"
        );
        // It agrees with a fresh solve over the actually-current database.
        let db_now = db.without(ctx.committed());
        let fresh = chain_min_source_deletion(&q, &db_now, &t).unwrap();
        assert_eq!(sol.source_cost(), fresh.source_cost());
        assert_eq!(sol.view_side_effects, fresh.view_side_effects);
        // …while the pre-fix path — the free function over the context's
        // original database — still sees two disjoint witness paths and
        // returns a stale min cut of 2: the silent wrong answer this PR
        // fixes.
        let stale = chain_min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(stale.source_cost(), 2, "stale network, stale cut");
        // The turn variant (cached index) returns the identical solution.
        let turn = ctx.chain_min_source_turn(&t).unwrap();
        assert_eq!(turn, sol);
        assert_eq!(ctx.cached_index_count(), 1);
        // A target an earlier commit removed errors as not-in-view instead
        // of resolving against the stale database.
        assert!(matches!(
            ctx.chain_min_source_deletion(&tuple(["a", "e"])),
            Err(CoreError::TargetNotInView { .. })
        ));
        // The packaged source-objective turn handles it as None.
        let gone = ctx
            .resolve_source_after_delete(&BTreeSet::new(), &tuple(["a", "e"]))
            .unwrap();
        assert!(gone.is_none());
    }

    #[test]
    fn context_chain_cut_side_effects_match_reevaluation_after_commit() {
        let db = chain_db();
        let q = parse_query("project(join(join(scan R1, scan R2), scan R3), [A, D])").unwrap();
        let mut ctx = DeletionContext::new(&q, &db).unwrap();
        // Commit R2(b2,c2) first; (a,d) keeps witnesses through c1.
        let committed = BTreeSet::from([db.tid_of("R2", &tuple(["b2", "c2"])).unwrap()]);
        ctx.apply_delete(&committed);
        let t = tuple(["a", "d"]);
        let sol = ctx.chain_min_source_turn(&t).unwrap();
        // Verify against re-evaluation on the patched database.
        let db_now = db.without(ctx.committed());
        let before = eval(&q, &db_now).unwrap();
        let all: BTreeSet<Tid> = sol.deletions.iter().cloned().collect();
        let after = eval(&q, &db_now.without(&all)).unwrap();
        assert!(!after.contains(&t));
        let dead: BTreeSet<Tuple> = before
            .tuples
            .iter()
            .filter(|u| **u != t && !after.contains(u))
            .cloned()
            .collect();
        assert_eq!(sol.view_side_effects, dead);
        // And the cost is optimal on the patched state.
        let exact = min_source_deletion(&q, &db_now, &t).unwrap();
        assert_eq!(sol.source_cost(), exact.source_cost());
    }

    #[test]
    fn context_chain_cut_rejects_non_chain() {
        let db = chain_db();
        let q = parse_query("project(join(scan R1, scan R1), [A])").unwrap();
        assert!(DeletionContext::new(&q, &db)
            .map(|ctx| matches!(
                ctx.chain_min_source_deletion(&tuple(["a"])),
                Err(CoreError::NotAChain)
            ))
            .unwrap_or(true));
    }

    #[test]
    fn pure_join_chain_without_projection() {
        let db = parse_database(
            "relation R1(A, B) { (a, b) }
             relation R2(B, C) { (b, c) }",
        )
        .unwrap();
        let q = parse_query("join(scan R1, scan R2)").unwrap();
        let t = tuple(["a", "b", "c"]);
        let sol = chain_min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), 1);
        assert!(sol.is_side_effect_free());
    }
}
