//! The **incremental witness-hypergraph index** behind the deletion solvers.
//!
//! [`DeletionInstance::side_effect_count`] rescans every view tuple's witness
//! set (`O(|view| · |witnesses|)` with a set lookup per tuple id) — fine for
//! a single query, ruinous inside a branch-and-bound that asks the question
//! at **every** search node. [`WitnessIndex`] makes the question incremental:
//!
//! * an inverted map tuple-id → (view tuple, witness) *occurrences*,
//! * a per-witness counter of deleted members (a witness is *hit* when the
//!   counter is positive),
//! * a per-view-tuple counter of live (unhit) witnesses (a tuple is *dead*
//!   when it reaches zero), and
//! * running totals of dead non-target tuples and unhit target witnesses,
//!
//! so [`WitnessIndex::insert`] / [`WitnessIndex::remove`] cost
//! `O(occurrences of the tuple id)` and [`WitnessIndex::side_effect_count`] /
//! [`WitnessIndex::deletes_target`] are `O(1)`. The branch-and-bound mutates
//! the index along the recursion — insert on descend, remove on backtrack —
//! instead of rescanning the hypergraph per node.
//!
//! The index is restricted to the **relevant frontier**: view tuples whose
//! *every* witness intersects the target's support. The solvers only ever
//! delete inside the support, and a tuple with a witness disjoint from the
//! support keeps that witness forever — it can never be side-effected — so
//! the frontier is exactly the set of view tuples whose death is possible.
//! This shrinks the index from `|view|` to the target's neighborhood.
//! Consequently the index answers are equivalent to the naive
//! [`DeletionInstance`] scans **for deletion sets drawn from the support**
//! (which is all the solvers ever produce); the differential property tests
//! in `tests/prop_witness_index.rs` pin that equivalence.

use crate::deletion::DeletionInstance;
use dap_provenance::WhyProvenance;
use dap_relalg::{Tid, Tuple};
use std::collections::{BTreeSet, HashMap};

/// A counter-based incremental view of one deletion problem's witness
/// hypergraph (see the module docs). Built once per target (cheaply from a
/// [`crate::deletion::DeletionContext`] skeleton), then mutated in place by
/// the search.
#[derive(Clone, Debug)]
pub struct WitnessIndex {
    /// The target's support, sorted — slot `i` is `tids[i]`.
    tids: Vec<Tid>,
    /// Whether slot `i` is currently deleted.
    deleted: Vec<bool>,
    /// Number of deleted slots.
    deleted_count: usize,
    /// slot → ids of witnesses containing that tuple id (the inverted map).
    occurrences: Vec<Vec<usize>>,
    /// witness id → frontier-tuple id owning it.
    witness_owner: Vec<usize>,
    /// witness id → number of its members currently deleted (> 0 ⇔ hit).
    witness_hits: Vec<usize>,
    /// frontier-tuple id → number of witnesses not yet hit (0 ⇔ dead).
    tuple_alive: Vec<usize>,
    /// The frontier tuples (the target is `tuples[target_tuple]`).
    tuples: Vec<Tuple>,
    /// Index of the target in `tuples`.
    target_tuple: usize,
    /// Running count of dead frontier tuples other than the target.
    dead_other: usize,
    /// Member slots per target witness (parallel to `target_witness_ids`) —
    /// the sets the branch-and-bound branches over, kept eager because
    /// every solve reads them.
    target_members: Vec<Vec<usize>>,
    /// Global witness ids of the target's witnesses.
    target_witness_ids: Vec<usize>,
    /// Retire/encode support (tuple-id map + full witness transpose),
    /// derivable from the eager fields — built lazily on the first
    /// [`WitnessIndex::retire_tuple`] / [`WitnessIndex::in_frontier`] /
    /// ILP-encoding call, so the throwaway per-target stamps of the
    /// one-shot solvers never pay for it.
    retire: Option<Box<RetireSupport>>,
}

/// The lazily-built machinery behind [`WitnessIndex::retire_tuple`] and the
/// `dap_core::ilp` encoder: reverse lookups the counter updates never need.
#[derive(Clone, Debug)]
struct RetireSupport {
    /// Frontier tuple → its id in `tuples` (the patching entry point).
    /// With interned string values a tuple hashes as a few integer ids,
    /// so this map costs no byte-walking on the patch path.
    tuple_ids: HashMap<Tuple, usize>,
    /// witness id → member slots (the transpose of `occurrences`; emptied
    /// per witness when its owner is retired).
    witness_members: Vec<Vec<usize>>,
    /// frontier-tuple id → ids of the witnesses it owns (emptied when the
    /// tuple is retired).
    witnesses_of_tuple: Vec<Vec<usize>>,
}

impl WitnessIndex {
    /// Build the index for `inst` by scanning the whole why-provenance.
    /// [`crate::deletion::DeletionContext::index_for`] builds the identical
    /// index from the shared skeleton without the full-view scan.
    pub fn build(inst: &DeletionInstance) -> WitnessIndex {
        Self::from_candidates(&inst.why, inst, inst.why.tuples())
    }

    /// Build the index considering only `candidates` as possible frontier
    /// members (every view tuple with a witness intersecting the support
    /// must be among them; extra candidates are filtered out).
    pub(crate) fn from_candidates<'a>(
        why: &WhyProvenance,
        inst: &DeletionInstance,
        candidates: impl IntoIterator<Item = &'a Tuple>,
    ) -> WitnessIndex {
        let tids = inst.support.clone();
        // Tid compares pointer-shortcut on interned relation names, so the
        // per-member binary search is integer work, not byte walks.
        let slot_of = |tid: &Tid| tids.binary_search(tid).ok();
        let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); tids.len()];
        let mut witness_owner = Vec::new();
        let mut witness_hits = Vec::new();
        let mut tuple_alive = Vec::new();
        let mut tuples: Vec<Tuple> = Vec::new();
        let mut target_tuple = 0;
        let mut target_members: Vec<Vec<usize>> = Vec::new();
        let mut target_witness_ids = Vec::new();
        // Scratch: member slots per witness of the current candidate.
        let mut member_slots: Vec<Vec<usize>> = Vec::new();
        'candidates: for t in candidates {
            let is_target = *t == inst.target;
            let Some(witnesses) = why.witnesses_of(t) else {
                continue;
            };
            member_slots.clear();
            for w in witnesses {
                let slots: Vec<usize> = w.iter().filter_map(slot_of).collect();
                if slots.is_empty() {
                    // A witness disjoint from the support survives any
                    // support-only deletion: `t` is outside the frontier.
                    debug_assert!(!is_target, "target witnesses are within the support");
                    continue 'candidates;
                }
                member_slots.push(slots);
            }
            let tuple_id = tuples.len();
            tuples.push(t.clone());
            tuple_alive.push(member_slots.len());
            if is_target {
                target_tuple = tuple_id;
            }
            for slots in member_slots.drain(..) {
                let wid = witness_owner.len();
                witness_owner.push(tuple_id);
                witness_hits.push(0);
                for &slot in &slots {
                    occurrences[slot].push(wid);
                }
                if is_target {
                    target_witness_ids.push(wid);
                    target_members.push(slots);
                }
            }
        }
        debug_assert_eq!(
            target_witness_ids.len(),
            inst.target_witnesses.len(),
            "target must be among the candidates"
        );
        WitnessIndex {
            deleted: vec![false; tids.len()],
            deleted_count: 0,
            occurrences,
            witness_owner,
            witness_hits,
            tuple_alive,
            tuples,
            target_tuple,
            dead_other: 0,
            target_members,
            target_witness_ids,
            retire: None,
            tids,
        }
    }

    /// Build (once) and return the lazily-constructed retire/encode
    /// support. Everything in it is derivable from the eager fields, and
    /// [`WitnessIndex::insert_slot`] / [`WitnessIndex::remove_slot`] never
    /// touch `occurrences`, so the reconstruction is identical whether it
    /// happens at build time or after any number of solves.
    fn retire_support(&mut self) -> &mut RetireSupport {
        if self.retire.is_none() {
            let mut witness_members: Vec<Vec<usize>> = vec![Vec::new(); self.witness_owner.len()];
            for (slot, wids) in self.occurrences.iter().enumerate() {
                for &wid in wids {
                    witness_members[wid].push(slot);
                }
            }
            let mut witnesses_of_tuple: Vec<Vec<usize>> = vec![Vec::new(); self.tuples.len()];
            for (wid, &owner) in self.witness_owner.iter().enumerate() {
                witnesses_of_tuple[owner].push(wid);
            }
            let tuple_ids = self
                .tuples
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), i))
                .collect();
            self.retire = Some(Box::new(RetireSupport {
                tuple_ids,
                witness_members,
                witnesses_of_tuple,
            }));
        }
        self.retire.as_mut().expect("just built")
    }

    /// Whether the lazy retire/encode support has been built (tests pin
    /// that one-shot solves never pay for it).
    #[cfg(test)]
    pub(crate) fn has_retire_support(&self) -> bool {
        self.retire.is_some()
    }

    /// Id of the target within the frontier (for the ILP encoder).
    pub(crate) fn target_id(&self) -> usize {
        self.target_tuple
    }

    /// The frontier tuple with id `id` (for the ILP encoder).
    pub(crate) fn tuple_at(&self, id: usize) -> &Tuple {
        &self.tuples[id]
    }

    /// The member-slot lists of frontier tuple `id`'s witnesses, one list
    /// per witness — empty for a retired tuple (its witnesses are unlinked;
    /// it can never die again). This is the ILP encoder's read path into
    /// the hypergraph; it forces the lazy retire support.
    pub(crate) fn witness_slot_lists(&mut self, id: usize) -> Vec<Vec<usize>> {
        let support = self.retire_support();
        support.witnesses_of_tuple[id]
            .iter()
            .map(|&wid| support.witness_members[wid].clone())
            .collect()
    }

    /// The target's support, sorted. Slot `i` addresses `support()[i]` in
    /// [`WitnessIndex::insert_slot`] / [`WitnessIndex::remove_slot`].
    pub fn support(&self) -> &[Tid] {
        &self.tids
    }

    /// The slot of `tid` in the support, if `tid` is in it.
    pub fn slot_of(&self, tid: &Tid) -> Option<usize> {
        self.tids.binary_search(tid).ok()
    }

    /// Number of frontier view tuples tracked (including the target).
    pub fn frontier_len(&self) -> usize {
        self.tuples.len()
    }

    /// Mark the support slot `slot` deleted: `O(occurrences of the tid)`.
    pub fn insert_slot(&mut self, slot: usize) {
        debug_assert!(!self.deleted[slot], "slot {slot} inserted twice");
        self.deleted[slot] = true;
        self.deleted_count += 1;
        for k in 0..self.occurrences[slot].len() {
            let wid = self.occurrences[slot][k];
            self.witness_hits[wid] += 1;
            if self.witness_hits[wid] == 1 {
                let owner = self.witness_owner[wid];
                self.tuple_alive[owner] -= 1;
                if self.tuple_alive[owner] == 0 && owner != self.target_tuple {
                    self.dead_other += 1;
                }
            }
        }
    }

    /// Undo [`WitnessIndex::insert_slot`]: `O(occurrences of the tid)`.
    pub fn remove_slot(&mut self, slot: usize) {
        debug_assert!(self.deleted[slot], "slot {slot} removed but not deleted");
        self.deleted[slot] = false;
        self.deleted_count -= 1;
        for k in 0..self.occurrences[slot].len() {
            let wid = self.occurrences[slot][k];
            self.witness_hits[wid] -= 1;
            if self.witness_hits[wid] == 0 {
                let owner = self.witness_owner[wid];
                if self.tuple_alive[owner] == 0 && owner != self.target_tuple {
                    self.dead_other -= 1;
                }
                self.tuple_alive[owner] += 1;
            }
        }
    }

    /// Mark `tid` deleted. Returns `false` (a no-op) if `tid` is outside the
    /// support — such a deletion can never help kill the target (whose
    /// witnesses lie entirely inside the support), and the index's answers
    /// are only specified for support-only deletion sets (see the module
    /// docs): a set mixing in out-of-support tids must be evaluated with
    /// the naive [`DeletionInstance`] scans instead.
    pub fn insert(&mut self, tid: &Tid) -> bool {
        match self.slot_of(tid) {
            Some(slot) => {
                self.insert_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Undo [`WitnessIndex::insert`]. Returns `false` if `tid` is outside
    /// the support.
    pub fn remove(&mut self, tid: &Tid) -> bool {
        match self.slot_of(tid) {
            Some(slot) => {
                self.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Number of non-target frontier tuples killed by the current deletion
    /// set — `O(1)`, the quantity §2.1 minimizes.
    pub fn side_effect_count(&self) -> usize {
        self.dead_other
    }

    /// Whether the current deletion set hits every witness of the target —
    /// `O(1)`, the §2.2 feasibility test.
    pub fn deletes_target(&self) -> bool {
        self.tuple_alive[self.target_tuple] == 0
    }

    /// The non-target view tuples killed by the current deletion set
    /// (`O(frontier)` — used once per solution, not per node).
    pub fn side_effects(&self) -> BTreeSet<Tuple> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.target_tuple && self.tuple_alive[*i] == 0)
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// The current deletion set.
    pub fn deleted_tids(&self) -> BTreeSet<Tid> {
        self.tids
            .iter()
            .zip(&self.deleted)
            .filter(|(_, d)| **d)
            .map(|(tid, _)| tid.clone())
            .collect()
    }

    /// Number of currently deleted slots.
    pub fn deleted_len(&self) -> usize {
        self.deleted_count
    }

    /// The side-effect increase deleting `slot` would cause, by probing the
    /// counters — `O(occurrences of the tid)`, no hypergraph rescan. This is
    /// the branch-ordering key of the search (fail-first on *cost*, not just
    /// witness width).
    pub fn delta_if_deleted(&mut self, slot: usize) -> usize {
        let before = self.dead_other;
        self.insert_slot(slot);
        let delta = self.dead_other - before;
        self.remove_slot(slot);
        delta
    }

    /// Number of target witnesses (the sets the search must hit).
    pub fn target_witness_count(&self) -> usize {
        self.target_witness_ids.len()
    }

    /// Member slots of target witness `i` (same order as
    /// `DeletionInstance::target_witnesses`).
    pub fn target_witness_members(&self, i: usize) -> &[usize] {
        &self.target_members[i]
    }

    /// Whether target witness `i` is hit by the current deletion set.
    pub fn target_witness_hit(&self, i: usize) -> bool {
        self.witness_hits[self.target_witness_ids[i]] > 0
    }

    /// Whether `t` is one of this index's frontier tuples (retired tuples
    /// still answer `true`; they are inert, not forgotten). Forces the
    /// lazy retire support (the callers — cache patching and the ILP
    /// encoder — are about to use it anyway).
    pub fn in_frontier(&mut self, t: &Tuple) -> bool {
        self.retire_support().tuple_ids.contains_key(t)
    }

    /// Permanently unlink a dead frontier tuple's witnesses, so the tuple
    /// can never again register as a side effect — the **in-place patch**
    /// [`crate::deletion::DeletionContext`] applies to cached per-target
    /// indexes when a serving-loop deletion removes `t` from the view,
    /// instead of re-stamping the index from the touch skeleton. Only
    /// valid on a clean index (no slots currently deleted) and only for
    /// removed tuples whose *own* basis was the only thing the deletion
    /// touched (the context re-stamps in every other case). Retiring the
    /// target, a tuple outside the frontier, or an already-retired tuple
    /// is a no-op returning `false`.
    pub fn retire_tuple(&mut self, t: &Tuple) -> bool {
        debug_assert_eq!(self.deleted_count, 0, "retire requires a clean index");
        let target_tuple = self.target_tuple;
        let support = self.retire_support();
        let Some(&id) = support.tuple_ids.get(t) else {
            return false;
        };
        if id == target_tuple {
            return false;
        }
        let wids = std::mem::take(&mut support.witnesses_of_tuple[id]);
        if wids.is_empty() {
            return false;
        }
        let mut unlink: Vec<(usize, usize)> = Vec::new(); // (slot, wid)
        for wid in wids {
            for &slot in &support.witness_members[wid] {
                unlink.push((slot, wid));
            }
            support.witness_members[wid].clear();
        }
        for (slot, wid) in unlink {
            self.occurrences[slot].retain(|&w| w != wid);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn instance() -> DeletionInstance {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        DeletionInstance::build(&q, &db, &tuple(["bob", "report"])).unwrap()
    }

    #[test]
    fn build_restricts_to_the_frontier() {
        let inst = instance();
        let idx = WitnessIndex::build(&inst);
        // View: (ann,report), (bob,main), (bob,report). The support is
        // bob's witnesses; (ann,report)'s only witness {UG(ann,staff),
        // GF(staff,report)} intersects it via GF(staff,report), and
        // (bob,main)'s via UG(bob,dev) — all three are in the frontier.
        assert_eq!(idx.frontier_len(), 3);
        assert_eq!(idx.support(), inst.support.as_slice());
        assert_eq!(idx.target_witness_count(), 2);
        assert_eq!(idx.side_effect_count(), 0);
        assert!(!idx.deletes_target());
    }

    #[test]
    fn insert_remove_track_naive_answers() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        let both: Vec<Tid> = [
            inst.db
                .tid_of("UserGroup", &tuple(["bob", "staff"]))
                .unwrap(),
            inst.db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap(),
        ]
        .into();
        for tid in &both {
            assert!(idx.insert(tid));
        }
        let deleted: BTreeSet<Tid> = both.iter().cloned().collect();
        assert!(idx.deletes_target());
        assert_eq!(idx.side_effect_count(), inst.side_effect_count(&deleted));
        assert_eq!(idx.side_effects(), inst.side_effects(&deleted));
        assert_eq!(idx.deleted_tids(), deleted);
        // Backtrack fully: the index returns to the empty state.
        for tid in &both {
            assert!(idx.remove(tid));
        }
        assert_eq!(idx.side_effect_count(), 0);
        assert!(!idx.deletes_target());
        assert!(idx.side_effects().is_empty());
        assert_eq!(idx.deleted_len(), 0);
    }

    #[test]
    fn delta_probe_matches_commit() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        for slot in 0..idx.support().len() {
            let predicted = idx.delta_if_deleted(slot);
            let before = idx.side_effect_count();
            idx.insert_slot(slot);
            assert_eq!(idx.side_effect_count() - before, predicted);
            idx.remove_slot(slot);
        }
    }

    #[test]
    fn out_of_support_tids_are_ignored() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        let outside = inst
            .db
            .tid_of("UserGroup", &tuple(["ann", "staff"]))
            .unwrap();
        assert!(idx.slot_of(&outside).is_none());
        assert!(!idx.insert(&outside));
        assert_eq!(idx.deleted_len(), 0);
    }

    #[test]
    fn retire_tuple_makes_a_frontier_tuple_inert() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        let mut fresh = WitnessIndex::build(&inst);
        // Retire (bob, main): deleting UG(bob, dev) must no longer count it.
        assert!(idx.in_frontier(&tuple(["bob", "main"])));
        assert!(idx.retire_tuple(&tuple(["bob", "main"])));
        assert!(
            !idx.retire_tuple(&tuple(["bob", "main"])),
            "second retire is a no-op"
        );
        assert!(!idx.retire_tuple(&tuple(["zz", "zz"])), "not in frontier");
        assert!(
            !idx.retire_tuple(&tuple(["bob", "report"])),
            "the target never retires"
        );
        let dev = inst.db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        idx.insert(&dev);
        fresh.insert(&dev);
        assert_eq!(fresh.side_effect_count(), 1, "(bob, main) dies");
        assert_eq!(
            idx.side_effect_count(),
            0,
            "retired tuples are never side effects"
        );
        assert!(idx.side_effects().is_empty());
        assert_eq!(idx.deletes_target(), fresh.deletes_target());
        idx.remove(&dev);
        assert_eq!(idx.side_effect_count(), 0);
    }

    #[test]
    fn retire_support_is_lazy() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        assert!(!idx.has_retire_support(), "never built eagerly");
        // A full solve-style workout touches only the eager structures.
        for slot in 0..idx.support().len() {
            let _ = idx.delta_if_deleted(slot);
            idx.insert_slot(slot);
        }
        let _ = (
            idx.side_effect_count(),
            idx.side_effects(),
            idx.deleted_tids(),
        );
        for slot in (0..idx.support().len()).rev() {
            idx.remove_slot(slot);
        }
        let _: usize = (0..idx.target_witness_count())
            .map(|i| idx.target_witness_members(i).len())
            .sum();
        assert!(
            !idx.has_retire_support(),
            "one-shot per-target stamps never pay for the transpose"
        );
        // The first retire builds it, with identical behavior to an eager
        // build (pinned by `retire_tuple_makes_a_frontier_tuple_inert`).
        assert!(idx.retire_tuple(&tuple(["bob", "main"])));
        assert!(idx.has_retire_support());
    }

    #[test]
    fn encoder_accessors_expose_the_hypergraph() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        let target = idx.target_id();
        assert_eq!(idx.tuple_at(target), &tuple(["bob", "report"]));
        // The target's slot lists via the lazy path equal the eager ones.
        let via_lazy = idx.witness_slot_lists(target);
        let via_eager: Vec<Vec<usize>> = (0..idx.target_witness_count())
            .map(|i| idx.target_witness_members(i).to_vec())
            .collect();
        assert_eq!(via_lazy, via_eager);
        // Retiring a tuple empties its lists.
        let (main_id, _) = (0..idx.frontier_len())
            .map(|i| (i, idx.tuple_at(i).clone()))
            .find(|(_, t)| *t == tuple(["bob", "main"]))
            .expect("in frontier");
        assert!(!idx.witness_slot_lists(main_id).is_empty());
        assert!(idx.retire_tuple(&tuple(["bob", "main"])));
        assert!(idx.witness_slot_lists(main_id).is_empty());
    }

    #[test]
    fn target_witness_accessors_follow_hits() {
        let inst = instance();
        let mut idx = WitnessIndex::build(&inst);
        assert!((0..idx.target_witness_count()).all(|i| !idx.target_witness_hit(i)));
        // Deleting GF(staff,report) hits exactly the staff witness.
        let staff_file = inst
            .db
            .tid_of("GroupFile", &tuple(["staff", "report"]))
            .unwrap();
        idx.insert(&staff_file);
        let hit: Vec<bool> = (0..idx.target_witness_count())
            .map(|i| idx.target_witness_hit(i))
            .collect();
        assert_eq!(hit.iter().filter(|h| **h).count(), 1);
        // The hit witness contains the deleted slot.
        let slot = idx.slot_of(&staff_file).unwrap();
        let wi = hit.iter().position(|h| *h).unwrap();
        assert!(idx.target_witness_members(wi).contains(&slot));
    }
}
