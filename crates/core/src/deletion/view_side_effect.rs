//! The **view side-effect problem** (§2.1): delete `t` from the view while
//! killing as few other view tuples as possible.
//!
//! * For arbitrary monotone queries the problem is NP-hard (Thms 2.1, 2.2) —
//!   [`min_view_side_effects`] is an exact branch-and-bound that enumerates
//!   minimal hitting sets of the target's witness hypergraph, pruning with
//!   the (monotone) side-effect count. The search mutates a
//!   [`WitnessIndex`] along the recursion (insert on descend, remove on
//!   backtrack), so each node costs `O(occurrences of the branched tid)`
//!   instead of a full hypergraph rescan, and branch choices are ordered by
//!   their `O(occ)` incremental side-effect delta (fail-first on cost).
//! * [`side_effect_free`] decides the paper's headline question — "is there
//!   a side-effect-free deletion?" — by running the same search capped at
//!   zero side effects.
//! * [`min_view_side_effects_on_par`] fans the search's **first level**
//!   out across a [`ParPool`]: sibling branches are independent given a
//!   cloned index, so each explores its subtree concurrently under the
//!   sequential exclusion discipline, sharing one atomic best bound whose
//!   strictly-worse-only pruning keeps the combined answer identical to
//!   the sequential search (see `run_search_parallel`'s proof sketch).
//!   The [`DeletionContext`] entry points use it automatically for big
//!   enough instances; `DAP_THREADS=1` (or a small support) falls back to
//!   the sequential path verbatim.
//! * [`DeletionContext::min_view_side_effects_turn`] is the serving-loop
//!   variant: it solves on the target's cached, in-place-patched
//!   [`WitnessIndex`] instead of re-stamping one per turn, and
//!   [`DeletionContext::spu_view_deletion`] is the Thm 2.3 linear fast
//!   path over the maintained context for SPU-class queries.
//! * [`spu_view_deletion`] (Thm 2.3) and [`sj_view_deletion`] (Thm 2.4) are
//!   the polynomial algorithms for the tractable classes.
//! * `min_view_side_effects_naive` (cargo feature `legacy-oracles`) runs
//!   the identical search with the original per-node
//!   [`DeletionInstance::side_effect_count`] rescans — the baseline of the
//!   `solver_incremental` bench and the differential property tests. Both
//!   drive the same skeleton, so they explore the same tree and return
//!   **identical** solutions.

use crate::deletion::index::WitnessIndex;
use crate::deletion::{Deletion, DeletionContext, DeletionInstance};
use crate::error::{CoreError, Result};
use dap_relalg::{normalize, output_schema, Database, OpFootprint, ParPool, Query, Tid, Tuple};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Knobs for the exact exponential search.
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Abort with [`CoreError::BudgetExhausted`] after this many search
    /// nodes. The NP-hard instances grow exponentially; benches use this to
    /// bound runs.
    pub node_budget: u64,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            node_budget: u64::MAX,
        }
    }
}

/// Find a deletion for `target` minimizing the number of other view tuples
/// lost. Exact for every monotone SPJRU query; exponential time in the worst
/// case (the problem is NP-hard for PJ and JU queries).
///
/// Solves one target; to solve many targets over the same `(Q, S)`, build a
/// [`DeletionContext`] once and call
/// [`DeletionContext::min_view_side_effects`] per target.
pub fn min_view_side_effects(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &ExactOptions,
) -> Result<Deletion> {
    DeletionContext::new(q, db)?.min_view_side_effects(target, opts)
}

/// The rescan baseline: the **same** branch-and-bound skeleton as
/// [`min_view_side_effects`], but every node recomputes the side-effect
/// count (and every branch-ordering delta probe) with a full
/// [`DeletionInstance::side_effect_count`] hypergraph rescan. Kept as the
/// differential-test oracle and the `solver_incremental` bench baseline
/// (cargo feature `legacy-oracles`, like every other oracle path);
/// identical traversal ⇒ identical solutions.
///
/// Note the cost model: this baseline answers every side-effect *question*
/// of the delta-ordered search by rescanning — one rescan per node plus
/// two per branch probe. The pre-index solver ordered branches by witness
/// width and paid exactly one rescan per node; the bench ratio therefore
/// measures the per-question cost gap under the shared search shape (the
/// shape the identical-solutions guarantee requires), not a like-for-like
/// race against the historical width-ordered search.
#[cfg(feature = "legacy-oracles")]
pub fn min_view_side_effects_naive(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &ExactOptions,
) -> Result<Deletion> {
    let inst = DeletionInstance::build(q, db, target)?;
    min_view_side_effects_naive_on(&inst, opts)
}

/// [`min_view_side_effects_naive`] on a prebuilt instance — lets the
/// `solver_incremental` bench time the search alone, with the provenance
/// materialization hoisted out of both paths (the incremental side is
/// [`min_view_side_effects_on`]).
#[cfg(feature = "legacy-oracles")]
pub fn min_view_side_effects_naive_on(
    inst: &DeletionInstance,
    opts: &ExactOptions,
) -> Result<Deletion> {
    let mut state = NaiveState::new(inst);
    let found = run_search(&mut state, usize::MAX, opts)?;
    let (deletions, _) = found.expect("a hitting set always exists (delete the whole support)");
    let view_side_effects = inst.side_effects(&deletions);
    Ok(Deletion {
        deletions,
        view_side_effects,
    })
}

/// [`min_view_side_effects`] on a prebuilt index: runs the incremental
/// branch-and-bound on `idx` (which must be freshly built for its target —
/// no tuples inserted) and leaves it in that clean state on success, so
/// callers can reuse one index across solves. After a
/// [`CoreError::BudgetExhausted`] abort the index holds the partial
/// deletion set of the interrupted node and should be discarded.
pub fn min_view_side_effects_on(idx: &mut WitnessIndex, opts: &ExactOptions) -> Result<Deletion> {
    debug_assert_eq!(idx.deleted_len(), 0, "index must start empty");
    let found = run_search(&mut IndexedState(idx), usize::MAX, opts)?;
    finish_solution(idx, found)
}

/// [`min_view_side_effects_on`] with the first level of the
/// branch-and-bound fanned out across `pool`: every root branch explores
/// its subtree on a **cloned** index under the sequential exclusion
/// discipline, sharing one atomic best bound for (strictly-worse-only)
/// cross-branch pruning. The returned solution is **identical** to the
/// sequential search's — see `run_search_parallel` for why — and a
/// one-thread pool runs [`min_view_side_effects_on`] verbatim.
///
/// A **finite [`ExactOptions::node_budget`] also forces the sequential
/// path**: the fan-out's weaker cross-branch pruning (no early stop when
/// a sibling finds a perfect solution, equal-quality subtrees explored
/// per branch) can consume node budget the sequential search would not,
/// so under a cap the outcome — success vs [`CoreError::BudgetExhausted`]
/// — would depend on the core count. Budgeted callers (the keyed
/// polynomial certificate, bench bounds) get sequential semantics
/// exactly — including [`min_view_side_effects_on`]'s dirty-index
/// caveat on abort, since every reachable abort takes that route; only
/// unbudgeted searches fan out.
pub fn min_view_side_effects_on_par(
    idx: &mut WitnessIndex,
    opts: &ExactOptions,
    pool: ParPool,
) -> Result<Deletion> {
    if pool.is_sequential() || opts.node_budget != u64::MAX {
        return min_view_side_effects_on(idx, opts);
    }
    debug_assert_eq!(idx.deleted_len(), 0, "index must start empty");
    let found = run_search_parallel(idx, usize::MAX, opts, pool)?;
    finish_solution(idx, found)
}

/// Replay the winning deletion set into the (clean) index, read the side
/// effects off its counters, and unwind.
fn finish_solution(
    idx: &mut WitnessIndex,
    found: Option<(BTreeSet<Tid>, usize)>,
) -> Result<Deletion> {
    let (deletions, _) = found.expect("a hitting set always exists (delete the whole support)");
    for tid in &deletions {
        idx.insert(tid);
    }
    debug_assert!(idx.deletes_target());
    let view_side_effects = idx.side_effects();
    for tid in &deletions {
        idx.remove(tid);
    }
    Ok(Deletion {
        deletions,
        view_side_effects,
    })
}

/// Decide whether a **side-effect-free** deletion exists (the paper's §2.1
/// dichotomy question), returning one if so.
pub fn side_effect_free(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &ExactOptions,
) -> Result<Option<Deletion>> {
    DeletionContext::new(q, db)?.side_effect_free(target, opts)
}

/// Fewest support tuples before the context entry points fan the
/// branch-and-bound's first level out across threads: below this the
/// whole search finishes faster than a spawn.
const PAR_SEARCH_MIN_SUPPORT: usize = 16;

impl DeletionContext {
    /// The pool the exact search should use for `idx`: the context's own,
    /// unless the instance is too small to amortize a fan-out.
    pub(crate) fn search_pool(&self, idx: &WitnessIndex) -> ParPool {
        if idx.support().len() >= PAR_SEARCH_MIN_SUPPORT {
            self.pool()
        } else {
            ParPool::sequential()
        }
    }

    /// [`min_view_side_effects`] against this context's shared provenance:
    /// stamps out the target's instance and frontier index, then runs the
    /// incremental branch-and-bound (first level fanned out across the
    /// context's pool when the instance is big enough — identical
    /// solutions either way).
    pub fn min_view_side_effects(&self, target: &Tuple, opts: &ExactOptions) -> Result<Deletion> {
        let (_, mut idx) = self.instance_and_index(target)?;
        let pool = self.search_pool(&idx);
        min_view_side_effects_on_par(&mut idx, opts, pool)
    }

    /// [`DeletionContext::min_view_side_effects`] for the serving loop:
    /// solves on the target's **cached** [`WitnessIndex`] — kept warm and
    /// patched in place across [`DeletionContext::apply_delete`] turns —
    /// re-stamping from the touch skeleton only when the cache was
    /// invalidated. Identical solutions to the uncached entry point
    /// (pinned by `tests/prop_parallel.rs`).
    pub fn min_view_side_effects_turn(
        &mut self,
        target: &Tuple,
        opts: &ExactOptions,
    ) -> Result<Deletion> {
        let mut idx = self.take_index(target)?;
        let pool = self.search_pool(&idx);
        // On a budget abort the branch state is unwound for the parallel
        // path but not the sequential one — drop the index either way;
        // correctness never reuses a dirty index.
        let sol = min_view_side_effects_on_par(&mut idx, opts, pool)?;
        self.cache_index(target, idx);
        Ok(sol)
    }

    /// Theorem 2.3 inside the serving loop: for SPU queries every witness
    /// is a single source tuple, so the unique minimal deletion is the
    /// target's whole support — read off the maintained context with no
    /// search and no union-normal-form pass. The caller guarantees the
    /// SPU class (the dichotomy dispatchers do); the free
    /// [`spu_view_deletion`] remains the from-scratch entry point.
    pub fn spu_view_deletion(&self, target: &Tuple) -> Result<Deletion> {
        let (inst, mut idx) = self.instance_and_index(target)?;
        debug_assert!(
            inst.target_witnesses.iter().all(|w| w.len() == 1),
            "SPU witnesses are singletons"
        );
        for slot in 0..idx.support().len() {
            idx.insert_slot(slot);
        }
        debug_assert!(idx.deletes_target());
        // Thm 2.3 guarantees emptiness; read the counters rather than
        // assert it, so a mis-dispatched class still returns the truth.
        Ok(Deletion {
            deletions: idx.deleted_tids(),
            view_side_effects: idx.side_effects(),
        })
    }

    /// [`side_effect_free`] against this context's shared provenance.
    pub fn side_effect_free(
        &self,
        target: &Tuple,
        opts: &ExactOptions,
    ) -> Result<Option<Deletion>> {
        let (_, mut idx) = self.instance_and_index(target)?;
        // Cap 1: only solutions with < 1 side effects qualify.
        let found = run_search(&mut IndexedState(&mut idx), 1, opts)?;
        Ok(found.map(|(deletions, _)| Deletion {
            deletions,
            view_side_effects: BTreeSet::new(),
        }))
    }
}

/// What the branch-and-bound needs from its state. Two implementations
/// drive the **same** [`run_search`] skeleton — [`IndexedState`] answers
/// from [`WitnessIndex`] counters in `O(occ)`, [`NaiveState`] rescans the
/// hypergraph per question — so both explore the same tree and return
/// identical solutions; only the per-node cost differs.
trait SearchState {
    /// Side effects of the current deletion set.
    fn side_effect_count(&self) -> usize;
    /// Side-effect increase if `slot` were deleted (branch-ordering key).
    fn delta_if_deleted(&mut self, slot: usize) -> usize;
    /// Add support slot `slot` to the deletion set (descend).
    fn insert(&mut self, slot: usize);
    /// Remove support slot `slot` from the deletion set (backtrack).
    fn remove(&mut self, slot: usize);
    /// Size of the support (slot space).
    fn support_len(&self) -> usize;
    /// Number of target witnesses.
    fn target_witness_count(&self) -> usize;
    /// Whether target witness `i` is hit by the current deletion set.
    fn target_witness_hit(&self, i: usize) -> bool;
    /// Member slots of target witness `i`.
    fn target_witness_members(&self, i: usize) -> &[usize];
    /// The current deletion set, as tuple ids.
    fn deleted_tids(&self) -> BTreeSet<Tid>;
}

/// Incremental search state: all answers from the index counters.
struct IndexedState<'a>(&'a mut WitnessIndex);

impl SearchState for IndexedState<'_> {
    fn side_effect_count(&self) -> usize {
        self.0.side_effect_count()
    }
    fn delta_if_deleted(&mut self, slot: usize) -> usize {
        self.0.delta_if_deleted(slot)
    }
    fn insert(&mut self, slot: usize) {
        self.0.insert_slot(slot);
    }
    fn remove(&mut self, slot: usize) {
        self.0.remove_slot(slot);
    }
    fn support_len(&self) -> usize {
        self.0.support().len()
    }
    fn target_witness_count(&self) -> usize {
        self.0.target_witness_count()
    }
    fn target_witness_hit(&self, i: usize) -> bool {
        self.0.target_witness_hit(i)
    }
    fn target_witness_members(&self, i: usize) -> &[usize] {
        self.0.target_witness_members(i)
    }
    fn deleted_tids(&self) -> BTreeSet<Tid> {
        self.0.deleted_tids()
    }
}

/// Naive search state: the original per-node cost model — every
/// side-effect question is a full `why.iter()` rescan.
#[cfg(feature = "legacy-oracles")]
struct NaiveState<'a> {
    inst: &'a DeletionInstance,
    /// Target witnesses as member slots into the sorted support.
    members: Vec<Vec<usize>>,
    current: BTreeSet<Tid>,
}

#[cfg(feature = "legacy-oracles")]
impl<'a> NaiveState<'a> {
    fn new(inst: &'a DeletionInstance) -> NaiveState<'a> {
        NaiveState {
            inst,
            members: inst.witness_member_slots(),
            current: BTreeSet::new(),
        }
    }
}

#[cfg(feature = "legacy-oracles")]
impl SearchState for NaiveState<'_> {
    fn side_effect_count(&self) -> usize {
        self.inst.side_effect_count(&self.current)
    }
    fn delta_if_deleted(&mut self, slot: usize) -> usize {
        let before = self.side_effect_count();
        self.insert(slot);
        let after = self.side_effect_count();
        self.remove(slot);
        after - before
    }
    fn insert(&mut self, slot: usize) {
        self.current.insert(self.inst.support[slot].clone());
    }
    fn remove(&mut self, slot: usize) {
        self.current.remove(&self.inst.support[slot]);
    }
    fn support_len(&self) -> usize {
        self.inst.support.len()
    }
    fn target_witness_count(&self) -> usize {
        self.members.len()
    }
    fn target_witness_hit(&self, i: usize) -> bool {
        self.members[i]
            .iter()
            .any(|&s| self.current.contains(&self.inst.support[s]))
    }
    fn target_witness_members(&self, i: usize) -> &[usize] {
        &self.members[i]
    }
    fn deleted_tids(&self) -> BTreeSet<Tid> {
        self.current.clone()
    }
}

/// Cross-branch state of one parallel search: the atomic best bound for
/// strictly-worse-only pruning. There is deliberately no shared node
/// budget — the parallel entry point routes every finite
/// [`ExactOptions::node_budget`] to the sequential path, so branch-local
/// counting (which never fires at `u64::MAX`) avoids a contended atomic
/// increment on every search node.
struct SharedSearch {
    bound: AtomicUsize,
}

/// Bookkeeping shared by every node of one (branch-local) search.
struct SearchCtx<'a> {
    nodes: u64,
    budget: u64,
    best: Option<(BTreeSet<Tid>, usize)>,
    bound: usize,
    /// Present only under the parallel fan-out: the shared bound adds
    /// pruning of strictly-worse subtrees.
    shared: Option<&'a SharedSearch>,
}

/// Branch-and-bound over (minimal) hitting sets of the target's witnesses.
/// Returns the best solution with side-effect count `< cap`, or `None`.
fn run_search<S: SearchState>(
    state: &mut S,
    cap: usize,
    opts: &ExactOptions,
) -> Result<Option<(BTreeSet<Tid>, usize)>> {
    let mut ctx = SearchCtx {
        nodes: 0,
        budget: opts.node_budget,
        best: None,
        bound: cap,
        shared: None,
    };
    let mut excluded = vec![false; state.support_len()];
    recurse(state, &mut ctx, &mut excluded)?;
    Ok(ctx.best)
}

fn recurse<S: SearchState>(
    state: &mut S,
    ctx: &mut SearchCtx<'_>,
    excluded: &mut [bool],
) -> Result<()> {
    ctx.nodes += 1;
    if ctx.nodes > ctx.budget {
        return Err(CoreError::BudgetExhausted { budget: ctx.budget });
    }
    // Side effects only grow as the deletion set grows — prune at the bound.
    let se = state.side_effect_count();
    if se >= ctx.bound {
        return Ok(());
    }
    // Cross-branch pruning must stay *strict* (only `se` strictly above
    // the shared best): it then never cuts a subtree that could reach the
    // global optimum, which is what keeps the parallel fan-out's combined
    // answer identical to the sequential search (see `run_search_parallel`).
    if let Some(shared) = ctx.shared {
        if se > shared.bound.load(Ordering::Relaxed) {
            return Ok(());
        }
    }
    // Pick the unhit witness with the fewest available choices (fail-first
    // on width); `None` means the current set is already a hitting set.
    let Some((_, wi)) = pick_witness(state, excluded) else {
        ctx.best = Some((state.deleted_tids(), se));
        ctx.bound = se; // future solutions must be strictly better
        if let Some(shared) = ctx.shared {
            shared.bound.fetch_min(se, Ordering::Relaxed);
        }
        return Ok(());
    };
    // Order the branch choices by their incremental side-effect delta —
    // fail-first on *cost*: cheap branches first tighten the bound early.
    let members: Vec<usize> = state.target_witness_members(wi).to_vec();
    let mut choices: Vec<(usize, usize)> = members
        .into_iter()
        .filter(|&s| !excluded[s])
        .map(|s| (state.delta_if_deleted(s), s))
        .collect();
    choices.sort_unstable();
    let mut locally_excluded = Vec::new();
    for (_, slot) in choices {
        state.insert(slot);
        recurse(state, ctx, excluded)?;
        state.remove(slot);
        // Standard minimal-hitting-set enumeration: once a branch for
        // `slot` is fully explored, later siblings must not use it.
        excluded[slot] = true;
        locally_excluded.push(slot);
        if ctx.bound == 0 {
            break; // cannot beat a perfect solution
        }
    }
    for slot in locally_excluded {
        excluded[slot] = false;
    }
    Ok(())
}

/// The fail-first branching choice shared by [`recurse`] and the parallel
/// root in [`run_search_parallel`]: the unhit target witness with the
/// fewest non-excluded member slots, as `(available, witness)`. Keeping
/// one copy is what keeps the parallel fan-out's branch ordering — and
/// hence its bit-identical-results guarantee — in lockstep with the
/// sequential search.
fn pick_witness<S: SearchState>(state: &S, excluded: &[bool]) -> Option<(usize, usize)> {
    let mut pick: Option<(usize, usize)> = None;
    for wi in 0..state.target_witness_count() {
        if state.target_witness_hit(wi) {
            continue;
        }
        let avail = state
            .target_witness_members(wi)
            .iter()
            .filter(|&&s| !excluded[s])
            .count();
        if pick.is_none_or(|(a, _)| avail < a) {
            pick = Some((avail, wi));
        }
    }
    pick
}

/// The **top-level parallel fan-out** of the branch-and-bound: replicate
/// [`recurse`]'s root node (fail-first witness pick, delta-ordered
/// choices), then explore each first-level branch on a cloned index under
/// the sequential exclusion discipline — branch `i` starts with branches
/// `0..i`'s slots excluded, exactly as the sequential loop would have
/// left them.
///
/// **Why the combined answer is identical to [`run_search`]'s.** The
/// sequential search returns the *first* solution attaining the optimal
/// side-effect count `k` in its traversal order (later equal solutions
/// never replace it — the bound demands strictly better). Per branch, the
/// traversal order is deterministic and pruning-independent, and a branch
/// running with only its own local bound visits a *superset* of the nodes
/// the sequential search visits there (the sequential bound may be
/// tighter, never looser); the shared atomic bound only ever prunes nodes
/// with `se` **strictly above** the global optimum, so every branch still
/// reaches its first `k`-valued solution if it has one. A branch earlier
/// than the sequential winner cannot produce a `k`-valued solution the
/// sequential search missed (its nodes with `se ≤ k` were never pruned
/// sequentially either), so taking the minimum by `(side effects, branch
/// order)` reproduces the sequential answer exactly — pinned by
/// `tests/prop_parallel.rs` across thread counts.
fn run_search_parallel(
    idx: &mut WitnessIndex,
    cap: usize,
    opts: &ExactOptions,
    pool: ParPool,
) -> Result<Option<(BTreeSet<Tid>, usize)>> {
    debug_assert_eq!(
        opts.node_budget,
        u64::MAX,
        "finite budgets route to the sequential search"
    );
    let shared = SharedSearch {
        bound: AtomicUsize::new(cap),
    };
    // The root node, replicated from `recurse`.
    let se0 = idx.side_effect_count();
    if se0 >= cap {
        return Ok(None);
    }
    let no_exclusions = vec![false; idx.support().len()]; // nothing excluded at the root
    let Some((_, wi)) = pick_witness(&IndexedState(idx), &no_exclusions) else {
        // Already a hitting set (possible only on a pre-loaded index).
        return Ok(Some((idx.deleted_tids(), se0)));
    };
    let members: Vec<usize> = idx.target_witness_members(wi).to_vec();
    // Delta-probe on the caller's index (probes unwind to clean), then
    // share it immutably with the branches — no extra full clone.
    let mut choices: Vec<(usize, usize)> = members
        .into_iter()
        .map(|s| (idx.delta_if_deleted(s), s))
        .collect();
    choices.sort_unstable();
    let idx = &*idx;
    let results = pool.par_indices(choices.len(), |i| {
        let mut branch = idx.clone();
        let mut excluded = vec![false; branch.support().len()];
        for &(_, s) in &choices[..i] {
            excluded[s] = true;
        }
        let (_, slot) = choices[i];
        branch.insert_slot(slot);
        let mut ctx = SearchCtx {
            nodes: 0,
            budget: u64::MAX, // only unbudgeted searches reach the fan-out
            best: None,
            bound: cap,
            shared: Some(&shared),
        };
        recurse(&mut IndexedState(&mut branch), &mut ctx, &mut excluded)?;
        Ok::<_, CoreError>(ctx.best)
    });
    // Combine in branch order; ties go to the earliest branch — exactly
    // the solution the sequential traversal records first.
    let mut best: Option<(BTreeSet<Tid>, usize)> = None;
    for res in results {
        if let Some((set, se)) = res? {
            if best.as_ref().is_none_or(|&(_, b)| se < b) {
                best = Some((set, se));
            }
        }
    }
    Ok(best)
}

/// Theorem 2.3: for SPU queries (select/project/union, no join, no rename)
/// there is a **unique** minimal deletion and it is always side-effect-free:
/// delete every source tuple that produces `t` through any branch.
/// Runs in linear time via the union normal form — no provenance index.
pub fn spu_view_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let fp = OpFootprint::of(q);
    if fp.join || fp.rename {
        return Err(CoreError::WrongClass {
            expected: "SPU (join-free, rename-free)",
            found: fp.letters(),
        });
    }
    let catalog = db.catalog();
    let out_schema = output_schema(q, &catalog)?;
    let nf = normalize(q, &catalog)?;
    let mut deletions = BTreeSet::new();
    for branch in &nf.branches {
        debug_assert_eq!(branch.scans.len(), 1, "join-free branches have one scan");
        let scan = &branch.scans[0];
        let rel = db.require(&scan.rel)?;
        // No joins and no renames ⇒ current names equal original names.
        let schema = rel.schema();
        // For each output attribute, its position in the scanned relation.
        let positions = schema.positions_of(out_schema.attrs())?;
        for (row, u) in rel.tuples().iter().enumerate() {
            if branch.pred.eval(schema, u)? && &u.project_positions(&positions) == target {
                deletions.insert(Tid {
                    rel: rel.name().clone(),
                    row,
                });
            }
        }
    }
    if deletions.is_empty() {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    // Theorem 2.3 guarantees no side effects; the cross-check lives in the
    // module tests (agreement with the exact solver and re-evaluation).
    Ok(Deletion {
        deletions,
        view_side_effects: BTreeSet::new(),
    })
}

/// Theorem 2.4: for SJ queries every view tuple has a **single** witness
/// (one source tuple per joined relation). The minimum-view-side-effect
/// deletion removes the witness component shared with the fewest other view
/// tuples; it is side-effect-free iff some component appears in no other
/// witness.
pub fn sj_view_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let fp = OpFootprint::of(q);
    if fp.project || fp.union_ {
        return Err(CoreError::WrongClass {
            expected: "SJ (projection-free, union-free)",
            found: fp.letters(),
        });
    }
    let inst = DeletionInstance::build(q, db, target)?;
    let idx = WitnessIndex::build(&inst);
    sj_from_index(&inst, idx)
}

/// [`sj_view_deletion`] against a shared [`DeletionContext`] (class check is
/// the caller's job — used by the batched dichotomy dispatcher).
pub(crate) fn sj_view_deletion_in(ctx: &DeletionContext, target: &Tuple) -> Result<Deletion> {
    let (inst, idx) = ctx.instance_and_index(target)?;
    sj_from_index(&inst, idx)
}

/// Thm 2.4's component scan on the index: every per-component side-effect
/// count is an `O(occ)` counter probe, so the whole scan is one pass over
/// the component occurrence lists instead of one hypergraph rescan each.
fn sj_from_index(inst: &DeletionInstance, mut idx: WitnessIndex) -> Result<Deletion> {
    debug_assert_eq!(
        inst.target_witnesses.len(),
        1,
        "SJ output tuples have exactly one witness"
    );
    let mut best: Option<(usize, usize)> = None; // (side effects, slot)
                                                 // Slots ascend in tid order, so keeping the first strict minimum
                                                 // reproduces the (count, tid) tie-break of the rescan implementation.
    for slot in 0..idx.support().len() {
        let count = idx.delta_if_deleted(slot);
        if best.is_none_or(|(c, _)| count < c) {
            best = Some((count, slot));
        }
    }
    let (_, slot) = best.expect("witnesses are non-empty");
    idx.insert_slot(slot);
    debug_assert!(idx.deletes_target());
    Ok(Deletion {
        deletions: idx.deleted_tids(),
        view_side_effects: idx.side_effects(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn usergroup() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn exact_finds_side_effect_free_deletion() {
        let (q, db) = usergroup();
        let t = tuple(["bob", "report"]);
        let sol = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        assert!(sol.is_side_effect_free(), "solution {sol}");
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.deletes_target(&sol.deletions));
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
    }

    #[test]
    fn exact_reports_unavoidable_side_effects() {
        // Every deletion of (a,c) from Π_{A,C}(R1 ⋈ R2) with a shared middle
        // value kills a neighbor.
        let db = parse_database(
            "relation R1(A, B) { (a, x), (a2, x) }
             relation R2(B, C) { (x, c), (x, c2) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [A, C])").unwrap();
        let t = tuple(["a", "c"]);
        let sol = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        // Deleting (a,x) kills (a,c2); deleting (x,c) kills (a2,c). Either
        // way exactly one side effect.
        assert_eq!(sol.view_cost(), 1);
        assert_eq!(sol.source_cost(), 1);
        assert!(side_effect_free(&q, &db, &t, &ExactOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn decision_and_optimization_agree() {
        let (q, db) = usergroup();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let min = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
            let free = side_effect_free(&q, &db, &t, &ExactOptions::default()).unwrap();
            assert_eq!(min.is_side_effect_free(), free.is_some(), "target {t}");
        }
    }

    #[test]
    fn budget_is_enforced() {
        let (q, db) = usergroup();
        let t = tuple(["bob", "report"]);
        let err = min_view_side_effects(&q, &db, &t, &ExactOptions { node_budget: 1 }).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
    }

    /// A finite node budget must behave identically under every pool: the
    /// parallel entry point routes budgeted searches to the sequential
    /// path (the fan-out's weaker pruning could otherwise burn budget the
    /// sequential search would not, making success depend on core count —
    /// which would panic the keyed polynomial certificate).
    #[test]
    fn finite_budgets_are_pool_independent() {
        let (q, db) = usergroup();
        let t = tuple(["bob", "report"]);
        let ctx = DeletionContext::new_with(&q, &db, ParPool::sequential()).unwrap();
        let pool = ParPool::new(4);
        let opts = ExactOptions {
            node_budget: 10_000,
        };
        let (_, mut idx) = ctx.instance_and_index(&t).unwrap();
        let seq = min_view_side_effects_on(&mut idx, &opts).unwrap();
        let (_, mut idx) = ctx.instance_and_index(&t).unwrap();
        let par = min_view_side_effects_on_par(&mut idx, &opts, pool).unwrap();
        assert_eq!(seq, par);
        // Exhaustion aborts identically, independent of the pool.
        let (_, mut idx) = ctx.instance_and_index(&t).unwrap();
        let err = min_view_side_effects_on_par(&mut idx, &ExactOptions { node_budget: 1 }, pool);
        assert!(matches!(err, Err(CoreError::BudgetExhausted { .. })));
    }

    #[test]
    fn missing_target_errors() {
        let (q, db) = usergroup();
        let err = min_view_side_effects(&q, &db, &tuple(["zz", "zz"]), &ExactOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::TargetNotInView { .. }));
    }

    #[test]
    fn spu_unique_deletion_is_side_effect_free() {
        let db = parse_database(
            "relation R(A, B) { (a1, b1), (a1, b2), (a2, b1) }
             relation S(A, B) { (a1, b1), (a3, b3) }",
        )
        .unwrap();
        // Π_A(σ_{B=b1}(R)) ∪ Π_A(S)
        let q = parse_query("union(project(select(scan R, B = 'b1'), [A]), project(scan S, [A]))")
            .unwrap();
        let t = tuple(["a1"]);
        let sol = spu_view_deletion(&q, &db, &t).unwrap();
        // Must delete (a1,b1) from R (passes the selection) and both S rows
        // projecting to a1: (a1,b1).
        assert_eq!(sol.source_cost(), 2);
        assert!(sol.is_side_effect_free());
        // Cross-check against the exact solver and re-evaluation.
        let exact = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        assert_eq!(
            exact.deletions, sol.deletions,
            "Thm 2.3: the solution is unique"
        );
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
        assert!(inst.side_effects(&sol.deletions).is_empty());
    }

    #[test]
    fn spu_rejects_wrong_class_and_missing_target() {
        let (q, db) = usergroup();
        assert!(matches!(
            spu_view_deletion(&q, &db, &tuple(["bob", "report"])),
            Err(CoreError::WrongClass { .. })
        ));
        let db2 = parse_database("relation R(A) { (a) }").unwrap();
        let q2 = parse_query("scan R").unwrap();
        assert!(matches!(
            spu_view_deletion(&q2, &db2, &tuple(["zz"])),
            Err(CoreError::TargetNotInView { .. })
        ));
    }

    #[test]
    fn sj_picks_min_side_effect_component() {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (staff, memo)
             }",
        )
        .unwrap();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        let t = tuple(["ann", "staff", "report"]);
        let sol = sj_view_deletion(&q, &db, &t).unwrap();
        // Deleting (ann,staff) kills (ann,staff,memo) → 1 side effect.
        // Deleting (staff,report) kills (bob,staff,report) → 1 side effect.
        assert_eq!(sol.view_cost(), 1);
        assert_eq!(sol.source_cost(), 1);
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
    }

    #[test]
    fn sj_side_effect_free_when_component_unshared() {
        let db = parse_database(
            "relation R(A, B) { (a1, k), (a2, k) }
             relation S(B, C) { (k, c1) }",
        )
        .unwrap();
        let q = parse_query("join(scan R, scan S)").unwrap();
        let t = tuple(["a1", "k", "c1"]);
        let sol = sj_view_deletion(&q, &db, &t).unwrap();
        // (a1,k) participates only in the target's witness.
        assert!(sol.is_side_effect_free());
        assert_eq!(
            sol.deletions,
            BTreeSet::from([db.tid_of("R", &tuple(["a1", "k"])).unwrap()])
        );
    }

    #[test]
    fn sj_agrees_with_exact_solver() {
        let (_, db) = usergroup();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let sj = sj_view_deletion(&q, &db, &t).unwrap();
            let exact = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
            assert_eq!(sj.view_cost(), exact.view_cost(), "target {t}");
        }
    }

    #[test]
    fn sj_rejects_wrong_class() {
        let (q, db) = usergroup();
        assert!(matches!(
            sj_view_deletion(&q, &db, &tuple(["bob", "report"])),
            Err(CoreError::WrongClass { .. })
        ));
    }

    #[test]
    fn ju_union_of_joins_side_effect_structure() {
        // A miniature of the Theorem 2.2 construction: deleting (T, F) from
        // (R1 ⋈ RP1) ∪ (R1 ⋈ S1-as-A2) forces deleting T or F.
        let db = parse_database(
            "relation R1(A1) { (T) }
             relation RP1(A2) { (F) }
             relation S1(A2) { (c1) }",
        )
        .unwrap();
        let q = parse_query("union(join(scan R1, scan RP1), join(scan R1, scan S1))").unwrap();
        let t = tuple(["T", "F"]);
        // Deleting F from RP1 is side-effect-free; deleting T kills (T, c1).
        let sol = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        assert!(sol.is_side_effect_free());
        assert_eq!(
            sol.deletions,
            BTreeSet::from([db.tid_of("RP1", &tuple(["F"])).unwrap()])
        );
    }
}
