//! The **view side-effect problem** (§2.1): delete `t` from the view while
//! killing as few other view tuples as possible.
//!
//! * For arbitrary monotone queries the problem is NP-hard (Thms 2.1, 2.2) —
//!   [`min_view_side_effects`] is an exact branch-and-bound that enumerates
//!   minimal hitting sets of the target's witness hypergraph, pruning with
//!   the (monotone) side-effect count.
//! * [`side_effect_free`] decides the paper's headline question — "is there
//!   a side-effect-free deletion?" — by running the same search capped at
//!   zero side effects.
//! * [`spu_view_deletion`] (Thm 2.3) and [`sj_view_deletion`] (Thm 2.4) are
//!   the polynomial algorithms for the tractable classes.

use crate::deletion::{Deletion, DeletionInstance};
use crate::error::{CoreError, Result};
use dap_provenance::Witness;
use dap_relalg::{normalize, output_schema, Database, OpFootprint, Query, Tid, Tuple};
use std::collections::BTreeSet;

/// Knobs for the exact exponential search.
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Abort with [`CoreError::BudgetExhausted`] after this many search
    /// nodes. The NP-hard instances grow exponentially; benches use this to
    /// bound runs.
    pub node_budget: u64,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            node_budget: u64::MAX,
        }
    }
}

/// Find a deletion for `target` minimizing the number of other view tuples
/// lost. Exact for every monotone SPJRU query; exponential time in the worst
/// case (the problem is NP-hard for PJ and JU queries).
pub fn min_view_side_effects(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &ExactOptions,
) -> Result<Deletion> {
    let inst = DeletionInstance::build(q, db, target)?;
    let found = search(&inst, usize::MAX, opts)?;
    let (deletions, _) = found.expect("a hitting set always exists (delete the whole support)");
    let view_side_effects = inst.side_effects(&deletions);
    Ok(Deletion {
        deletions,
        view_side_effects,
    })
}

/// Decide whether a **side-effect-free** deletion exists (the paper's §2.1
/// dichotomy question), returning one if so.
pub fn side_effect_free(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &ExactOptions,
) -> Result<Option<Deletion>> {
    let inst = DeletionInstance::build(q, db, target)?;
    let found = search(&inst, 1, opts)?; // cap: only solutions with < 1 side effects
    Ok(found.map(|(deletions, _)| Deletion {
        deletions,
        view_side_effects: BTreeSet::new(),
    }))
}

/// Branch-and-bound over (minimal) hitting sets of the target's witnesses.
/// Returns the best solution with side-effect count `< cap`, or `None`.
fn search(
    inst: &DeletionInstance,
    cap: usize,
    opts: &ExactOptions,
) -> Result<Option<(BTreeSet<Tid>, usize)>> {
    struct Ctx<'a> {
        inst: &'a DeletionInstance,
        nodes: u64,
        budget: u64,
        best: Option<(BTreeSet<Tid>, usize)>,
        bound: usize,
    }

    fn recurse(
        ctx: &mut Ctx<'_>,
        current: &mut BTreeSet<Tid>,
        excluded: &mut BTreeSet<Tid>,
    ) -> Result<()> {
        ctx.nodes += 1;
        if ctx.nodes > ctx.budget {
            return Err(CoreError::BudgetExhausted { budget: ctx.budget });
        }
        // Side effects only grow as `current` grows — prune at the bound.
        let se = ctx.inst.side_effect_count(current);
        if se >= ctx.bound {
            return Ok(());
        }
        // Pick the unhit witness with the fewest available choices
        // (fail-first); `None` means `current` is already a hitting set.
        let next: Option<&Witness> = ctx
            .inst
            .target_witnesses
            .iter()
            .filter(|w| !w.iter().any(|tid| current.contains(tid)))
            .min_by_key(|w| w.iter().filter(|tid| !excluded.contains(*tid)).count());
        let Some(w) = next else {
            ctx.best = Some((current.clone(), se));
            ctx.bound = se; // future solutions must be strictly better
            return Ok(());
        };
        let choices: Vec<Tid> = w
            .iter()
            .filter(|tid| !excluded.contains(*tid))
            .cloned()
            .collect();
        let mut locally_excluded = Vec::new();
        for tid in choices {
            current.insert(tid.clone());
            recurse(ctx, current, excluded)?;
            current.remove(&tid);
            // Standard minimal-hitting-set enumeration: once a branch for
            // `tid` is fully explored, later siblings must not use it.
            excluded.insert(tid.clone());
            locally_excluded.push(tid);
            if ctx.bound == 0 {
                break; // cannot beat a perfect solution
            }
        }
        for tid in locally_excluded {
            excluded.remove(&tid);
        }
        Ok(())
    }

    let mut ctx = Ctx {
        inst,
        nodes: 0,
        budget: opts.node_budget,
        best: None,
        bound: cap,
    };
    let mut current = BTreeSet::new();
    let mut excluded = BTreeSet::new();
    recurse(&mut ctx, &mut current, &mut excluded)?;
    Ok(ctx.best)
}

/// Theorem 2.3: for SPU queries (select/project/union, no join, no rename)
/// there is a **unique** minimal deletion and it is always side-effect-free:
/// delete every source tuple that produces `t` through any branch.
/// Runs in linear time via the union normal form — no provenance index.
pub fn spu_view_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let fp = OpFootprint::of(q);
    if fp.join || fp.rename {
        return Err(CoreError::WrongClass {
            expected: "SPU (join-free, rename-free)",
            found: fp.letters(),
        });
    }
    let catalog = db.catalog();
    let out_schema = output_schema(q, &catalog)?;
    let nf = normalize(q, &catalog)?;
    let mut deletions = BTreeSet::new();
    for branch in &nf.branches {
        debug_assert_eq!(branch.scans.len(), 1, "join-free branches have one scan");
        let scan = &branch.scans[0];
        let rel = db.require(&scan.rel)?;
        // No joins and no renames ⇒ current names equal original names.
        let schema = rel.schema();
        // For each output attribute, its position in the scanned relation.
        let positions = schema.positions_of(out_schema.attrs())?;
        for (row, u) in rel.tuples().iter().enumerate() {
            if branch.pred.eval(schema, u)? && &u.project_positions(&positions) == target {
                deletions.insert(Tid {
                    rel: rel.name().clone(),
                    row,
                });
            }
        }
    }
    if deletions.is_empty() {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    // Theorem 2.3 guarantees no side effects; the cross-check lives in the
    // module tests (agreement with the exact solver and re-evaluation).
    Ok(Deletion {
        deletions,
        view_side_effects: BTreeSet::new(),
    })
}

/// Theorem 2.4: for SJ queries every view tuple has a **single** witness
/// (one source tuple per joined relation). The minimum-view-side-effect
/// deletion removes the witness component shared with the fewest other view
/// tuples; it is side-effect-free iff some component appears in no other
/// witness.
pub fn sj_view_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let fp = OpFootprint::of(q);
    if fp.project || fp.union_ {
        return Err(CoreError::WrongClass {
            expected: "SJ (projection-free, union-free)",
            found: fp.letters(),
        });
    }
    let inst = DeletionInstance::build(q, db, target)?;
    debug_assert_eq!(
        inst.target_witnesses.len(),
        1,
        "SJ output tuples have exactly one witness"
    );
    let witness = &inst.target_witnesses[0];
    let best = witness
        .iter()
        .map(|tid| {
            let single = BTreeSet::from([tid.clone()]);
            let count = inst.side_effect_count(&single);
            (count, single)
        })
        .min_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
        .expect("witnesses are non-empty");
    let view_side_effects = inst.side_effects(&best.1);
    Ok(Deletion {
        deletions: best.1,
        view_side_effects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn usergroup() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn exact_finds_side_effect_free_deletion() {
        let (q, db) = usergroup();
        let t = tuple(["bob", "report"]);
        let sol = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        assert!(sol.is_side_effect_free(), "solution {sol}");
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.deletes_target(&sol.deletions));
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
    }

    #[test]
    fn exact_reports_unavoidable_side_effects() {
        // Every deletion of (a,c) from Π_{A,C}(R1 ⋈ R2) with a shared middle
        // value kills a neighbor.
        let db = parse_database(
            "relation R1(A, B) { (a, x), (a2, x) }
             relation R2(B, C) { (x, c), (x, c2) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [A, C])").unwrap();
        let t = tuple(["a", "c"]);
        let sol = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        // Deleting (a,x) kills (a,c2); deleting (x,c) kills (a2,c). Either
        // way exactly one side effect.
        assert_eq!(sol.view_cost(), 1);
        assert_eq!(sol.source_cost(), 1);
        assert!(side_effect_free(&q, &db, &t, &ExactOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn decision_and_optimization_agree() {
        let (q, db) = usergroup();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let min = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
            let free = side_effect_free(&q, &db, &t, &ExactOptions::default()).unwrap();
            assert_eq!(min.is_side_effect_free(), free.is_some(), "target {t}");
        }
    }

    #[test]
    fn budget_is_enforced() {
        let (q, db) = usergroup();
        let t = tuple(["bob", "report"]);
        let err = min_view_side_effects(&q, &db, &t, &ExactOptions { node_budget: 1 }).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
    }

    #[test]
    fn missing_target_errors() {
        let (q, db) = usergroup();
        let err = min_view_side_effects(&q, &db, &tuple(["zz", "zz"]), &ExactOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::TargetNotInView { .. }));
    }

    #[test]
    fn spu_unique_deletion_is_side_effect_free() {
        let db = parse_database(
            "relation R(A, B) { (a1, b1), (a1, b2), (a2, b1) }
             relation S(A, B) { (a1, b1), (a3, b3) }",
        )
        .unwrap();
        // Π_A(σ_{B=b1}(R)) ∪ Π_A(S)
        let q = parse_query("union(project(select(scan R, B = 'b1'), [A]), project(scan S, [A]))")
            .unwrap();
        let t = tuple(["a1"]);
        let sol = spu_view_deletion(&q, &db, &t).unwrap();
        // Must delete (a1,b1) from R (passes the selection) and both S rows
        // projecting to a1: (a1,b1).
        assert_eq!(sol.source_cost(), 2);
        assert!(sol.is_side_effect_free());
        // Cross-check against the exact solver and re-evaluation.
        let exact = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        assert_eq!(
            exact.deletions, sol.deletions,
            "Thm 2.3: the solution is unique"
        );
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
        assert!(inst.side_effects(&sol.deletions).is_empty());
    }

    #[test]
    fn spu_rejects_wrong_class_and_missing_target() {
        let (q, db) = usergroup();
        assert!(matches!(
            spu_view_deletion(&q, &db, &tuple(["bob", "report"])),
            Err(CoreError::WrongClass { .. })
        ));
        let db2 = parse_database("relation R(A) { (a) }").unwrap();
        let q2 = parse_query("scan R").unwrap();
        assert!(matches!(
            spu_view_deletion(&q2, &db2, &tuple(["zz"])),
            Err(CoreError::TargetNotInView { .. })
        ));
    }

    #[test]
    fn sj_picks_min_side_effect_component() {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (staff, memo)
             }",
        )
        .unwrap();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        let t = tuple(["ann", "staff", "report"]);
        let sol = sj_view_deletion(&q, &db, &t).unwrap();
        // Deleting (ann,staff) kills (ann,staff,memo) → 1 side effect.
        // Deleting (staff,report) kills (bob,staff,report) → 1 side effect.
        assert_eq!(sol.view_cost(), 1);
        assert_eq!(sol.source_cost(), 1);
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
    }

    #[test]
    fn sj_side_effect_free_when_component_unshared() {
        let db = parse_database(
            "relation R(A, B) { (a1, k), (a2, k) }
             relation S(B, C) { (k, c1) }",
        )
        .unwrap();
        let q = parse_query("join(scan R, scan S)").unwrap();
        let t = tuple(["a1", "k", "c1"]);
        let sol = sj_view_deletion(&q, &db, &t).unwrap();
        // (a1,k) participates only in the target's witness.
        assert!(sol.is_side_effect_free());
        assert_eq!(
            sol.deletions,
            BTreeSet::from([db.tid_of("R", &tuple(["a1", "k"])).unwrap()])
        );
    }

    #[test]
    fn sj_agrees_with_exact_solver() {
        let (_, db) = usergroup();
        let q = parse_query("join(scan UserGroup, scan GroupFile)").unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let sj = sj_view_deletion(&q, &db, &t).unwrap();
            let exact = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
            assert_eq!(sj.view_cost(), exact.view_cost(), "target {t}");
        }
    }

    #[test]
    fn sj_rejects_wrong_class() {
        let (q, db) = usergroup();
        assert!(matches!(
            sj_view_deletion(&q, &db, &tuple(["bob", "report"])),
            Err(CoreError::WrongClass { .. })
        ));
    }

    #[test]
    fn ju_union_of_joins_side_effect_structure() {
        // A miniature of the Theorem 2.2 construction: deleting (T, F) from
        // (R1 ⋈ RP1) ∪ (R1 ⋈ S1-as-A2) forces deleting T or F.
        let db = parse_database(
            "relation R1(A1) { (T) }
             relation RP1(A2) { (F) }
             relation S1(A2) { (c1) }",
        )
        .unwrap();
        let q = parse_query("union(join(scan R1, scan RP1), join(scan R1, scan S1))").unwrap();
        let t = tuple(["T", "F"]);
        // Deleting F from RP1 is side-effect-free; deleting T kills (T, c1).
        let sol = min_view_side_effects(&q, &db, &t, &ExactOptions::default()).unwrap();
        assert!(sol.is_side_effect_free());
        assert_eq!(
            sol.deletions,
            BTreeSet::from([db.tid_of("RP1", &tuple(["F"])).unwrap()])
        );
    }
}
