//! Deletion propagation (Section 2 of the paper).
//!
//! Given `(Q, S, t ∈ Q(S))`, find `T ⊆ S` whose deletion removes `t`,
//! minimizing either the **view side-effect** `|ΔV|` (other view tuples
//! lost, §2.1) or the **source side-effect** `|T|` (§2.2). Solvers:
//!
//! | module | algorithm | paper result |
//! |--------|-----------|--------------|
//! | [`view_side_effect`] | exact branch-and-bound over minimal hitting sets of the witness hypergraph; poly specializations for SPU / SJ | Thms 2.1–2.4 |
//! | [`source_side_effect`] | exact minimum hitting set + greedy `H_n` approximation; poly SPU / SJ | Thms 2.5, 2.7–2.9 |
//! | [`chain`] | min-cut over the layered witness network for chain joins | Thm 2.6 |
//! | [`lineage_baseline`] | Cui–Widom-style candidate enumeration with re-evaluation | the \[14\] baseline |
//! | [`crate::ilp`] | unified 0/1-ILP over the witness hypergraph (both objectives, weights, multi-tuple targets) | all of §2, generalized |
//!
//! The searches share two substrates: [`index::WitnessIndex`], the
//! incremental witness-hypergraph index that makes per-node side-effect
//! counting `O(Δ)`, and [`context::DeletionContext`], which materializes the
//! why-provenance once per `(Q, S)` and stamps out per-target instances.

pub mod chain;
pub mod context;
pub mod index;
pub mod instance;
pub mod keyed;
pub mod lineage_baseline;
pub mod source_side_effect;
pub mod view_side_effect;

pub use context::DeletionContext;
pub use index::WitnessIndex;
pub use instance::DeletionInstance;

use dap_relalg::{Tid, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// A solution to either deletion problem: the source tuples to delete and
/// the resulting collateral damage in the view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Deletion {
    /// Source tuples to delete (the paper's `T`).
    pub deletions: BTreeSet<Tid>,
    /// View tuples other than the target that disappear (the paper's `ΔV`).
    pub view_side_effects: BTreeSet<Tuple>,
}

impl Deletion {
    /// Whether the deletion removes only the target from the view.
    pub fn is_side_effect_free(&self) -> bool {
        self.view_side_effects.is_empty()
    }

    /// `|T|`, the source-side cost.
    pub fn source_cost(&self) -> usize {
        self.deletions.len()
    }

    /// `|ΔV|`, the view-side cost.
    pub fn view_cost(&self) -> usize {
        self.view_side_effects.len()
    }
}

impl fmt::Display for Deletion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delete {{")?;
        for (i, tid) in self.deletions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{tid}")?;
        }
        write!(
            f,
            "}} (view side effects: {})",
            self.view_side_effects.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_and_display() {
        let d = Deletion {
            deletions: BTreeSet::from([Tid::new("R", 0), Tid::new("R", 2)]),
            view_side_effects: BTreeSet::from([dap_relalg::tuple(["x"])]),
        };
        assert_eq!(d.source_cost(), 2);
        assert_eq!(d.view_cost(), 1);
        assert!(!d.is_side_effect_free());
        assert_eq!(d.to_string(), "delete {R#0, R#2} (view side effects: 1)");
    }
}
