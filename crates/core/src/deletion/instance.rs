//! The witness hypergraph of a deletion problem.
//!
//! For a monotone query, `t ∈ Q(S \ T)` iff some minimal witness of `t`
//! survives `T` intact, so:
//!
//! * deleting `t` ⇔ `T` **hits** every minimal witness of `t`
//!   (hitting-set structure — Section 2.2 of the paper), and
//! * a side-effect on another view tuple `t'` occurs ⇔ `T` hits every
//!   minimal witness of `t'` (the quantity Section 2.1 minimizes).
//!
//! [`DeletionInstance`] materializes the why-provenance once and answers both
//! questions combinatorially, so the search solvers never re-evaluate the
//! query.

use crate::error::{CoreError, Result};
use dap_provenance::{why_provenance, WhyProvenance, Witness};
use dap_relalg::{Database, Query, Tid, Tuple};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A deletion problem `(Q, S, t)` with its witness hypergraph materialized.
///
/// The query, database, and why-provenance are held by [`Arc`] so the
/// branch-and-bound solvers — and a [`crate::deletion::DeletionContext`]
/// stamping out one instance per target over the same `(Q, S)` — share a
/// single copy instead of deep-cloning (or recomputing) per instance.
#[derive(Clone, Debug)]
pub struct DeletionInstance {
    /// The query (shared, not cloned per instance).
    pub query: Arc<Query>,
    /// The source database (shared, not cloned per instance).
    pub db: Arc<Database>,
    /// The view tuple to delete.
    pub target: Tuple,
    /// Why-provenance of the whole view (shared across targets).
    pub why: Arc<WhyProvenance>,
    /// Minimal witnesses of the target (the sets to hit).
    pub target_witnesses: Vec<Witness>,
    /// Union of the target's witnesses — the candidate deletion pool
    /// (anything outside it only adds side effects). Sorted.
    pub support: Vec<Tid>,
    /// Source tuples already deleted from `db` before this instance's
    /// problem was posed (empty for fresh builds). A
    /// [`crate::deletion::DeletionContext`] that has applied committed
    /// deletions stamps them here so
    /// [`DeletionInstance::verify_against_reevaluation`] evaluates the
    /// right baseline; the combinatorial answers need no adjustment —
    /// the patched why-provenance already excludes dead tuples.
    pub committed: BTreeSet<Tid>,
}

impl DeletionInstance {
    /// Build the instance; errors if `target` is not in the view.
    ///
    /// Clones `query` and `db` once into shared handles; callers that
    /// already hold [`Arc`]s (or build many instances over the same pair)
    /// should use [`DeletionInstance::build_shared`].
    pub fn build(query: &Query, db: &Database, target: &Tuple) -> Result<DeletionInstance> {
        DeletionInstance::build_shared(Arc::new(query.clone()), Arc::new(db.clone()), target)
    }

    /// Build the instance from shared handles, without cloning the query or
    /// the database.
    pub fn build_shared(
        query: Arc<Query>,
        db: Arc<Database>,
        target: &Tuple,
    ) -> Result<DeletionInstance> {
        let why = Arc::new(why_provenance(&query, &db)?);
        let target_witnesses = why
            .witnesses_of(target)
            .ok_or_else(|| CoreError::TargetNotInView {
                tuple: target.clone(),
            })?
            .to_vec();
        let support: BTreeSet<Tid> = target_witnesses.iter().flatten().cloned().collect();
        Ok(DeletionInstance {
            query,
            db,
            target: target.clone(),
            why,
            target_witnesses,
            support: support.into_iter().collect(),
            committed: BTreeSet::new(),
        })
    }

    /// The target's witnesses translated to member *slots* into the sorted
    /// [`DeletionInstance::support`] (slot `i` ↔ `support[i]`) — the
    /// representation the hitting-set translation, the search states, and
    /// [`crate::deletion::WitnessIndex`] share.
    pub fn witness_member_slots(&self) -> Vec<Vec<usize>> {
        self.target_witnesses
            .iter()
            .map(|w| {
                w.iter()
                    .map(|tid| {
                        self.support
                            .binary_search(tid)
                            .expect("witness tids are in the support")
                    })
                    .collect()
            })
            .collect()
    }

    /// Whether deleting `deleted` removes the target from the view
    /// (hits every target witness).
    pub fn deletes_target(&self, deleted: &BTreeSet<Tid>) -> bool {
        self.target_witnesses
            .iter()
            .all(|w| w.iter().any(|tid| deleted.contains(tid)))
    }

    /// The view tuples other than the target that deleting `deleted` kills.
    pub fn side_effects(&self, deleted: &BTreeSet<Tid>) -> BTreeSet<Tuple> {
        self.why
            .iter()
            .filter(|(t, _)| **t != self.target)
            .filter(|(_, ws)| ws.iter().all(|w| w.iter().any(|tid| deleted.contains(tid))))
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Count-only variant of [`Self::side_effects`] (used in inner search
    /// loops).
    pub fn side_effect_count(&self, deleted: &BTreeSet<Tid>) -> usize {
        self.why
            .iter()
            .filter(|(t, _)| **t != self.target)
            .filter(|(_, ws)| ws.iter().all(|w| w.iter().any(|tid| deleted.contains(tid))))
            .count()
    }

    /// Re-evaluate the query on `S \ deleted` and confirm the combinatorial
    /// answers: the target is gone and the side effects match. Used by tests
    /// and the `verify` path of the solvers. Deletions in
    /// [`DeletionInstance::committed`] are applied to both sides of the
    /// comparison (they happened before this problem was posed).
    pub fn verify_against_reevaluation(&self, deleted: &BTreeSet<Tid>) -> Result<bool> {
        let mut full: BTreeSet<Tid> = self.committed.clone();
        full.extend(deleted.iter().cloned());
        let after = dap_relalg::eval(&self.query, &self.db.without(&full))?;
        let expected_gone = self.deletes_target(deleted);
        let actually_gone = !after.contains(&self.target);
        if expected_gone != actually_gone {
            return Ok(false);
        }
        let predicted: BTreeSet<Tuple> = self.side_effects(deleted);
        let before = dap_relalg::eval(&self.query, &self.db.without(&self.committed))?;
        let actually_dead: BTreeSet<Tuple> = before
            .tuples
            .iter()
            .filter(|t| **t != self.target && !after.contains(t))
            .cloned()
            .collect();
        Ok(predicted == actually_dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn instance() -> DeletionInstance {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        DeletionInstance::build(&q, &db, &tuple(["bob", "report"])).unwrap()
    }

    #[test]
    fn build_collects_target_witnesses_and_support() {
        let inst = instance();
        assert_eq!(inst.target_witnesses.len(), 2);
        assert_eq!(inst.support.len(), 4);
    }

    #[test]
    fn build_rejects_missing_target() {
        let db = parse_database("relation R(A) { (a) }").unwrap();
        let q = parse_query("scan R").unwrap();
        let err = DeletionInstance::build(&q, &db, &tuple(["zz"])).unwrap_err();
        assert!(matches!(err, CoreError::TargetNotInView { .. }));
    }

    #[test]
    fn deletes_target_requires_hitting_all_witnesses() {
        let inst = instance();
        // Deleting just (bob, staff) leaves the dev witness alive.
        let one = BTreeSet::from([inst
            .db
            .tid_of("UserGroup", &tuple(["bob", "staff"]))
            .unwrap()]);
        assert!(!inst.deletes_target(&one));
        // Deleting both of bob's memberships kills the target.
        let both: BTreeSet<Tid> = [
            inst.db
                .tid_of("UserGroup", &tuple(["bob", "staff"]))
                .unwrap(),
            inst.db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap(),
        ]
        .into();
        assert!(inst.deletes_target(&both));
        // …but with a side effect: (bob, main) dies too.
        assert_eq!(
            inst.side_effects(&both),
            BTreeSet::from([tuple(["bob", "main"])])
        );
        assert_eq!(inst.side_effect_count(&both), 1);
    }

    #[test]
    fn alternative_deletion_is_side_effect_free() {
        let inst = instance();
        // Delete (staff,report) and (dev,report) from GroupFile: kills
        // bob/report AND ann/report — has a side effect.
        let files: BTreeSet<Tid> = [
            inst.db
                .tid_of("GroupFile", &tuple(["staff", "report"]))
                .unwrap(),
            inst.db
                .tid_of("GroupFile", &tuple(["dev", "report"]))
                .unwrap(),
        ]
        .into();
        assert!(inst.deletes_target(&files));
        assert_eq!(inst.side_effects(&files).len(), 1);
        // Mixed: delete (bob,staff) + (dev,report): kills both witnesses of
        // the target and nothing else.
        let mixed: BTreeSet<Tid> = [
            inst.db
                .tid_of("UserGroup", &tuple(["bob", "staff"]))
                .unwrap(),
            inst.db
                .tid_of("GroupFile", &tuple(["dev", "report"]))
                .unwrap(),
        ]
        .into();
        assert!(inst.deletes_target(&mixed));
        assert!(inst.side_effects(&mixed).is_empty());
    }

    #[test]
    fn combinatorics_agree_with_reevaluation() {
        let inst = instance();
        // Exhaustively check every subset of the support (4 tuples → 16).
        let support = inst.support.clone();
        for bits in 0u32..(1 << support.len()) {
            let deleted: BTreeSet<Tid> = support
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, tid)| tid.clone())
                .collect();
            assert!(
                inst.verify_against_reevaluation(&deleted).unwrap(),
                "mismatch for deletion set {deleted:?}"
            );
        }
    }

    #[test]
    fn empty_deletion_changes_nothing() {
        let inst = instance();
        let none = BTreeSet::new();
        assert!(!inst.deletes_target(&none));
        assert!(inst.side_effects(&none).is_empty());
    }
}
