//! Key-constrained PJ queries — the §2.1.1 escape hatch.
//!
//! "Fortunately, most joins are performed on foreign keys. It is easy to
//! show that project join queries based on key constraints (e.g. lossless
//! joins with respect to a set of functional dependencies) allow us to
//! decide whether there is a side-effect-free deletion in polynomial time."
//!
//! The precise condition this module uses: in every normal-form branch, the
//! projected attributes functionally determine the whole join under the
//! declared FDs ([`dap_relalg::projection_determines_join`]). Then every
//! output tuple has exactly **one** witness per branch — the witness
//! hypergraph degenerates to the SJ case of Theorems 2.4/2.9, and both
//! deletion problems become polynomial:
//!
//! * the why-provenance computation itself stays polynomial (witness sets
//!   never multiply), and
//! * the component-scan algorithm applies unchanged.

use crate::deletion::view_side_effect::ExactOptions;
use crate::deletion::{Deletion, DeletionInstance};
use crate::error::{CoreError, Result};
use dap_relalg::{normalize, projection_determines_join, Database, FdCatalog, Query, Tuple};

/// Whether the declared FDs make `q` witness-unique per branch (the keyed
/// poly-time condition). Also validates that the FDs hold on `db`.
pub fn is_keyed(q: &Query, db: &Database, fds: &FdCatalog) -> Result<bool> {
    if fds.validate(db).is_err() {
        return Ok(false);
    }
    let nf = normalize(q, &db.catalog())?;
    Ok(nf
        .branches
        .iter()
        .all(|b| projection_determines_join(b, fds)))
}

/// Polynomial minimum-view-side-effect deletion for keyed queries.
/// Errors with [`CoreError::WrongClass`] if the FD condition does not hold
/// (use the exact solver then).
pub fn keyed_view_deletion(
    q: &Query,
    db: &Database,
    fds: &FdCatalog,
    target: &Tuple,
) -> Result<Deletion> {
    let inst = keyed_instance(q, db, fds, target)?;
    // With one witness per (tuple, branch) the exact search is polynomial:
    // the branching factor is the witness size and no subset explosion can
    // occur. Run it with a budget that certifies polynomial behaviour.
    let witnesses = inst.target_witnesses.len();
    let support = inst.support.len();
    let budget = (witnesses.max(1) * support.max(1) * 8 + 64) as u64;
    let sol = crate::deletion::view_side_effect::min_view_side_effects(
        q,
        db,
        target,
        &ExactOptions {
            node_budget: budget,
        },
    );
    match sol {
        Err(CoreError::BudgetExhausted { .. }) => {
            unreachable!("keyed instances have ≤ one witness per branch; the search is polynomial")
        }
        other => other,
    }
}

/// Polynomial minimum source deletion for keyed queries: hit one tuple per
/// (per-branch unique) witness; the greedy choice is optimal because the
/// witnesses are the only sets to hit and they are few.
pub fn keyed_source_deletion(
    q: &Query,
    db: &Database,
    fds: &FdCatalog,
    target: &Tuple,
) -> Result<Deletion> {
    let inst = keyed_instance(q, db, fds, target)?;
    // The witness count is at most the number of branches — tiny — so the
    // exact hitting-set solver runs in polynomial time here.
    let _ = &inst;
    crate::deletion::source_side_effect::min_source_deletion(q, db, target)
}

/// Decide side-effect-freeness for keyed queries in polynomial time
/// (the claim of §2.1.1).
pub fn keyed_side_effect_free(
    q: &Query,
    db: &Database,
    fds: &FdCatalog,
    target: &Tuple,
) -> Result<Option<Deletion>> {
    let sol = keyed_view_deletion(q, db, fds, target)?;
    Ok(sol.is_side_effect_free().then_some(sol))
}

fn keyed_instance(
    q: &Query,
    db: &Database,
    fds: &FdCatalog,
    target: &Tuple,
) -> Result<DeletionInstance> {
    if !is_keyed(q, db, fds)? {
        return Err(CoreError::WrongClass {
            expected: "keyed PJ (projection determines the join under the FDs)",
            found: format!("{}", dap_relalg::OpFootprint::of(q)),
        });
    }
    let inst = DeletionInstance::build(q, db, target)?;
    // The FD condition caps witnesses at one per branch.
    let branches = normalize(q, &db.catalog())?.branches.len();
    debug_assert!(
        inst.target_witnesses.len() <= branches,
        "keyed queries have at most one witness per branch"
    );
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::view_side_effect::min_view_side_effects;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fk_db() -> (Database, FdCatalog) {
        let db = parse_database(
            "relation Emp(eid, dept) { (e1, sales), (e2, sales), (e3, eng) }
             relation Dept(dept, mgr) { (sales, ann), (eng, bob) }",
        )
        .unwrap();
        let mut fds = FdCatalog::new();
        fds.add_key(&db, "Emp", &["eid"]);
        fds.add_key(&db, "Dept", &["dept"]);
        (db, fds)
    }

    #[test]
    fn keyed_condition_detected() {
        let (db, fds) = fk_db();
        let keyed = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        assert!(is_keyed(&keyed, &db, &fds).unwrap());
        let unkeyed = parse_query("project(join(scan Emp, scan Dept), [mgr])").unwrap();
        assert!(!is_keyed(&unkeyed, &db, &fds).unwrap());
        // No FDs declared → not keyed.
        assert!(!is_keyed(&keyed, &db, &FdCatalog::new()).unwrap());
    }

    #[test]
    fn keyed_view_deletion_matches_exact() {
        let (db, fds) = fk_db();
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        let view = dap_relalg::eval(&q, &db).unwrap();
        for t in &view.tuples {
            let keyed = keyed_view_deletion(&q, &db, &fds, t).unwrap();
            let exact = min_view_side_effects(&q, &db, t, &ExactOptions::default()).unwrap();
            assert_eq!(keyed.view_cost(), exact.view_cost(), "target {t}");
            let inst = DeletionInstance::build(&q, &db, t).unwrap();
            assert!(inst.deletes_target(&keyed.deletions));
        }
    }

    #[test]
    fn unique_witness_structure() {
        let (db, _) = fk_db();
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        let t = tuple(["e1", "ann"]);
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert_eq!(
            inst.target_witnesses.len(),
            1,
            "key joins give single witnesses"
        );
        assert_eq!(inst.target_witnesses[0].len(), 2);
    }

    #[test]
    fn keyed_side_effect_free_decision() {
        let (db, fds) = fk_db();
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        // (e3, bob): e3 is the only eng employee — deleting Emp(e3, eng) is
        // side-effect-free.
        let sol = keyed_side_effect_free(&q, &db, &fds, &tuple(["e3", "bob"])).unwrap();
        assert!(sol.is_some());
        // (e1, ann): deleting Emp(e1,sales) is side-effect-free too (e2
        // still reaches ann through its own row).
        let sol = keyed_side_effect_free(&q, &db, &fds, &tuple(["e1", "ann"])).unwrap();
        assert!(sol.is_some());
    }

    #[test]
    fn keyed_source_deletion_is_single_tuple() {
        let (db, fds) = fk_db();
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        let sol = keyed_source_deletion(&q, &db, &fds, &tuple(["e1", "ann"])).unwrap();
        assert_eq!(
            sol.source_cost(),
            1,
            "single witness → delete one component"
        );
    }

    #[test]
    fn rejects_unkeyed_queries() {
        let (db, fds) = fk_db();
        let q = parse_query("project(join(scan Emp, scan Dept), [mgr])").unwrap();
        assert!(matches!(
            keyed_view_deletion(&q, &db, &fds, &tuple(["ann"])),
            Err(CoreError::WrongClass { .. })
        ));
    }

    #[test]
    fn violated_fds_disable_the_fast_path() {
        let (db, mut fds) = fk_db();
        // Declare a bogus key that the instance violates.
        fds.add("Emp", dap_relalg::Fd::new(["dept"], ["eid"]));
        let q = parse_query("project(join(scan Emp, scan Dept), [eid, mgr])").unwrap();
        assert!(!is_keyed(&q, &db, &fds).unwrap());
    }
}
