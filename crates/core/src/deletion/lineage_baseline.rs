//! The Cui–Widom lineage baseline (\[14\] in the paper).
//!
//! \[14\] translates view deletions using **lineage** \[15\] "as a starting
//! point, to enumerate all candidate witnesses for a deletion": gather the
//! contributing source tuples, then search deletion candidates, checking
//! each by re-evaluating the view. The paper's §1 remark — "it is NP-hard to
//! find all witnesses for a tuple in the output" — is why this baseline
//! cannot beat the witness-hypergraph solvers; the ablation bench
//! (`ablation_lineage_baseline`) measures the gap.

use crate::deletion::Deletion;
use crate::error::{CoreError, Result};
use dap_provenance::{lineage, lineage_support};
use dap_relalg::{eval, Database, Query, Tid, Tuple};
use std::collections::BTreeSet;

/// Budget knobs for the baseline search.
#[derive(Clone, Copy, Debug)]
pub struct BaselineOptions {
    /// Abort after this many candidate re-evaluations.
    pub max_evaluations: u64,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            max_evaluations: u64::MAX,
        }
    }
}

/// Decide side-effect-free deletability the lineage way: enumerate subsets
/// of the target's lineage in increasing size, re-evaluating the query for
/// each candidate. Returns a side-effect-free deletion if one exists.
pub fn side_effect_free_via_lineage(
    q: &Query,
    db: &Database,
    target: &Tuple,
    opts: &BaselineOptions,
) -> Result<Option<Deletion>> {
    let before = eval(q, db)?;
    if !before.contains(target) {
        return Err(CoreError::TargetNotInView {
            tuple: target.clone(),
        });
    }
    let pool: Vec<Tid> = {
        let l = lineage(q, db, target)?;
        lineage_support(&l).into_iter().collect()
    };
    let mut evaluations = 0u64;
    // Breadth-first by subset size so the first hit is source-minimal among
    // side-effect-free deletions.
    for size in 1..=pool.len() {
        let mut indices: Vec<usize> = (0..size).collect();
        loop {
            let candidate: BTreeSet<Tid> = indices.iter().map(|&i| pool[i].clone()).collect();
            evaluations += 1;
            if evaluations > opts.max_evaluations {
                return Err(CoreError::BudgetExhausted {
                    budget: opts.max_evaluations,
                });
            }
            let after = eval(q, &db.without(&candidate))?;
            if !after.contains(target) && after.len() == before.len() - 1 {
                // Exactly the target disappeared (monotone queries cannot
                // gain tuples under deletion).
                return Ok(Some(Deletion {
                    deletions: candidate,
                    view_side_effects: BTreeSet::new(),
                }));
            }
            if !next_combination(&mut indices, pool.len()) {
                break;
            }
        }
    }
    Ok(None)
}

/// Advance `indices` to the next size-`|indices|` combination of
/// `0..n` in lexicographic order; `false` when exhausted.
fn next_combination(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] != i + n - k {
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::view_side_effect::{side_effect_free, ExactOptions};
    use dap_relalg::{parse_database, parse_query, tuple};

    fn usergroup() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn baseline_agrees_with_hypergraph_solver() {
        let (q, db) = usergroup();
        for t in eval(&q, &db).unwrap().tuples.clone() {
            let baseline =
                side_effect_free_via_lineage(&q, &db, &t, &BaselineOptions::default()).unwrap();
            let fast = side_effect_free(&q, &db, &t, &ExactOptions::default()).unwrap();
            assert_eq!(baseline.is_some(), fast.is_some(), "target {t}");
            if let Some(sol) = baseline {
                let after = eval(&q, &db.without(&sol.deletions)).unwrap();
                assert!(!after.contains(&t));
                assert_eq!(after.len(), eval(&q, &db).unwrap().len() - 1);
            }
        }
    }

    #[test]
    fn baseline_detects_impossibility() {
        let db = parse_database(
            "relation R1(A, B) { (a, x), (a2, x) }
             relation R2(B, C) { (x, c), (x, c2) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [A, C])").unwrap();
        let out =
            side_effect_free_via_lineage(&q, &db, &tuple(["a", "c"]), &BaselineOptions::default())
                .unwrap();
        assert!(out.is_none(), "every deletion has a side effect here");
    }

    #[test]
    fn baseline_budget_enforced() {
        let (q, db) = usergroup();
        let err = side_effect_free_via_lineage(
            &q,
            &db,
            &tuple(["bob", "report"]),
            &BaselineOptions { max_evaluations: 1 },
        );
        // Either it finds a solution on the very first candidate or the
        // budget trips; with a 4-tuple pool the first singleton candidate is
        // not a solution, so the second evaluation trips the budget.
        assert!(matches!(err, Err(CoreError::BudgetExhausted { .. })));
    }

    #[test]
    fn baseline_errors_on_missing_target() {
        let (q, db) = usergroup();
        assert!(matches!(
            side_effect_free_via_lineage(
                &q,
                &db,
                &tuple(["zz", "zz"]),
                &BaselineOptions::default()
            ),
            Err(CoreError::TargetNotInView { .. })
        ));
    }
}
