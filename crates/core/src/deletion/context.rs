//! One materialization of `(Q, S)` serving many deletion targets — and,
//! since the context owns a **maintained** annotated plan, surviving the
//! deletions it recommends.
//!
//! Every deletion solver needs the why-provenance of the view — and before
//! this module each per-target entry point recomputed it from scratch.
//! [`DeletionContext`] builds the materialized pipeline
//! ([`MaterializedPlan<WitnessesAnn>`]) **once**, derives the
//! why-provenance and the tuple-id → view-tuple *touch skeleton* of the
//! witness hypergraph from it, and then stamps out per-target
//! [`DeletionInstance`]s ([`DeletionContext::for_target`]) and
//! frontier-restricted [`WitnessIndex`]es ([`DeletionContext::index_for`])
//! in time proportional to the target's neighborhood, not the view.
//!
//! The plan is what turns the context from a per-query calculator into a
//! serving loop: after a solver commits a deletion,
//! [`DeletionContext::apply_delete`] pushes it through the pipeline in
//! `O(affected)`, patches the why-provenance and the touch skeleton from
//! the returned [`ViewDelta`], and the next target is solved against the
//! *updated* view — no re-evaluation, no context rebuild.
//! [`DeletionContext::resolve_after_delete`] packages one turn of that
//! apply-and-re-solve loop; the batched
//! `delete_min_view_side_effects_apply_many` /
//! `delete_min_source_apply_many` dispatchers in [`crate::dichotomy`] run
//! it over whole target lists.
//!
//! A context can also be served from a **shared-plan registry**
//! ([`DeletionContext::new_in_registry`]): instead of owning a private
//! [`MaterializedPlan`], the context registers its query in a
//! [`PlanRegistry`] — α-equivalent operator subtrees are shared with every
//! other registered query, and one registry `delete_sources` push maintains
//! them all. The context subscribes to its query's delta stream;
//! [`DeletionContext::apply_delete_in`] commits through the registry and
//! [`DeletionContext::sync_in`] drains deltas other contexts committed, so
//! any number of serving loops stay coherent over one shared DAG.
//!
//! The solver entry points live here as methods
//! ([`DeletionContext::min_view_side_effects`],
//! [`DeletionContext::side_effect_free`],
//! [`DeletionContext::min_source_deletion`],
//! [`DeletionContext::greedy_source_deletion`]); the free functions in
//! [`crate::deletion::view_side_effect`] and
//! [`crate::deletion::source_side_effect`] are now thin wrappers that build
//! a context for their single target.

use crate::deletion::index::WitnessIndex;
use crate::deletion::view_side_effect::ExactOptions;
use crate::deletion::{Deletion, DeletionInstance};
use crate::error::{CoreError, Result};
use dap_provenance::{WhyProvenance, Witness, WitnessesAnn};
use dap_relalg::{
    Database, MaterializedPlan, ParPool, PlanRegistry, Query, QueryId, Schema, Tid, Tuple,
    ViewDelta,
};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Most per-target [`WitnessIndex`]es the serving-loop cache retains (see
/// [`DeletionContext::cache_index`]). Enough for any realistic hot set of
/// repeat targets; prevents one-pass sweeps over huge views from
/// accumulating an index per view tuple.
const MAX_CACHED_INDEXES: usize = 256;

/// Where a context's maintained annotated view lives: a private
/// [`MaterializedPlan`], or one registered query inside a shared
/// [`PlanRegistry`] whose deltas arrive through the subscription outbox.
#[derive(Clone, Debug)]
enum PlanBackend {
    /// The context owns its pipeline; [`DeletionContext::apply_delete`]
    /// pushes deltas directly.
    Owned(MaterializedPlan<WitnessesAnn>),
    /// The pipeline is shared: the context holds its registered query's id
    /// and commits through [`DeletionContext::apply_delete_in`] /
    /// [`DeletionContext::sync_in`] against the registry.
    Registry(QueryId),
}

/// The view skeleton every context derives from its annotated view at
/// build time: the why-provenance plus the inverted tid → view-tuple touch
/// index (see the matching [`DeletionContext`] fields).
struct Skeleton {
    why: Arc<WhyProvenance>,
    tuples: Vec<Tuple>,
    alive: Vec<bool>,
    index_of: HashMap<Tuple, usize>,
    touch_of: Vec<BTreeSet<Tid>>,
    touching: HashMap<Tid, Vec<usize>>,
}

/// The shared substrate of all deletion problems over one `(Q, S)`: the
/// maintained annotated plan, the why-provenance read off it, and the
/// inverted skeleton used to cut per-target frontiers out of the
/// hypergraph without rescanning the view.
///
/// Tuple ids always refer to the database the context was built over —
/// applied deletions accumulate in [`DeletionContext::committed`] and never
/// renumber anything.
#[derive(Clone, Debug)]
pub struct DeletionContext {
    query: Arc<Query>,
    db: Arc<Database>,
    /// The maintained pipeline — owned, or a query registered in a shared
    /// [`PlanRegistry`]; either way `delete_sources` keeps the annotated
    /// view (and hence everything below) current.
    backend: PlanBackend,
    why: Arc<WhyProvenance>,
    /// View tuples in why-provenance order (indexed by the skeleton).
    /// Slots are stable; deletions tombstone via `alive`.
    tuples: Vec<Tuple>,
    /// Liveness per skeleton slot (false once a deletion removed it).
    alive: Vec<bool>,
    /// View tuple → skeleton slot.
    index_of: HashMap<Tuple, usize>,
    /// Current support of each view tuple's witness basis (used to diff
    /// `touching` when a deletion changes a basis).
    touch_of: Vec<BTreeSet<Tid>>,
    /// tuple id → slots of view tuples with a witness containing that id.
    /// The *index skeleton*: built once, patched additively on deletion
    /// (entries may go stale — dead or no-longer-touching slots are
    /// filtered on read — but are never missing).
    touching: HashMap<Tid, Vec<usize>>,
    /// Every source tuple deleted through this context so far.
    committed: BTreeSet<Tid>,
    /// Per-target [`WitnessIndex`]es kept warm across serving-loop turns
    /// (the `*_turn` solver entry points): [`DeletionContext::apply_delete`]
    /// patches each cached index in place when it can
    /// ([`WitnessIndex::retire_tuple`]) and evicts it when the deletion
    /// touched the index's structure, so repeat targets skip the
    /// re-stamp from the touch skeleton entirely.
    index_cache: HashMap<Tuple, WitnessIndex>,
    /// Sharding policy for materialization and the solver entry points.
    pool: ParPool,
}

impl DeletionContext {
    /// Materialize the context; one annotated plan build plus one pass over
    /// the witness lists, sharded over the process-default [`ParPool`].
    pub fn new(query: &Query, db: &Database) -> Result<DeletionContext> {
        DeletionContext::new_shared(Arc::new(query.clone()), Arc::new(db.clone()))
    }

    /// [`DeletionContext::new`] with an explicit pool (the context keeps it
    /// for its solver entry points; identical results for every pool size).
    pub fn new_with(query: &Query, db: &Database, pool: ParPool) -> Result<DeletionContext> {
        DeletionContext::new_shared_with(Arc::new(query.clone()), Arc::new(db.clone()), pool)
    }

    /// Like [`DeletionContext::new`], from shared handles (no deep clones).
    pub fn new_shared(query: Arc<Query>, db: Arc<Database>) -> Result<DeletionContext> {
        DeletionContext::new_shared_with(query, db, ParPool::global())
    }

    /// [`DeletionContext::new_shared`] with an explicit pool: the plan
    /// build shards operator-by-operator, and the witness flattening that
    /// feeds the why-provenance and the touch skeleton maps per view
    /// tuple; skeleton assembly stays sequential, so the context is
    /// identical for every pool size.
    pub fn new_shared_with(
        query: Arc<Query>,
        db: Arc<Database>,
        pool: ParPool,
    ) -> Result<DeletionContext> {
        let plan = MaterializedPlan::<WitnessesAnn>::build_with(&query, &db, pool)?;
        let sk =
            DeletionContext::build_skeleton(plan.schema().clone(), plan.iter().collect(), pool);
        Ok(DeletionContext {
            query,
            db,
            backend: PlanBackend::Owned(plan),
            why: sk.why,
            tuples: sk.tuples,
            alive: sk.alive,
            index_of: sk.index_of,
            touch_of: sk.touch_of,
            touching: sk.touching,
            committed: BTreeSet::new(),
            index_cache: HashMap::new(),
            pool,
        })
    }

    /// Materialize a context **inside a shared-plan registry** instead of
    /// over a private plan: registers `query` in `reg` (sharing every
    /// α-equivalent operator subtree with the queries already there),
    /// subscribes to its delta stream, and reads the skeleton off the
    /// registered view. Deletions the registry already committed are
    /// inherited, so the context starts on the current (deleted-from)
    /// database exactly like a late-joining subscriber.
    ///
    /// Commits go through [`DeletionContext::apply_delete_in`]; after
    /// *another* context (or the registry user directly) commits, call
    /// [`DeletionContext::sync_in`] to drain the pending deltas before the
    /// next solve.
    pub fn new_in_registry(
        reg: &mut PlanRegistry<WitnessesAnn>,
        query: &Query,
    ) -> Result<DeletionContext> {
        let id = reg.register(query)?;
        reg.subscribe(id);
        let sk = DeletionContext::build_skeleton(
            reg.query_schema(id).clone(),
            reg.iter_query(id).collect(),
            reg.pool(),
        );
        Ok(DeletionContext {
            query: Arc::new(query.clone()),
            db: reg.db().clone(),
            backend: PlanBackend::Registry(id),
            why: sk.why,
            tuples: sk.tuples,
            alive: sk.alive,
            index_of: sk.index_of,
            touch_of: sk.touch_of,
            touching: sk.touching,
            committed: reg.committed().clone(),
            index_cache: HashMap::new(),
            pool: reg.pool(),
        })
    }

    /// Flatten an annotated view into the context's skeleton: the
    /// why-provenance rows, the slot-indexed tuple list, and the inverted
    /// tid → slot touch index. The per-tuple witness clones and touch-set
    /// flattening shard on `pool`; assembly stays sequential in view
    /// order, so the skeleton is identical for every pool size.
    fn build_skeleton(
        schema: Schema,
        entries: Vec<(&Tuple, &WitnessesAnn)>,
        pool: ParPool,
    ) -> Skeleton {
        // Parallel: per-tuple witness clones and touch-set flattening. A
        // Tid clone is a name-refcount bump, and the interned name layout
        // makes the BTreeSet's Tid compares pointer-shortcut integer work
        // rather than byte walks.
        let prepared: Vec<(Tuple, Vec<Witness>, BTreeSet<Tid>)> =
            pool.par_ranges(entries.len(), 64, |range| {
                range
                    .map(|i| {
                        let (t, ann) = entries[i];
                        let touch: BTreeSet<Tid> = ann.0.iter().flatten().cloned().collect();
                        (t.clone(), ann.0.clone(), touch)
                    })
                    .collect()
            });
        drop(entries);
        // Sequential: skeleton and why-provenance assembly in view order.
        // `touching` is sized by the total touch count (an upper bound on
        // its distinct tids) so the build never rehashes mid-loop.
        let touch_total: usize = prepared.iter().map(|(_, _, touch)| touch.len()).sum();
        let mut tuples = Vec::with_capacity(prepared.len());
        let mut index_of = HashMap::with_capacity(prepared.len());
        let mut touch_of = Vec::with_capacity(prepared.len());
        let mut touching: HashMap<Tid, Vec<usize>> = HashMap::with_capacity(touch_total);
        let mut why_rows = Vec::with_capacity(prepared.len());
        for (i, (t, ws, touch)) in prepared.into_iter().enumerate() {
            tuples.push(t.clone());
            index_of.insert(t.clone(), i);
            for tid in &touch {
                touching.entry(tid.clone()).or_default().push(i);
            }
            touch_of.push(touch);
            why_rows.push((t, ws));
        }
        let why = Arc::new(WhyProvenance::from_parts(schema, why_rows));
        let alive = vec![true; tuples.len()];
        Skeleton {
            why,
            tuples,
            alive,
            index_of,
            touch_of,
            touching,
        }
    }

    /// The shared query.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// The shared database the context was built over. Applied deletions
    /// are **not** re-packed into it — they accumulate in
    /// [`DeletionContext::committed`], keeping every [`Tid`] stable.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared why-provenance of the current (maintained) view.
    pub fn why(&self) -> &Arc<WhyProvenance> {
        &self.why
    }

    /// The maintained annotated view itself, when the context owns it.
    /// `None` for a registry-backed context — the view lives in the shared
    /// [`PlanRegistry`] (read it there via
    /// [`DeletionContext::registry_query`]).
    pub fn plan(&self) -> Option<&MaterializedPlan<WitnessesAnn>> {
        match &self.backend {
            PlanBackend::Owned(plan) => Some(plan),
            PlanBackend::Registry(_) => None,
        }
    }

    /// The id this context's query is registered under in its shared
    /// [`PlanRegistry`]; `None` when the context owns its plan.
    pub fn registry_query(&self) -> Option<QueryId> {
        match self.backend {
            PlanBackend::Registry(id) => Some(id),
            PlanBackend::Owned(_) => None,
        }
    }

    /// Every source tuple deleted through this context so far.
    pub fn committed(&self) -> &BTreeSet<Tid> {
        &self.committed
    }

    /// The sharding policy this context was built with.
    pub fn pool(&self) -> ParPool {
        self.pool
    }

    /// Number of per-target indexes currently kept warm by the `*_turn`
    /// entry points (diagnostics and tests).
    pub fn cached_index_count(&self) -> usize {
        self.index_cache.len()
    }

    /// Whether `t` is in the current view.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.why.witnesses_of(t).is_some()
    }

    /// Number of tuples in the current view.
    pub fn view_len(&self) -> usize {
        self.why.len()
    }

    /// Commit a source deletion: push it through the maintained plan
    /// (`O(affected)`), then patch the why-provenance and the touch
    /// skeleton from the resulting [`ViewDelta`]. View tuples whose last
    /// witness died disappear; tuples whose basis changed (it can *grow* —
    /// a deletion may un-absorb a previously non-minimal witness) get
    /// their new basis and any new skeleton edges. Unknown or already
    /// deleted tids are no-ops. Returns the view delta.
    ///
    /// # Panics
    ///
    /// On a registry-backed context — the shared plan lives in the
    /// registry, so commits must go through
    /// [`DeletionContext::apply_delete_in`].
    pub fn apply_delete(&mut self, tids: &BTreeSet<Tid>) -> ViewDelta {
        let tid_vec: Vec<Tid> = tids.iter().cloned().collect();
        let PlanBackend::Owned(plan) = &mut self.backend else {
            panic!("apply_delete on a registry-backed context; use apply_delete_in");
        };
        let delta = plan.delete_sources(&tid_vec);
        let changed_ws: Vec<Option<Vec<Witness>>> = delta
            .changed
            .iter()
            .map(|t| {
                Some(
                    plan.annotation_of(t)
                        .expect("changed tuples survive the deletion")
                        .0
                        .clone(),
                )
            })
            .collect();
        self.patch_view(tids, &delta, changed_ws);
        delta
    }

    /// [`DeletionContext::apply_delete`] for a **registry-backed** context:
    /// push `tids` through the shared [`PlanRegistry`] (maintaining *every*
    /// registered query in one pass), then drain and patch this context's
    /// pending deltas — including the one this very commit produced.
    /// Returns this context's own view delta.
    ///
    /// # Panics
    ///
    /// On an owned-plan context — use [`DeletionContext::apply_delete`].
    pub fn apply_delete_in(
        &mut self,
        reg: &mut PlanRegistry<WitnessesAnn>,
        tids: &BTreeSet<Tid>,
    ) -> ViewDelta {
        let id = self
            .registry_query()
            .expect("apply_delete_in on an owned-plan context; use apply_delete");
        let tid_vec: Vec<Tid> = tids.iter().cloned().collect();
        let mut own = ViewDelta::default();
        for (q, d) in reg.delete_sources(&tid_vec) {
            if q == id {
                own = d;
            }
        }
        // A no-op batch may not reach the outbox, but the registry still
        // records it for future registrations — mirror that here.
        self.committed.extend(tids.iter().cloned());
        self.sync_in(reg);
        own
    }

    /// Drain everything committed through the registry since this context
    /// last synced and patch the skeleton entry by entry, in commit order.
    /// Call after *another* context (or the registry user directly) pushed
    /// deletions; [`DeletionContext::apply_delete_in`] syncs implicitly.
    /// A no-op when nothing is pending.
    ///
    /// # Panics
    ///
    /// On an owned-plan context — there is no registry stream to drain.
    pub fn sync_in(&mut self, reg: &mut PlanRegistry<WitnessesAnn>) {
        let id = self
            .registry_query()
            .expect("sync_in on an owned-plan context; nothing to drain");
        for (tids, delta) in reg.drain_pending(id) {
            let tid_set: BTreeSet<Tid> = tids.into_iter().collect();
            // Bases are read at their *final* value: a tuple re-based by
            // this entry but removed by a later pending one reads `None`
            // and is skipped — the removal entry patches it out.
            let changed_ws: Vec<Option<Vec<Witness>>> = delta
                .changed
                .iter()
                .map(|t| reg.annotation_of(id, t).map(|a| a.0.clone()))
                .collect();
            self.patch_view(&tid_set, &delta, changed_ws);
        }
    }

    /// The backend-independent half of a commit: patch the why-provenance,
    /// liveness, and touch skeleton from one [`ViewDelta`], fold `tids`
    /// into [`DeletionContext::committed`], and carry the cached indexes
    /// across. `changed_ws` holds the post-deletion witness basis for each
    /// entry of `delta.changed` in order (`None` = the tuple is already
    /// dead in the backend — a later pending delta removes it — so its
    /// basis patch is skipped).
    fn patch_view(
        &mut self,
        tids: &BTreeSet<Tid>,
        delta: &ViewDelta,
        changed_ws: Vec<Option<Vec<Witness>>>,
    ) {
        // Instances stamped earlier hold clones of the Arc; make_mut keeps
        // them on the old snapshot and patches ours in place when unique.
        let why = Arc::make_mut(&mut self.why);
        for t in &delta.removed {
            let i = self.index_of[t];
            self.alive[i] = false;
            why.remove_tuple(t);
        }
        for (t, ws) in delta.changed.iter().zip(changed_ws) {
            let Some(ws) = ws else { continue };
            let i = self.index_of[t];
            let touch: BTreeSet<Tid> = ws.iter().flatten().cloned().collect();
            for tid in touch.difference(&self.touch_of[i]) {
                self.touching.entry(tid.clone()).or_default().push(i);
            }
            self.touch_of[i] = touch;
            why.set_witnesses(t, ws);
        }
        self.committed.extend(tids.iter().cloned());
        self.patch_index_cache(delta, tids);
    }

    /// Carry the cached per-target indexes across a committed deletion:
    /// **patch in place** where the delta provably left the index's
    /// structure intact, evict otherwise (the next `*_turn` call
    /// re-stamps). The case analysis leans on one fact: a view tuple whose
    /// basis survives a deletion *unchanged* has no witness containing a
    /// deleted tid — so if the cached target itself is untouched, its
    /// support and witness sets are untouched, and the only in-index
    /// effect a removal can have is a frontier tuple dying outright
    /// ([`WitnessIndex::retire_tuple`]). Re-based (changed) tuples can
    /// enter, leave, or rewire the frontier, so any changed tuple that
    /// touches an index's support — or already sits in its frontier —
    /// evicts it.
    fn patch_index_cache(&mut self, delta: &ViewDelta, tids: &BTreeSet<Tid>) {
        if self.index_cache.is_empty() {
            return;
        }
        if delta.is_empty() {
            return; // the deletion touched nothing the view derives from
        }
        let touch_of = &self.touch_of;
        let index_of = &self.index_of;
        // The changed tuples' updated touch sets (just written above).
        let changed: Vec<(&Tuple, &BTreeSet<Tid>)> = delta
            .changed
            .iter()
            .map(|t| (t, &touch_of[index_of[t]]))
            .collect();
        self.index_cache.retain(|target, idx| {
            // The target itself was removed or re-based: support and
            // witnesses changed. (Both delta lists are sorted ascending.)
            if delta.removed.binary_search(target).is_ok()
                || delta.changed.binary_search(target).is_ok()
            {
                return false;
            }
            // Defensive: a committed tid inside the support implies the
            // target's basis changed (covered above, but cheap to check).
            if tids.iter().any(|tid| idx.slot_of(tid).is_some()) {
                return false;
            }
            // A re-based tuple touching the support may have entered or
            // rewired this index's frontier.
            for (t, touch) in &changed {
                if idx.in_frontier(t) || idx.support().iter().any(|tid| touch.contains(tid)) {
                    return false;
                }
            }
            // Removed tuples can only leave: retire them in place.
            for t in &delta.removed {
                idx.retire_tuple(t);
            }
            true
        });
    }

    /// Take `target`'s cached index (stamping a fresh one from the
    /// skeleton on a miss); pair with [`DeletionContext::cache_index`]
    /// after a solve leaves it clean.
    pub(crate) fn take_index(&mut self, target: &Tuple) -> Result<WitnessIndex> {
        if let Some(idx) = self.index_cache.remove(target) {
            debug_assert_eq!(idx.deleted_len(), 0, "cached indexes are clean");
            return Ok(idx);
        }
        let (_, idx) = self.instance_and_index(target)?;
        Ok(idx)
    }

    /// Return a clean index to the cache for the next turn. The cache is
    /// bounded at [`MAX_CACHED_INDEXES`] entries: once full, inserting a
    /// *new* target displaces an arbitrary resident entry, so the cache
    /// tracks the current working set instead of pinning the first
    /// [`MAX_CACHED_INDEXES`] targets forever (serving-loop commits free
    /// slots too — a deleted target's entry is evicted by the apply
    /// patch). Which entry is displaced never affects results: a miss
    /// only costs a re-stamp. A one-pass sweep over a huge view therefore
    /// cannot pin `O(view · frontier)` memory in the context.
    pub(crate) fn cache_index(&mut self, target: &Tuple, idx: WitnessIndex) {
        debug_assert_eq!(idx.deleted_len(), 0, "only clean indexes are cached");
        if self.index_cache.len() >= MAX_CACHED_INDEXES && !self.index_cache.contains_key(target) {
            if let Some(victim) = self.index_cache.keys().next().cloned() {
                self.index_cache.remove(&victim);
            }
        }
        self.index_cache.insert(target.clone(), idx);
    }

    /// One turn of the serving loop: commit `deletions`, then re-solve the
    /// minimum-view-side-effect problem for `target` against the patched
    /// view. Returns `None` if `target` is no longer (or never was) in the
    /// view once the commit lands — there is nothing left to delete.
    pub fn resolve_after_delete(
        &mut self,
        deletions: &BTreeSet<Tid>,
        target: &Tuple,
        opts: &ExactOptions,
    ) -> Result<Option<Deletion>> {
        self.apply_delete(deletions);
        if !self.contains(target) {
            return Ok(None);
        }
        // The cached-index turn solver: repeat targets reuse (and the
        // apply above may have patched in place) their stamped index.
        self.min_view_side_effects_turn(target, opts).map(Some)
    }

    /// [`DeletionContext::resolve_after_delete`] for a registry-backed
    /// context: commit `deletions` through the shared registry (syncing in
    /// anything other contexts committed first), then re-solve `target`
    /// against the patched view. `None` once the commit removes `target`.
    pub fn resolve_after_delete_in(
        &mut self,
        reg: &mut PlanRegistry<WitnessesAnn>,
        deletions: &BTreeSet<Tid>,
        target: &Tuple,
        opts: &ExactOptions,
    ) -> Result<Option<Deletion>> {
        self.apply_delete_in(reg, deletions);
        if !self.contains(target) {
            return Ok(None);
        }
        self.min_view_side_effects_turn(target, opts).map(Some)
    }

    /// [`DeletionContext::resolve_after_delete`] for the **source**
    /// objective: commit `deletions`, then find a minimum source deletion
    /// for `target` against the patched view — through the maintained
    /// chain min-cut ([`DeletionContext::chain_min_source_turn`]) when the
    /// query is a chain join, the exact hitting-set turn otherwise. Both
    /// routes read the patched why-provenance and go through the cached
    /// per-target indexes.
    pub fn resolve_source_after_delete(
        &mut self,
        deletions: &BTreeSet<Tid>,
        target: &Tuple,
    ) -> Result<Option<Deletion>> {
        self.apply_delete(deletions);
        if !self.contains(target) {
            return Ok(None);
        }
        let sol = if dap_relalg::detect_chain_join(&self.query, &self.db.catalog()).is_some() {
            self.chain_min_source_turn(target)?
        } else {
            self.min_source_deletion_turn(target)?
        };
        Ok(Some(sol))
    }

    /// Stamp out the [`DeletionInstance`] for `target`, sharing the query,
    /// database, and why-provenance — no recomputation, no deep clones.
    /// Errors if `target` is not in the (current) view.
    pub fn for_target(&self, target: &Tuple) -> Result<DeletionInstance> {
        let target_witnesses = self
            .why
            .witnesses_of(target)
            .ok_or_else(|| CoreError::TargetNotInView {
                tuple: target.clone(),
            })?
            .to_vec();
        let support: BTreeSet<Tid> = target_witnesses.iter().flatten().cloned().collect();
        Ok(DeletionInstance {
            query: self.query.clone(),
            db: self.db.clone(),
            target: target.clone(),
            why: self.why.clone(),
            target_witnesses,
            support: support.into_iter().collect(),
            committed: self.committed.clone(),
        })
    }

    /// Build the frontier-restricted [`WitnessIndex`] for an instance
    /// stamped from this context, visiting only view tuples the skeleton
    /// says touch the support (identical to [`WitnessIndex::build`], built
    /// in `O(neighborhood)` instead of `O(|view|)`). Stale skeleton
    /// entries — dead tuples, or tuples whose patched basis no longer
    /// touches the tid — are filtered here and by the index build.
    pub fn index_for(&self, inst: &DeletionInstance) -> WitnessIndex {
        WitnessIndex::from_candidates(&self.why, inst, self.candidates_touching(&inst.support))
    }

    /// The alive view tuples with at least one witness touching `support`,
    /// read off the touch skeleton in view order — the candidate frontier
    /// shared by [`DeletionContext::index_for`] and the `dap_core::ilp`
    /// encoder. Stale skeleton entries (dead tuples) are filtered here;
    /// tuples whose patched basis no longer touches the tid are filtered
    /// by the consumers' witness scans.
    pub(crate) fn candidates_touching<'s>(
        &self,
        support: impl IntoIterator<Item = &'s Tid>,
    ) -> Vec<&Tuple> {
        let mut candidate_ids: Vec<usize> = support
            .into_iter()
            .filter_map(|tid| self.touching.get(tid))
            .flatten()
            .copied()
            .filter(|&i| self.alive[i])
            .collect();
        candidate_ids.sort_unstable();
        candidate_ids.dedup();
        candidate_ids.into_iter().map(|i| &self.tuples[i]).collect()
    }

    /// Instance and index for `target` in one call.
    pub fn instance_and_index(&self, target: &Tuple) -> Result<(DeletionInstance, WitnessIndex)> {
        let inst = self.for_target(target)?;
        let idx = self.index_for(&inst);
        Ok((inst, idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn for_target_matches_fresh_build_on_every_view_tuple() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let stamped = ctx.for_target(&t).unwrap();
            let fresh = DeletionInstance::build(&q, &db, &t).unwrap();
            assert_eq!(stamped.target_witnesses, fresh.target_witnesses, "{t}");
            assert_eq!(stamped.support, fresh.support, "{t}");
            assert_eq!(*stamped.why, *fresh.why, "{t}");
            assert_eq!(stamped.committed, fresh.committed, "{t}");
        }
    }

    #[test]
    fn for_target_rejects_missing_tuple() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        assert!(matches!(
            ctx.for_target(&tuple(["zz", "zz"])).unwrap_err(),
            CoreError::TargetNotInView { .. }
        ));
    }

    #[test]
    fn skeleton_index_equals_full_scan_index() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let inst = ctx.for_target(&t).unwrap();
            let mut via_skeleton = ctx.index_for(&inst);
            let mut via_scan = WitnessIndex::build(&inst);
            assert_eq!(via_skeleton.support(), via_scan.support());
            assert_eq!(via_skeleton.frontier_len(), via_scan.frontier_len());
            // Exercise both: every single-tid deletion agrees.
            for slot in 0..via_scan.support().len() {
                via_skeleton.insert_slot(slot);
                via_scan.insert_slot(slot);
                assert_eq!(
                    via_skeleton.side_effect_count(),
                    via_scan.side_effect_count()
                );
                assert_eq!(via_skeleton.side_effects(), via_scan.side_effects());
                assert_eq!(via_skeleton.deletes_target(), via_scan.deletes_target());
                via_skeleton.remove_slot(slot);
                via_scan.remove_slot(slot);
            }
        }
    }

    #[test]
    fn context_shares_one_why_across_targets() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        let a = ctx.for_target(&tuple(["bob", "report"])).unwrap();
        let b = ctx.for_target(&tuple(["bob", "main"])).unwrap();
        assert!(Arc::ptr_eq(&a.why, &b.why));
        assert!(Arc::ptr_eq(&a.query, &b.query));
        assert!(Arc::ptr_eq(&a.db, &b.db));
    }

    #[test]
    fn apply_delete_patches_view_and_skeleton() {
        let (q, db) = fixture();
        let mut ctx = DeletionContext::new(&q, &db).unwrap();
        assert_eq!(ctx.view_len(), 3);
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        let delta = ctx.apply_delete(&BTreeSet::from([dev.clone()]));
        // (bob, main) loses its only witness; (bob, report) drops to one.
        assert_eq!(delta.removed, vec![tuple(["bob", "main"])]);
        assert_eq!(delta.changed, vec![tuple(["bob", "report"])]);
        assert!(!ctx.contains(&tuple(["bob", "main"])));
        assert_eq!(ctx.view_len(), 2);
        assert_eq!(ctx.committed(), &BTreeSet::from([dev]));
        assert_eq!(
            ctx.why()
                .witnesses_of(&tuple(["bob", "report"]))
                .unwrap()
                .len(),
            1
        );
        // The patched context agrees with a context built from scratch on
        // the deleted-from database (view tuples are renumbering-free).
        let db2 = db.without(ctx.committed());
        let fresh = DeletionContext::new(&q, &db2).unwrap();
        assert_eq!(ctx.view_len(), fresh.view_len());
        for t in dap_relalg::eval(&q, &db2).unwrap().tuples {
            assert_eq!(
                ctx.why().witnesses_of(&t).unwrap().len(),
                fresh.why().witnesses_of(&t).unwrap().len(),
                "witness multiplicity for {t}"
            );
        }
    }

    #[test]
    fn registry_backed_context_matches_owned_context() {
        let (q, db) = fixture();
        let mut owned = DeletionContext::new(&q, &db).unwrap();
        let mut reg = PlanRegistry::<WitnessesAnn>::new(&db);
        let mut shared = DeletionContext::new_in_registry(&mut reg, &q).unwrap();
        assert!(shared.plan().is_none());
        assert!(shared.registry_query().is_some());
        assert_eq!(shared.view_len(), owned.view_len());
        for step in [
            BTreeSet::from([db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap()]),
            BTreeSet::from([db.tid_of("GroupFile", &tuple(["staff", "report"])).unwrap()]),
        ] {
            let d_owned = owned.apply_delete(&step);
            let d_shared = shared.apply_delete_in(&mut reg, &step);
            assert_eq!(d_owned.removed, d_shared.removed);
            assert_eq!(d_owned.changed, d_shared.changed);
            assert_eq!(owned.committed(), shared.committed());
            assert_eq!(owned.view_len(), shared.view_len());
            for t in owned.why().tuples() {
                assert_eq!(
                    owned.why().witnesses_of(t),
                    shared.why().witnesses_of(t),
                    "witness basis for {t}"
                );
            }
        }
    }

    #[test]
    fn sibling_contexts_stay_coherent_through_sync_in() {
        let (q, db) = fixture();
        let mut reg = PlanRegistry::<WitnessesAnn>::new(&db);
        let mut a = DeletionContext::new_in_registry(&mut reg, &q).unwrap();
        let mut b = DeletionContext::new_in_registry(&mut reg, &q).unwrap();
        // Sharing check: two registrations of the same query add no nodes.
        assert_eq!(reg.query_count(), 2);
        let dev = db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap();
        a.apply_delete_in(&mut reg, &BTreeSet::from([dev.clone()]));
        // `b` hasn't drained yet: still on the pre-delete snapshot.
        assert_eq!(b.view_len(), 3);
        b.sync_in(&mut reg);
        assert_eq!(b.view_len(), a.view_len());
        assert!(!b.contains(&tuple(["bob", "main"])));
        assert_eq!(b.committed(), &BTreeSet::from([dev]));
        // A context registered after the commit starts on the current view.
        let late = DeletionContext::new_in_registry(&mut reg, &q).unwrap();
        assert_eq!(late.view_len(), a.view_len());
        assert_eq!(late.committed(), a.committed());
    }

    #[test]
    fn resolve_after_delete_in_runs_on_the_shared_view() {
        let (q, db) = fixture();
        let mut reg = PlanRegistry::<WitnessesAnn>::new(&db);
        let mut ctx = DeletionContext::new_in_registry(&mut reg, &q).unwrap();
        let opts = ExactOptions::default();
        let first = ctx
            .min_view_side_effects(&tuple(["bob", "report"]), &opts)
            .unwrap();
        assert!(first.is_side_effect_free());
        let second = ctx
            .resolve_after_delete_in(&mut reg, &first.deletions, &tuple(["ann", "report"]), &opts)
            .unwrap()
            .expect("(ann, report) survives the first deletion");
        let inst = ctx.for_target(&tuple(["ann", "report"])).unwrap();
        assert!(inst.verify_against_reevaluation(&second.deletions).unwrap());
    }

    #[test]
    fn resolve_after_delete_runs_on_the_patched_view() {
        let (q, db) = fixture();
        let mut ctx = DeletionContext::new(&q, &db).unwrap();
        let opts = ExactOptions::default();
        let first = ctx
            .min_view_side_effects(&tuple(["bob", "report"]), &opts)
            .unwrap();
        assert!(first.is_side_effect_free());
        // Commit it, then ask for the next target in the same loop.
        let second = ctx
            .resolve_after_delete(&first.deletions, &tuple(["ann", "report"]), &opts)
            .unwrap()
            .expect("(ann, report) survives the first deletion");
        // Solutions verify against re-evaluation *with* the commit applied.
        let inst = ctx.for_target(&tuple(["ann", "report"])).unwrap();
        assert!(inst.verify_against_reevaluation(&second.deletions).unwrap());
        // A target the commit already removed resolves to None.
        let mut ctx2 = DeletionContext::new(&q, &db).unwrap();
        let both: BTreeSet<Tid> = [
            db.tid_of("UserGroup", &tuple(["bob", "staff"])).unwrap(),
            db.tid_of("UserGroup", &tuple(["bob", "dev"])).unwrap(),
        ]
        .into();
        let gone = ctx2
            .resolve_after_delete(&both, &tuple(["bob", "main"]), &opts)
            .unwrap();
        assert!(gone.is_none(), "side-effected target needs no deletion");
    }
}
