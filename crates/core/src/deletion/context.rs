//! One materialization of `(Q, S)` serving many deletion targets.
//!
//! Every deletion solver needs the why-provenance of the view — and before
//! this module each per-target entry point recomputed it from scratch.
//! [`DeletionContext`] evaluates the annotated query **once**, builds the
//! tuple-id → view-tuple *touch skeleton* of the witness hypergraph once,
//! and then stamps out per-target [`DeletionInstance`]s
//! ([`DeletionContext::for_target`]) and frontier-restricted
//! [`WitnessIndex`]es ([`DeletionContext::index_for`]) in time proportional
//! to the target's neighborhood, not the view.
//!
//! The solver entry points live here as methods
//! ([`DeletionContext::min_view_side_effects`],
//! [`DeletionContext::side_effect_free`],
//! [`DeletionContext::min_source_deletion`],
//! [`DeletionContext::greedy_source_deletion`]); the free functions in
//! [`crate::deletion::view_side_effect`] and
//! [`crate::deletion::source_side_effect`] are now thin wrappers that build
//! a context for their single target.

use crate::deletion::index::WitnessIndex;
use crate::deletion::DeletionInstance;
use crate::error::{CoreError, Result};
use dap_provenance::{why_provenance, WhyProvenance};
use dap_relalg::{Database, Query, Tid, Tuple};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The shared substrate of all deletion problems over one `(Q, S)`: the
/// why-provenance, plus the inverted skeleton used to cut per-target
/// frontiers out of the hypergraph without rescanning the view.
#[derive(Clone, Debug)]
pub struct DeletionContext {
    query: Arc<Query>,
    db: Arc<Database>,
    why: Arc<WhyProvenance>,
    /// View tuples in why-provenance order (indexed by the skeleton).
    tuples: Vec<Tuple>,
    /// tuple id → indices (into `tuples`) of view tuples with a witness
    /// containing that id. The *index skeleton*: built once per `(Q, S)`.
    touching: HashMap<Tid, Vec<usize>>,
}

impl DeletionContext {
    /// Materialize the context; one annotated evaluation plus one pass over
    /// the witness lists.
    pub fn new(query: &Query, db: &Database) -> Result<DeletionContext> {
        DeletionContext::new_shared(Arc::new(query.clone()), Arc::new(db.clone()))
    }

    /// Like [`DeletionContext::new`], from shared handles (no deep clones).
    pub fn new_shared(query: Arc<Query>, db: Arc<Database>) -> Result<DeletionContext> {
        let why = Arc::new(why_provenance(&query, &db)?);
        let mut tuples = Vec::with_capacity(why.len());
        let mut touching: HashMap<Tid, Vec<usize>> = HashMap::new();
        for (i, (t, ws)) in why.iter().enumerate() {
            tuples.push(t.clone());
            let mut seen: BTreeSet<&Tid> = BTreeSet::new();
            for tid in ws.iter().flatten() {
                if seen.insert(tid) {
                    touching.entry(tid.clone()).or_default().push(i);
                }
            }
        }
        Ok(DeletionContext {
            query,
            db,
            why,
            tuples,
            touching,
        })
    }

    /// The shared query.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared why-provenance of the whole view.
    pub fn why(&self) -> &Arc<WhyProvenance> {
        &self.why
    }

    /// Stamp out the [`DeletionInstance`] for `target`, sharing the query,
    /// database, and why-provenance — no recomputation, no deep clones.
    /// Errors if `target` is not in the view.
    pub fn for_target(&self, target: &Tuple) -> Result<DeletionInstance> {
        let target_witnesses = self
            .why
            .witnesses_of(target)
            .ok_or_else(|| CoreError::TargetNotInView {
                tuple: target.clone(),
            })?
            .to_vec();
        let support: BTreeSet<Tid> = target_witnesses.iter().flatten().cloned().collect();
        Ok(DeletionInstance {
            query: self.query.clone(),
            db: self.db.clone(),
            target: target.clone(),
            why: self.why.clone(),
            target_witnesses,
            support: support.into_iter().collect(),
        })
    }

    /// Build the frontier-restricted [`WitnessIndex`] for an instance
    /// stamped from this context, visiting only view tuples the skeleton
    /// says touch the support (identical to [`WitnessIndex::build`], built
    /// in `O(neighborhood)` instead of `O(|view|)`).
    pub fn index_for(&self, inst: &DeletionInstance) -> WitnessIndex {
        let mut candidate_ids: Vec<usize> = inst
            .support
            .iter()
            .filter_map(|tid| self.touching.get(tid))
            .flatten()
            .copied()
            .collect();
        candidate_ids.sort_unstable();
        candidate_ids.dedup();
        WitnessIndex::from_candidates(
            &self.why,
            inst,
            candidate_ids.iter().map(|&i| &self.tuples[i]),
        )
    }

    /// Instance and index for `target` in one call.
    pub fn instance_and_index(&self, target: &Tuple) -> Result<(DeletionInstance, WitnessIndex)> {
        let inst = self.for_target(target)?;
        let idx = self.index_for(&inst);
        Ok((inst, idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn fixture() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn for_target_matches_fresh_build_on_every_view_tuple() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let stamped = ctx.for_target(&t).unwrap();
            let fresh = DeletionInstance::build(&q, &db, &t).unwrap();
            assert_eq!(stamped.target_witnesses, fresh.target_witnesses, "{t}");
            assert_eq!(stamped.support, fresh.support, "{t}");
            assert_eq!(*stamped.why, *fresh.why, "{t}");
        }
    }

    #[test]
    fn for_target_rejects_missing_tuple() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        assert!(matches!(
            ctx.for_target(&tuple(["zz", "zz"])).unwrap_err(),
            CoreError::TargetNotInView { .. }
        ));
    }

    #[test]
    fn skeleton_index_equals_full_scan_index() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let inst = ctx.for_target(&t).unwrap();
            let mut via_skeleton = ctx.index_for(&inst);
            let mut via_scan = WitnessIndex::build(&inst);
            assert_eq!(via_skeleton.support(), via_scan.support());
            assert_eq!(via_skeleton.frontier_len(), via_scan.frontier_len());
            // Exercise both: every single-tid deletion agrees.
            for slot in 0..via_scan.support().len() {
                via_skeleton.insert_slot(slot);
                via_scan.insert_slot(slot);
                assert_eq!(
                    via_skeleton.side_effect_count(),
                    via_scan.side_effect_count()
                );
                assert_eq!(via_skeleton.side_effects(), via_scan.side_effects());
                assert_eq!(via_skeleton.deletes_target(), via_scan.deletes_target());
                via_skeleton.remove_slot(slot);
                via_scan.remove_slot(slot);
            }
        }
    }

    #[test]
    fn context_shares_one_why_across_targets() {
        let (q, db) = fixture();
        let ctx = DeletionContext::new(&q, &db).unwrap();
        let a = ctx.for_target(&tuple(["bob", "report"])).unwrap();
        let b = ctx.for_target(&tuple(["bob", "main"])).unwrap();
        assert!(Arc::ptr_eq(&a.why, &b.why));
        assert!(Arc::ptr_eq(&a.query, &b.query));
        assert!(Arc::ptr_eq(&a.db, &b.db));
    }
}
