//! The **source side-effect problem** (§2.2): delete `t` from the view with
//! as few source deletions as possible.
//!
//! Deleting `t` means hitting every minimal witness of `t`, so the minimum
//! source deletion *is* a minimum hitting set over the witness hypergraph:
//!
//! * [`min_source_deletion`] — exact, via `dap-setcover`'s branch-and-bound
//!   (set-cover-hard for PJ and JU queries, Thms 2.5 and 2.7);
//! * [`greedy_source_deletion`] — the `H_n`-approximation the paper points
//!   to, with the matching `Ω(log n)` lower bound \[12\];
//! * [`spu_source_deletion`] (Thm 2.8) and [`sj_source_deletion`] (Thm 2.9)
//!   — the polynomial classes.

use crate::deletion::index::WitnessIndex;
use crate::deletion::view_side_effect::spu_view_deletion;
#[cfg(test)]
use crate::deletion::DeletionInstance;
use crate::deletion::{Deletion, DeletionContext};
use crate::error::{CoreError, Result};
use dap_relalg::{Database, OpFootprint, Query, Tuple};
use dap_setcover::{exact_hitting_set, greedy_hitting_set, HittingSet};
use std::collections::BTreeSet;

/// Translate the target's witness hypergraph into a `dap-setcover` hitting
/// set instance, straight off the index: element `i` is support slot `i`,
/// and the index's target witness members are already the binary-search
/// translation [`crate::deletion::DeletionInstance::witness_member_slots`]
/// computes (same witness order, same slot space).
fn to_hitting_set(idx: &WitnessIndex) -> HittingSet {
    let sets: Vec<BTreeSet<usize>> = (0..idx.target_witness_count())
        .map(|i| idx.target_witness_members(i).iter().copied().collect())
        .collect();
    HittingSet::new(idx.support().len(), sets)
        .expect("witnesses are non-empty and indices in range")
}

/// Materialize a solver's chosen support slots as a [`Deletion`], reading
/// the side effects off the index counters instead of a fresh `why.iter()`
/// hypergraph rescan, then unwind — the index is left clean for reuse
/// (the serving loop caches it across turns).
fn solution_from_indices(idx: &mut WitnessIndex, chosen: BTreeSet<usize>) -> Deletion {
    for &slot in &chosen {
        idx.insert_slot(slot);
    }
    debug_assert!(idx.deletes_target());
    let sol = Deletion {
        deletions: idx.deleted_tids(),
        view_side_effects: idx.side_effects(),
    };
    for &slot in &chosen {
        idx.remove_slot(slot);
    }
    sol
}

/// Exact minimum source deletion on a prebuilt (clean) index: the
/// hitting-set search over the target's witnesses, with the side effects
/// read off the counters. Leaves the index clean.
pub fn min_source_deletion_on(idx: &mut WitnessIndex) -> Deletion {
    let chosen = exact_hitting_set(&to_hitting_set(idx));
    solution_from_indices(idx, chosen)
}

/// Exact minimum source deletion for any monotone SPJRU query. Worst-case
/// exponential — the problem is as hard as set cover for PJ/JU queries
/// (Thms 2.5, 2.7).
///
/// Solves one target; to solve many targets over the same `(Q, S)`, build a
/// [`DeletionContext`] once and call
/// [`DeletionContext::min_source_deletion`] per target.
pub fn min_source_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    DeletionContext::new(q, db)?.min_source_deletion(target)
}

/// Greedy `H_n`-approximate source deletion (the paper's §1 footnote 2: a
/// simple greedy achieves `O(log n)`, and nothing polynomial does better
/// unless `NP ⊆ DTIME(n^{log log n})` \[12\]).
pub fn greedy_source_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    DeletionContext::new(q, db)?.greedy_source_deletion(target)
}

impl DeletionContext {
    /// [`min_source_deletion`] against this context's shared provenance.
    pub fn min_source_deletion(&self, target: &Tuple) -> Result<Deletion> {
        let (_, mut idx) = self.instance_and_index(target)?;
        Ok(min_source_deletion_on(&mut idx))
    }

    /// [`DeletionContext::min_source_deletion`] for the serving loop:
    /// solves on the target's cached, in-place-patched [`WitnessIndex`]
    /// (see [`DeletionContext::min_view_side_effects_turn`] — same cache,
    /// other objective). Identical solutions to the uncached entry point.
    pub fn min_source_deletion_turn(&mut self, target: &Tuple) -> Result<Deletion> {
        let mut idx = self.take_index(target)?;
        let sol = min_source_deletion_on(&mut idx);
        self.cache_index(target, idx);
        Ok(sol)
    }

    /// [`greedy_source_deletion`] against this context's shared provenance.
    pub fn greedy_source_deletion(&self, target: &Tuple) -> Result<Deletion> {
        let (_, mut idx) = self.instance_and_index(target)?;
        let chosen = greedy_hitting_set(&to_hitting_set(&idx));
        Ok(solution_from_indices(&mut idx, chosen))
    }
}

/// Theorem 2.8: for SPU queries the deletion set is **unique** (delete every
/// source tuple producing `t`), so it is simultaneously the view-side and
/// source-side optimum. Linear time.
pub fn spu_source_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    // Identical solution to Theorem 2.3; delegate.
    spu_view_deletion(q, db, target)
}

/// Theorem 2.9: for SJ queries the single witness has one component per
/// joined relation — deleting **any one** component suffices, so the
/// minimum source deletion has size 1. Ties are broken toward the component
/// with the fewest view side effects (for free, since the paper leaves the
/// choice open).
pub fn sj_source_deletion(q: &Query, db: &Database, target: &Tuple) -> Result<Deletion> {
    let fp = OpFootprint::of(q);
    if fp.project || fp.union_ {
        return Err(CoreError::WrongClass {
            expected: "SJ (projection-free, union-free)",
            found: fp.letters(),
        });
    }
    // Thm 2.4's component scan already returns a size-1 deletion with the
    // best view-side tie-break.
    let sol = crate::deletion::view_side_effect::sj_view_deletion(q, db, target)?;
    debug_assert_eq!(sol.source_cost(), 1);
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_relalg::{parse_database, parse_query, tuple};

    fn usergroup() -> (Query, Database) {
        let db = parse_database(
            "relation UserGroup(user, grp) {
                 (ann, staff), (bob, staff), (bob, dev)
             }
             relation GroupFile(grp, file) {
                 (staff, report), (dev, main), (dev, report)
             }",
        )
        .unwrap();
        let q = parse_query("project(join(scan UserGroup, scan GroupFile), [user, file])").unwrap();
        (q, db)
    }

    #[test]
    fn exact_minimum_on_two_witness_target() {
        let (q, db) = usergroup();
        let t = tuple(["bob", "report"]);
        let sol = min_source_deletion(&q, &db, &t).unwrap();
        // Two witnesses share no tuple… except each contains a bob-row and a
        // report-row; the two witnesses are {UG(bob,staff), GF(staff,report)}
        // and {UG(bob,dev), GF(dev,report)} — disjoint, so minimum is 2.
        assert_eq!(sol.source_cost(), 2);
        let inst = DeletionInstance::build(&q, &db, &t).unwrap();
        assert!(inst.deletes_target(&sol.deletions));
        assert!(inst.verify_against_reevaluation(&sol.deletions).unwrap());
    }

    #[test]
    fn exact_minimum_uses_shared_tuple() {
        // One middle tuple shared by all witnesses → minimum is 1.
        let db = parse_database(
            "relation R1(A, B) { (a1, x), (a2, x), (a3, x) }
             relation R2(B, C) { (x, c) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [A, C])").unwrap();
        // Delete (a1, c): its only witness needs (a1,x) or (x,c); minimum 1.
        let sol = min_source_deletion(&q, &db, &tuple(["a1", "c"])).unwrap();
        assert_eq!(sol.source_cost(), 1);
    }

    #[test]
    fn greedy_is_valid_and_bounded() {
        let (q, db) = usergroup();
        for t in dap_relalg::eval(&q, &db).unwrap().tuples.clone() {
            let greedy = greedy_source_deletion(&q, &db, &t).unwrap();
            let exact = min_source_deletion(&q, &db, &t).unwrap();
            let inst = DeletionInstance::build(&q, &db, &t).unwrap();
            assert!(inst.deletes_target(&greedy.deletions));
            assert!(greedy.source_cost() >= exact.source_cost());
            // On these tiny instances greedy should be within H_2 ≈ 1.5×.
            assert!(greedy.source_cost() <= exact.source_cost() * 2);
        }
    }

    #[test]
    fn spu_source_equals_view_solution_and_is_unique() {
        let db = parse_database(
            "relation R(A, B) { (a1, b1), (a1, b2) }
             relation S(A, B) { (a1, b9) }",
        )
        .unwrap();
        let q = parse_query("union(project(scan R, [A]), project(scan S, [A]))").unwrap();
        let t = tuple(["a1"]);
        let sol = spu_source_deletion(&q, &db, &t).unwrap();
        // All three source tuples project to a1 → unique deletion of size 3.
        assert_eq!(sol.source_cost(), 3);
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(exact.deletions, sol.deletions, "Thm 2.8: unique solution");
    }

    #[test]
    fn sj_minimum_is_one_tuple() {
        let db = parse_database(
            "relation R(A, B) { (a1, k) }
             relation S(B, C) { (k, c1), (k, c2) }",
        )
        .unwrap();
        let q = parse_query("join(scan R, scan S)").unwrap();
        let t = tuple(["a1", "k", "c1"]);
        let sol = sj_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(sol.source_cost(), 1);
        // Tie-break: deleting (k,c1) has no side effects, deleting (a1,k)
        // would kill (a1,k,c2).
        assert!(sol.is_side_effect_free());
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(exact.source_cost(), 1);
    }

    #[test]
    fn sj_rejects_wrong_class() {
        let (q, db) = usergroup();
        assert!(matches!(
            sj_source_deletion(&q, &db, &tuple(["bob", "report"])),
            Err(CoreError::WrongClass { .. })
        ));
    }

    #[test]
    fn exact_beats_or_ties_greedy_on_adversarial_shape() {
        // A star: the middle tuple of R2 hits every witness; greedy should
        // also find it here, but sizes must satisfy exact ≤ greedy.
        let db = parse_database(
            "relation R1(A, B) { (a1, x), (a2, x), (a3, x), (a4, x) }
             relation R2(B, C) { (x, c) }",
        )
        .unwrap();
        let q = parse_query("project(join(scan R1, scan R2), [C])").unwrap();
        let t = tuple(["c"]);
        let exact = min_source_deletion(&q, &db, &t).unwrap();
        let greedy = greedy_source_deletion(&q, &db, &t).unwrap();
        assert_eq!(exact.source_cost(), 1, "delete (x, c)");
        assert!(greedy.source_cost() >= exact.source_cost());
    }

    #[test]
    fn missing_target_errors() {
        let (q, db) = usergroup();
        assert!(matches!(
            min_source_deletion(&q, &db, &tuple(["zz", "zz"])),
            Err(CoreError::TargetNotInView { .. })
        ));
        assert!(matches!(
            greedy_source_deletion(&q, &db, &tuple(["zz", "zz"])),
            Err(CoreError::TargetNotInView { .. })
        ));
    }
}
