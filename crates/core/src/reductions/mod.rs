//! Executable hardness reductions — the constructions inside the paper's
//! NP-hardness proofs, as runnable code.
//!
//! Each module builds the exact database + query + target of one theorem,
//! and provides `encode` (witness of the source problem → solution of the
//! reduced instance) and `decode` (solution → witness) so the equivalences
//! the proofs claim become *testable*:
//!
//! | module | theorem | reduction |
//! |--------|---------|-----------|
//! | [`thm2_1`] | Thm 2.1 | monotone 3SAT → side-effect-free deletion, PJ queries |
//! | [`thm2_2`] | Thm 2.2 | monotone 3SAT → side-effect-free deletion, JU queries |
//! | [`thm2_5`] | Thm 2.5 | hitting set → minimum source deletion, PJ queries |
//! | [`thm2_7`] | Thm 2.7 | hitting set → minimum source deletion, JU queries (with renaming) |
//! | [`thm3_2`] | Thm 3.2 | 3SAT → side-effect-free annotation, PJ queries |
//!
//! The round-trip tests (here and in `/tests`) check both directions of each
//! equivalence against the independent `dap-sat` / `dap-setcover` oracles.

pub mod thm2_1;
pub mod thm2_2;
pub mod thm2_5;
pub mod thm2_7;
pub mod thm3_2;

use dap_relalg::{Database, Query, Tuple};

/// A reduced deletion-problem instance: delete `target` from `query(db)`.
#[derive(Clone, Debug)]
pub struct ReducedInstance {
    /// The constructed source database.
    pub db: Database,
    /// The constructed query.
    pub query: Query,
    /// The view tuple to delete (or whose location to annotate).
    pub target: Tuple,
}

/// Shorthand used by the construction code: the string value `x{i+1}` for
/// 0-based variable index `i` (the paper's 1-based `x_1, x_2, …`).
pub(crate) fn var_value(i: usize) -> String {
    format!("x{}", i + 1)
}

/// Shorthand: the string value `c{i+1}` for 0-based clause/set index `i`.
pub(crate) fn clause_value(i: usize) -> String {
    format!("c{}", i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_names_are_one_based() {
        assert_eq!(var_value(0), "x1");
        assert_eq!(var_value(4), "x5");
        assert_eq!(clause_value(2), "c3");
    }
}
