//! Theorem 3.2 — 3SAT ≤ₚ side-effect-free annotation for PJ queries.
//!
//! Per clause `C_i` over variables `(v1, v2, v3)`: a relation
//! `R_i(C_i, X_{v1}, X_{v2}, X_{v3})` holding the **seven** assignments
//! satisfying the clause (values `T`/`F`) plus a dummy row `(c_i, d, d, d)`;
//! the last relation also holds `(c'_m, d, d, d)`. The query is
//! `Π_{C_1..C_m}(R_1 ⋈ … ⋈ R_m)` — variables shared between clauses become
//! shared `X_v` attributes, so the natural join enforces consistency. The
//! view has two tuples, `(c_1,…,c_m)` and `(c_1,…,c'_m)`; annotating
//! `((c_1,…,c_m), C_1)` side-effect-free is possible iff the formula is
//! satisfiable (annotating the dummy always also annotates the second
//! tuple).
//!
//! **Implementation note (not spelled out in the paper):** the equivalence
//! needs the formula's clause–variable graph to be *connected*; otherwise a
//! combination can mix real rows (for the component containing `C_1`) with
//! dummy rows (elsewhere, including the `c'_m` row) and annotate the second
//! tuple even under satisfiability. 3SAT restricted to connected formulas
//! is still NP-hard (connect components with bridge clauses), so the
//! dichotomy is unaffected; [`reduce`] rejects disconnected inputs.

use crate::reductions::{clause_value, ReducedInstance};
use dap_provenance::ViewLoc;
use dap_relalg::{Attr, Database, Query, Relation, Schema, Tid, Tuple, Value};
use dap_sat::Cnf;

/// The reduced instance of Theorem 3.2.
#[derive(Clone, Debug)]
pub struct Thm32 {
    /// The 3SAT formula being reduced.
    pub formula: Cnf,
    /// The reduced instance; `target` is the first view tuple
    /// `(c_1, …, c_m)`.
    pub instance: ReducedInstance,
    /// The location to annotate: `((c_1,…,c_m), C1)`.
    pub target_location: ViewLoc,
}

/// Relation name for clause `i`'s gadget.
pub fn clause_rel_name(clause: usize) -> String {
    format!("R{}", clause + 1)
}

/// Attribute name for clause `i`'s id column.
pub fn clause_attr(clause: usize) -> Attr {
    Attr::new(format!("C{}", clause + 1))
}

/// Attribute name for variable `v`'s shared column.
pub fn var_attr(var: usize) -> Attr {
    Attr::new(format!("X{}", var + 1))
}

/// Whether the clause–variable incidence graph of `f` is connected
/// (required for the reduction; see the module docs).
pub fn is_connected(f: &Cnf) -> bool {
    if f.clauses.len() <= 1 {
        return true;
    }
    // Union clauses sharing a variable via BFS over clause indices.
    let m = f.clauses.len();
    let mut visited = vec![false; m];
    let mut queue = vec![0usize];
    visited[0] = true;
    let mut seen = 1;
    while let Some(i) = queue.pop() {
        for (j, clause) in f.clauses.iter().enumerate() {
            if !visited[j]
                && f.clauses[i]
                    .lits
                    .iter()
                    .any(|a| clause.lits.iter().any(|b| a.var == b.var))
            {
                visited[j] = true;
                seen += 1;
                queue.push(j);
            }
        }
    }
    seen == m
}

/// Build the Theorem 3.2 instance. Errors if a clause does not have exactly
/// three distinct variables, the formula is empty, or the clause–variable
/// graph is disconnected.
pub fn reduce(f: &Cnf) -> Result<Thm32, String> {
    let m = f.clauses.len();
    if m == 0 {
        return Err("formula has no clauses".to_string());
    }
    for (i, c) in f.clauses.iter().enumerate() {
        if c.lits.len() != 3 {
            return Err(format!("clause {i} does not have exactly 3 literals"));
        }
        let mut vars: Vec<usize> = c.lits.iter().map(|l| l.var).collect();
        vars.sort_unstable();
        vars.dedup();
        if vars.len() != 3 {
            return Err(format!("clause {i} repeats a variable"));
        }
    }
    if !is_connected(f) {
        return Err("clause-variable graph is disconnected (see module docs)".to_string());
    }

    let tf = |b: bool| Value::str(if b { "T" } else { "F" });
    let mut relations = Vec::with_capacity(m);
    for (i, clause) in f.clauses.iter().enumerate() {
        let vars: Vec<usize> = clause.lits.iter().map(|l| l.var).collect();
        let mut attrs = vec![clause_attr(i)];
        attrs.extend(vars.iter().map(|&v| var_attr(v)));
        let schema = Schema::new(attrs).expect("distinct vars per clause");
        let mut tuples = Vec::with_capacity(9);
        // The seven satisfying assignments of the clause.
        for bits in 0u8..8 {
            let assign: Vec<bool> = (0..3).map(|k| bits & (1 << k) != 0).collect();
            let satisfied = clause
                .lits
                .iter()
                .zip(&assign)
                .any(|(lit, &val)| val == lit.positive);
            if satisfied {
                let mut vals = vec![Value::str(clause_value(i))];
                vals.extend(assign.iter().map(|&b| tf(b)));
                tuples.push(Tuple::new(vals));
            }
        }
        // The dummy row; the last relation gets the extra c'_m dummy.
        let mut dummy = vec![Value::str(clause_value(i))];
        dummy.extend(std::iter::repeat_n(Value::str("d"), 3));
        tuples.push(Tuple::new(dummy));
        if i + 1 == m {
            let mut prime = vec![Value::str(format!("cp{m}"))];
            prime.extend(std::iter::repeat_n(Value::str("d"), 3));
            tuples.push(Tuple::new(prime));
        }
        relations
            .push(Relation::new(clause_rel_name(i), schema, tuples).expect("consistent arity"));
    }
    let db = Database::from_relations(relations).expect("distinct names");
    let query = Query::join_all((0..m).map(|i| Query::scan(clause_rel_name(i))))
        .project((0..m).map(clause_attr));
    let target: Tuple = (0..m).map(|i| Value::str(clause_value(i))).collect();
    let target_location = ViewLoc::new(target.clone(), clause_attr(0));
    Ok(Thm32 {
        formula: f.clone(),
        instance: ReducedInstance { db, query, target },
        target_location,
    })
}

impl Thm32 {
    /// The `Tid` of the `R_1` assignment row matching `assignment`
    /// (restricted to clause 1's variables). `None` if the restriction does
    /// not satisfy clause 1.
    pub fn encode(&self, assignment: &[bool]) -> Option<Tid> {
        let clause = &self.formula.clauses[0];
        let tf = |b: bool| Value::str(if b { "T" } else { "F" });
        let mut vals = vec![Value::str(clause_value(0))];
        vals.extend(clause.lits.iter().map(|l| tf(assignment[l.var])));
        let row = Tuple::new(vals);
        self.instance.db.tid_of(&clause_rel_name(0), &row)
    }

    /// Whether `tid` refers to an assignment row (as opposed to a dummy).
    pub fn is_assignment_row(&self, tid: &Tid) -> bool {
        self.instance
            .db
            .tuple(tid)
            .is_some_and(|t| t.values().iter().all(|v| v.as_str() != Some("d")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::generic::{min_side_effect_placement, side_effect_free_placement};
    use dap_provenance::propagate;
    use dap_sat::{dpll, Clause, Lit};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `(x1 ∨ x2 ∨ ¬x3)(x3 ∨ ¬x4 ∨ x5)` — connected via x3.
    fn sat_formula() -> Cnf {
        Cnf::new(
            5,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1), Lit::neg(2)]),
                Clause::new([Lit::pos(2), Lit::neg(3), Lit::pos(4)]),
            ],
        )
    }

    /// An unsatisfiable connected 3-CNF: all eight sign patterns over
    /// {x1,x2,x3}.
    fn unsat_formula() -> Cnf {
        let lits = |a: bool, b: bool, c: bool| {
            Clause::new([
                Lit {
                    var: 0,
                    positive: a,
                },
                Lit {
                    var: 1,
                    positive: b,
                },
                Lit {
                    var: 2,
                    positive: c,
                },
            ])
        };
        let clauses = (0u8..8)
            .map(|bits| lits(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0))
            .collect();
        Cnf::new(3, clauses)
    }

    #[test]
    fn construction_shape() {
        let red = reduce(&sat_formula()).unwrap();
        let db = &red.instance.db;
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.get("R1").unwrap().len(), 8, "7 assignments + dummy");
        assert_eq!(db.get("R2").unwrap().len(), 9, "7 assignments + 2 dummies");
        // Two view tuples: (c1, c2) and (c1, cp2).
        let view = dap_relalg::eval(&red.instance.query, db).unwrap();
        assert_eq!(view.len(), 2);
        assert!(view.contains(&red.instance.target));
    }

    #[test]
    fn satisfiable_gives_side_effect_free_annotation() {
        let red = reduce(&sat_formula()).unwrap();
        let sol =
            side_effect_free_placement(&red.instance.query, &red.instance.db, &red.target_location)
                .unwrap();
        let sol = sol.expect("formula is satisfiable");
        assert!(
            red.is_assignment_row(&sol.source.tid),
            "must not be the dummy"
        );
    }

    #[test]
    fn unsatisfiable_forces_side_effects() {
        let red = reduce(&unsat_formula()).unwrap();
        assert!(!dpll::is_satisfiable(&red.formula));
        let best =
            min_side_effect_placement(&red.instance.query, &red.instance.db, &red.target_location)
                .unwrap();
        assert!(
            !best.is_side_effect_free(),
            "UNSAT ⇒ dummy is the only candidate"
        );
        assert_eq!(best.cost(), 1, "the second output tuple gets annotated");
    }

    #[test]
    fn encoding_a_model_is_side_effect_free() {
        let red = reduce(&sat_formula()).unwrap();
        let model = dpll::solve(&red.formula).expect("satisfiable");
        let tid = red.encode(&model).expect("model satisfies clause 1");
        let src = dap_provenance::SourceLoc::new(tid, clause_attr(0));
        let reached = propagate(&red.instance.query, &red.instance.db, &src).unwrap();
        assert!(reached.contains(&red.target_location));
        assert_eq!(reached.len(), 1, "only the target is annotated");
    }

    #[test]
    fn round_trip_on_random_connected_formulas() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..8 {
            // Chain-connected: clause i shares its first var with clause
            // i-1.
            let n = 6usize;
            let m = 3usize;
            let mut clauses = Vec::new();
            let mut prev_vars = vec![0usize, 1, 2];
            for i in 0..m {
                let shared = prev_vars[rng.gen_range(0..3usize)];
                let mut vars = vec![shared];
                while vars.len() < 3 {
                    let v = rng.gen_range(0..n);
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                let lits: Vec<Lit> = vars
                    .iter()
                    .map(|&v| Lit {
                        var: v,
                        positive: rng.gen_bool(0.5),
                    })
                    .collect();
                clauses.push(Clause::new(lits.clone()));
                prev_vars = vars;
                let _ = i;
            }
            let f = Cnf::new(n, clauses);
            let red = reduce(&f).expect("connected by construction");
            let sat = dpll::is_satisfiable(&f);
            let free = side_effect_free_placement(
                &red.instance.query,
                &red.instance.db,
                &red.target_location,
            )
            .unwrap();
            assert_eq!(sat, free.is_some(), "SAT ⟺ side-effect-free, formula {f}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        // Disconnected.
        let f = Cnf::new(
            6,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1), Lit::pos(2)]),
                Clause::new([Lit::pos(3), Lit::pos(4), Lit::pos(5)]),
            ],
        );
        assert!(reduce(&f).unwrap_err().contains("disconnected"));
        // Repeated variable.
        let f = Cnf::new(
            2,
            vec![Clause::new([Lit::pos(0), Lit::pos(0), Lit::pos(1)])],
        );
        assert!(reduce(&f).is_err());
        // Not 3 literals.
        let f = Cnf::new(2, vec![Clause::new([Lit::pos(0), Lit::pos(1)])]);
        assert!(reduce(&f).is_err());
        // Empty.
        assert!(reduce(&Cnf::new(0, vec![])).is_err());
    }

    #[test]
    fn corollary_3_1_witness_membership_is_exposed() {
        // Corollary 3.1: "is t' part of a witness for t" reduces to the same
        // structure — check the machinery answers it via provenance.
        let red = reduce(&sat_formula()).unwrap();
        let why = dap_provenance::why_provenance(&red.instance.query, &red.instance.db).unwrap();
        let witnesses = why.witnesses_of(&red.instance.target).unwrap();
        // Some witness uses only assignment rows iff satisfiable.
        let all_real = witnesses
            .iter()
            .any(|w| w.iter().all(|tid| red.is_assignment_row(tid)));
        assert!(
            all_real,
            "satisfiable formula has an all-assignment witness"
        );
    }
}
