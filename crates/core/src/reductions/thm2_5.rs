//! Theorem 2.5 — hitting set ≤ₚ (approximation-preserving) minimum source
//! deletion for PJ queries.
//!
//! Relations (Figure 3 of the paper):
//!
//! * `R0(S, A1, …, An)`: the characteristic vector of each set `S_i` —
//!   `(s_i, w_1, …, w_n)` with `w_j = x_j` if `x_j ∈ S_i`, else the dummy
//!   `d`;
//! * for each element `x_j`: `R_j(A_j, B_j, C)` with `n+1` tuples
//!   `(x_j, α_0, c), (d, α_1, c), …, (d, α_n, c)`.
//!
//! The query is `Π_C(R0 ⋈ R1 ⋈ … ⋈ Rn)` with the single output tuple `(c)`;
//! a set row generates `n^{n-|S_i|}` witnesses, and the cheapest way to kill
//! them all per set is deleting some `(x_p, α_0, c)` with `x_p ∈ S_i` —
//! a hitting set.

use crate::reductions::{var_value, ReducedInstance};
use dap_relalg::{Attr, Database, Query, Relation, Schema, Tid, Tuple, Value};
use dap_setcover::HittingSet;
use std::collections::BTreeSet;

/// The reduced instance of Theorem 2.5.
#[derive(Clone, Debug)]
pub struct Thm25 {
    /// The hitting-set instance being reduced.
    pub hitting_set: HittingSet,
    /// The reduced deletion instance.
    pub instance: ReducedInstance,
}

/// Relation name for the element gadget `R_{j+1}` of element `j`.
pub fn element_rel_name(element: usize) -> String {
    format!("R{}", element + 1)
}

/// Build the Theorem 2.5 instance for `hs`.
pub fn reduce(hs: &HittingSet) -> Thm25 {
    let n = hs.num_elements;
    // R0(S, A1..An): characteristic vectors.
    let mut r0_attrs: Vec<Attr> = vec![Attr::new("S")];
    r0_attrs.extend((0..n).map(|j| Attr::new(format!("A{}", j + 1))));
    let r0_schema = Schema::new(r0_attrs).expect("distinct attrs");
    let r0_tuples: Vec<Tuple> = hs
        .sets
        .iter()
        .enumerate()
        .map(|(i, set)| {
            let mut vals = Vec::with_capacity(n + 1);
            vals.push(Value::str(format!("s{}", i + 1)));
            vals.extend((0..n).map(|j| {
                if set.contains(&j) {
                    Value::str(var_value(j))
                } else {
                    Value::str("d")
                }
            }));
            Tuple::new(vals)
        })
        .collect();
    let mut relations = vec![Relation::new("R0", r0_schema, r0_tuples).expect("consistent arity")];
    // R_j(A_j, B_j, C): the element gadgets.
    for j in 0..n {
        let schema = Schema::new([
            Attr::new(format!("A{}", j + 1)),
            Attr::new(format!("B{}", j + 1)),
            Attr::new("C"),
        ])
        .expect("distinct attrs");
        let mut tuples = vec![Tuple::new([
            Value::str(var_value(j)),
            Value::str("alpha0"),
            Value::str("c"),
        ])];
        for k in 1..=n {
            tuples.push(Tuple::new([
                Value::str("d"),
                Value::str(format!("alpha{k}")),
                Value::str("c"),
            ]));
        }
        relations
            .push(Relation::new(element_rel_name(j), schema, tuples).expect("consistent arity"));
    }
    let db = Database::from_relations(relations).expect("distinct names");
    let query = Query::join_all(
        std::iter::once(Query::scan("R0")).chain((0..n).map(|j| Query::scan(element_rel_name(j)))),
    )
    .project(["C"]);
    let target = Tuple::new([Value::str("c")]);
    Thm25 {
        hitting_set: hs.clone(),
        instance: ReducedInstance { db, query, target },
    }
}

impl Thm25 {
    /// The `Tid` of the keyed gadget tuple `(x_p, α_0, c)` in `R_{p+1}`.
    pub fn alpha0_tid(&self, element: usize) -> Tid {
        self.instance
            .db
            .tid_of(
                &element_rel_name(element),
                &Tuple::new([
                    Value::str(var_value(element)),
                    Value::str("alpha0"),
                    Value::str("c"),
                ]),
            )
            .expect("gadget tuple exists")
    }

    /// Encode a hitting set as a deletion set: delete `(x_p, α_0, c)` for
    /// each chosen element `p`.
    pub fn encode(&self, hitting: &BTreeSet<usize>) -> BTreeSet<Tid> {
        hitting.iter().map(|&p| self.alpha0_tid(p)).collect()
    }

    /// Decode a deletion set into the chosen elements: `p ∈ H` iff
    /// `(x_p, α_0, c)` was deleted. (The paper's WLOG argument normalizes
    /// any optimal solution into this form.)
    pub fn decode(&self, deletions: &BTreeSet<Tid>) -> BTreeSet<usize> {
        (0..self.hitting_set.num_elements)
            .filter(|&p| deletions.contains(&self.alpha0_tid(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::source_side_effect::{greedy_source_deletion, min_source_deletion};
    use crate::deletion::DeletionInstance;
    use dap_setcover::{exact_hitting_set, random_hitting_set};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> HittingSet {
        HittingSet::new(
            3,
            vec![
                BTreeSet::from([0, 1]),
                BTreeSet::from([1, 2]),
                BTreeSet::from([0, 2]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_shapes_match_figure_3() {
        let hs = small_instance();
        let red = reduce(&hs);
        let db = &red.instance.db;
        assert_eq!(db.relation_count(), 4, "R0 plus one relation per element");
        let r0 = db.get("R0").unwrap();
        assert_eq!(r0.schema().arity(), 4, "S, A1..A3");
        assert_eq!(r0.len(), 3, "one row per set");
        for j in 0..3 {
            let rj = db.get(&element_rel_name(j)).unwrap();
            assert_eq!(rj.len(), 4, "n+1 tuples");
            assert_eq!(rj.schema().arity(), 3);
        }
        // The view is the single tuple (c).
        let view = dap_relalg::eval(&red.instance.query, db).unwrap();
        assert_eq!(view.len(), 1);
        assert!(view.contains(&red.instance.target));
    }

    #[test]
    fn encoded_hitting_set_deletes_target() {
        let hs = small_instance();
        let red = reduce(&hs);
        let optimal = exact_hitting_set(&hs);
        let deletions = red.encode(&optimal);
        let inst =
            DeletionInstance::build(&red.instance.query, &red.instance.db, &red.instance.target)
                .unwrap();
        assert!(inst.deletes_target(&deletions));
        assert_eq!(red.decode(&deletions), optimal);
    }

    #[test]
    fn minimum_source_deletion_equals_minimum_hitting_set() {
        let hs = small_instance();
        let red = reduce(&hs);
        let optimal_hs = exact_hitting_set(&hs).len();
        let sol = min_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
            .unwrap();
        assert_eq!(sol.source_cost(), optimal_hs, "optima transfer (Thm 2.5)");
    }

    #[test]
    fn equivalence_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(25);
        for _ in 0..6 {
            let hs = random_hitting_set(&mut rng, 4, 3, 2);
            let red = reduce(&hs);
            let optimal_hs = exact_hitting_set(&hs).len();
            let sol =
                min_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
                    .unwrap();
            assert_eq!(sol.source_cost(), optimal_hs, "instance {hs}");
            // Greedy is valid and within the harmonic bound of optimal.
            let greedy =
                greedy_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
                    .unwrap();
            assert!(greedy.source_cost() >= optimal_hs);
        }
    }
}
