//! Theorem 2.1 — monotone 3SAT ≤ₚ side-effect-free deletion for PJ queries.
//!
//! Two relations `R1(A,B)` and `R2(B,C)`:
//!
//! * one variable gadget per variable `x_i`: `(a, x_i) ∈ R1`,
//!   `(x_i, c) ∈ R2`;
//! * per **positive** clause `C_i = (x_{i1}+x_{i2}+x_{i3})`: tuples
//!   `(a_i, x_{i1..3}) ∈ R1` with a fresh `a_i`;
//! * per **negative** clause `C_j = (x̄_{j1}+x̄_{j2}+x̄_{j3})`: tuples
//!   `(x_{j1..3}, c_j) ∈ R2` with a fresh `c_j`.
//!
//! The query is `Π_{A,C}(R1 ⋈ R2)` and the target is `(a, c)`. Deleting
//! `(a, x_i)` reads "x_i := true", deleting `(x_i, c)` reads "x_i := false";
//! clause-tuples `(a_i, c)` / `(a, c_j)` survive iff the clause is
//! satisfied, so a side-effect-free deletion exists iff the formula is
//! satisfiable.
//!
//! (On the sign convention: the ACM postprint's text extraction lost the
//! overbars, but the survival argument — `(a_i, c)` lives iff some
//! `(x_{ik}, c)` survives, i.e. iff some `x_{ik}` is *true* — pins the `R1`
//! clause gadgets to positive clauses, matching Figure 1's data for
//! `(x̄1+x̄2+x̄3)(x2+x4+x5)(x̄4+x̄1+x̄3)`.)

use crate::reductions::{clause_value, var_value, ReducedInstance};
use dap_relalg::{schema, Database, Query, Relation, Tid, Tuple, Value};
use dap_sat::Monotone3Sat;
use std::collections::BTreeSet;

/// The reduced instance of Theorem 2.1, with the formula retained for
/// encode/decode.
#[derive(Clone, Debug)]
pub struct Thm21 {
    /// The monotone 3SAT formula being reduced.
    pub formula: Monotone3Sat,
    /// The reduced deletion instance.
    pub instance: ReducedInstance,
}

/// Build the Theorem 2.1 instance for `formula`.
pub fn reduce(formula: &Monotone3Sat) -> Thm21 {
    let n = formula.num_vars;
    let mut r1: Vec<Tuple> = Vec::with_capacity(n + 3 * formula.clauses.len());
    let mut r2: Vec<Tuple> = Vec::with_capacity(n + 3 * formula.clauses.len());
    // Variable gadgets.
    for i in 0..n {
        r1.push(Tuple::new([Value::str("a"), Value::str(var_value(i))]));
        r2.push(Tuple::new([Value::str(var_value(i)), Value::str("c")]));
    }
    // Clause gadgets: positive clauses into R1 (fresh a_i), negative into R2
    // (fresh c_j).
    for (idx, clause) in formula.clauses.iter().enumerate() {
        if clause.positive {
            let a_i = format!("a{}", idx + 1);
            for &v in &clause.vars {
                r1.push(Tuple::new([Value::str(&a_i), Value::str(var_value(v))]));
            }
        } else {
            let c_j = clause_value(idx);
            for &v in &clause.vars {
                r2.push(Tuple::new([Value::str(var_value(v)), Value::str(&c_j)]));
            }
        }
    }
    let db = Database::from_relations(vec![
        Relation::new("R1", schema(["A", "B"]), r1).expect("consistent arity"),
        Relation::new("R2", schema(["B", "C"]), r2).expect("consistent arity"),
    ])
    .expect("two distinct relations");
    let query = Query::scan("R1")
        .join(Query::scan("R2"))
        .project(["A", "C"]);
    let target = Tuple::new([Value::str("a"), Value::str("c")]);
    Thm21 {
        formula: formula.clone(),
        instance: ReducedInstance { db, query, target },
    }
}

impl Thm21 {
    /// The `Tid` of the variable gadget `(a, x_i)` in `R1`.
    pub fn r1_var_tid(&self, var: usize) -> Tid {
        self.instance
            .db
            .tid_of(
                "R1",
                &Tuple::new([Value::str("a"), Value::str(var_value(var))]),
            )
            .expect("variable gadget exists")
    }

    /// The `Tid` of the variable gadget `(x_i, c)` in `R2`.
    pub fn r2_var_tid(&self, var: usize) -> Tid {
        self.instance
            .db
            .tid_of(
                "R2",
                &Tuple::new([Value::str(var_value(var)), Value::str("c")]),
            )
            .expect("variable gadget exists")
    }

    /// Encode a truth assignment as a deletion set: `x_i = true` deletes
    /// `(a, x_i)`, `x_i = false` deletes `(x_i, c)`.
    pub fn encode(&self, assignment: &[bool]) -> BTreeSet<Tid> {
        assert_eq!(assignment.len(), self.formula.num_vars);
        assignment
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if v {
                    self.r1_var_tid(i)
                } else {
                    self.r2_var_tid(i)
                }
            })
            .collect()
    }

    /// Decode a deletion set back into an assignment: `x_i = true` iff
    /// `(a, x_i)` was deleted.
    pub fn decode(&self, deletions: &BTreeSet<Tid>) -> Vec<bool> {
        (0..self.formula.num_vars)
            .map(|i| deletions.contains(&self.r1_var_tid(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::view_side_effect::{side_effect_free, ExactOptions};
    use crate::deletion::DeletionInstance;
    use dap_sat::{dpll, random_monotone_3sat, random_satisfiable_monotone_3sat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_formula() -> Monotone3Sat {
        Monotone3Sat::parse("(!x1 + !x2 + !x3)(x2 + x4 + x5)(!x4 + !x1 + !x3)").unwrap()
    }

    #[test]
    fn construction_matches_figure_1_counts() {
        let red = reduce(&paper_formula());
        let db = &red.instance.db;
        // R1: 5 variable rows + 3 rows for the positive clause (a2).
        assert_eq!(db.get("R1").unwrap().len(), 8);
        // R2: 5 variable rows + 3+3 rows for the two negative clauses.
        assert_eq!(db.get("R2").unwrap().len(), 11);
        // View: (a,c), (a,c1), (a,c3), (a2,c), (a2,c1), (a2,c3).
        let view = dap_relalg::eval(&red.instance.query, db).unwrap();
        assert_eq!(view.len(), 6);
        assert!(view.contains(&red.instance.target));
    }

    #[test]
    fn satisfying_assignment_encodes_to_side_effect_free_deletion() {
        let red = reduce(&paper_formula());
        let model = dpll::solve(&red.formula.to_cnf()).expect("satisfiable");
        let deletions = red.encode(&model);
        let inst =
            DeletionInstance::build(&red.instance.query, &red.instance.db, &red.instance.target)
                .unwrap();
        assert!(inst.deletes_target(&deletions));
        assert!(inst.side_effects(&deletions).is_empty(), "no side effects");
    }

    #[test]
    fn solver_solution_decodes_to_satisfying_assignment() {
        let red = reduce(&paper_formula());
        let sol = side_effect_free(
            &red.instance.query,
            &red.instance.db,
            &red.instance.target,
            &ExactOptions::default(),
        )
        .unwrap()
        .expect("paper formula is satisfiable");
        let assignment = red.decode(&sol.deletions);
        assert!(
            red.formula.eval(&assignment),
            "decoded assignment satisfies the formula"
        );
    }

    #[test]
    fn unsatisfiable_formula_admits_no_side_effect_free_deletion() {
        // (x1+x1+x1)(!x1+!x1+!x1) is unsatisfiable.
        let f = Monotone3Sat::parse("(x1 + x1 + x1)(!x1 + !x1 + !x1)").unwrap();
        let red = reduce(&f);
        let sol = side_effect_free(
            &red.instance.query,
            &red.instance.db,
            &red.instance.target,
            &ExactOptions::default(),
        )
        .unwrap();
        assert!(sol.is_none());
    }

    #[test]
    fn round_trip_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(2002);
        for trial in 0..20 {
            let f = random_monotone_3sat(&mut rng, 5, 4 + trial % 5);
            let red = reduce(&f);
            let sat = dpll::is_satisfiable(&f.to_cnf());
            let sol = side_effect_free(
                &red.instance.query,
                &red.instance.db,
                &red.instance.target,
                &ExactOptions::default(),
            )
            .unwrap();
            assert_eq!(sat, sol.is_some(), "SAT ⟺ side-effect-free, formula {f}");
            if let Some(sol) = sol {
                assert!(red.formula.eval(&red.decode(&sol.deletions)));
            }
        }
    }

    #[test]
    fn planted_satisfiable_formulas_always_round_trip() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let (f, hidden) = random_satisfiable_monotone_3sat(&mut rng, 6, 8);
            let red = reduce(&f);
            let deletions = red.encode(&hidden);
            let inst = DeletionInstance::build(
                &red.instance.query,
                &red.instance.db,
                &red.instance.target,
            )
            .unwrap();
            assert!(inst.deletes_target(&deletions));
            assert!(inst.side_effects(&deletions).is_empty());
            // decode ∘ encode = identity.
            assert_eq!(red.decode(&deletions), hidden);
        }
    }
}
