//! Theorem 2.2 — monotone 3SAT ≤ₚ side-effect-free deletion for JU queries
//! (projection-free!).
//!
//! `2(m+n)` unary relations:
//!
//! * per variable `x_i`: `R_i(A1) = {T}` and `R'_i(A2) = {F}`;
//! * per **positive** clause `C_i`: `S_i(A2) = {c_i}`, with query branch
//!   `(R_{i1} ⋈ S_i) ∪ (R_{i2} ⋈ S_i) ∪ (R_{i3} ⋈ S_i)` producing `(T, c_i)`;
//! * per **negative** clause `C_j`: `S'_j(A1) = {c_j}`, with branches
//!   `(S'_j ⋈ R'_{j1}) ∪ …` producing `(c_j, F)`;
//! * per variable: the branch `R_i ⋈ R'_i`, producing `(T, F)`.
//!
//! The goal is deleting `(T, F)`: each variable branch forces deleting `T`
//! from `R_i` ("false") or `F` from `R'_i` ("true"); the clause tuples
//! survive iff their clauses are satisfied.

use crate::reductions::{clause_value, ReducedInstance};
use dap_relalg::{schema, Database, Query, Relation, Tid, Tuple, Value};
use dap_sat::Monotone3Sat;
use std::collections::BTreeSet;

/// The reduced instance of Theorem 2.2.
#[derive(Clone, Debug)]
pub struct Thm22 {
    /// The monotone 3SAT formula being reduced.
    pub formula: Monotone3Sat,
    /// The reduced deletion instance.
    pub instance: ReducedInstance,
}

/// Relation name for the variable gadget `R_i(A1) = {T}`.
pub fn r_name(var: usize) -> String {
    format!("R{}", var + 1)
}

/// Relation name for the negated variable gadget `R'_i(A2) = {F}`
/// (the paper's `R'`; rendered `RP` for "prime").
pub fn rp_name(var: usize) -> String {
    format!("RP{}", var + 1)
}

/// Relation name for the positive-clause gadget `S_i(A2) = {c_i}`.
pub fn s_name(clause: usize) -> String {
    format!("S{}", clause + 1)
}

/// Relation name for the negative-clause gadget `S'_j(A1) = {c_j}`.
pub fn sp_name(clause: usize) -> String {
    format!("SP{}", clause + 1)
}

/// Build the Theorem 2.2 instance for `formula`.
pub fn reduce(formula: &Monotone3Sat) -> Thm22 {
    let mut relations = Vec::new();
    for i in 0..formula.num_vars {
        relations.push(
            Relation::new(
                r_name(i),
                schema(["A1"]),
                vec![Tuple::new([Value::str("T")])],
            )
            .expect("unary tuple"),
        );
        relations.push(
            Relation::new(
                rp_name(i),
                schema(["A2"]),
                vec![Tuple::new([Value::str("F")])],
            )
            .expect("unary tuple"),
        );
    }
    let mut branches: Vec<Query> = Vec::new();
    for (idx, clause) in formula.clauses.iter().enumerate() {
        // The paper creates BOTH S_i(A2) and S'_i(A1) for every clause
        // ("there are two relations…"), using one or the other in the query
        // depending on the clause's sign — hence 2(m+n) relations total.
        relations.push(
            Relation::new(
                s_name(idx),
                schema(["A2"]),
                vec![Tuple::new([Value::str(clause_value(idx))])],
            )
            .expect("unary tuple"),
        );
        relations.push(
            Relation::new(
                sp_name(idx),
                schema(["A1"]),
                vec![Tuple::new([Value::str(clause_value(idx))])],
            )
            .expect("unary tuple"),
        );
        if clause.positive {
            for &v in &clause.vars {
                branches.push(Query::scan(r_name(v)).join(Query::scan(s_name(idx))));
            }
        } else {
            for &v in &clause.vars {
                // S' first so the branch schema reads (A1, A2).
                branches.push(Query::scan(sp_name(idx)).join(Query::scan(rp_name(v))));
            }
        }
    }
    for i in 0..formula.num_vars {
        branches.push(Query::scan(r_name(i)).join(Query::scan(rp_name(i))));
    }
    let db = Database::from_relations(relations).expect("distinct relation names");
    let query = Query::union_all(branches);
    let target = Tuple::new([Value::str("T"), Value::str("F")]);
    Thm22 {
        formula: formula.clone(),
        instance: ReducedInstance { db, query, target },
    }
}

impl Thm22 {
    /// The `Tid` of `T` in `R_i` (the only tuple).
    pub fn t_tid(&self, var: usize) -> Tid {
        Tid::new(r_name(var), 0)
    }

    /// The `Tid` of `F` in `R'_i` (the only tuple).
    pub fn f_tid(&self, var: usize) -> Tid {
        Tid::new(rp_name(var), 0)
    }

    /// Encode an assignment: `x_i = true` deletes `F` from `R'_i`,
    /// `x_i = false` deletes `T` from `R_i`.
    pub fn encode(&self, assignment: &[bool]) -> BTreeSet<Tid> {
        assert_eq!(assignment.len(), self.formula.num_vars);
        assignment
            .iter()
            .enumerate()
            .map(|(i, &v)| if v { self.f_tid(i) } else { self.t_tid(i) })
            .collect()
    }

    /// Decode a deletion set: `x_i = true` iff `T` **remains** in `R_i`
    /// (the paper's convention).
    pub fn decode(&self, deletions: &BTreeSet<Tid>) -> Vec<bool> {
        (0..self.formula.num_vars)
            .map(|i| !deletions.contains(&self.t_tid(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::view_side_effect::{side_effect_free, ExactOptions};
    use crate::deletion::DeletionInstance;
    use dap_relalg::tuple;
    use dap_sat::{dpll, random_monotone_3sat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_formula() -> Monotone3Sat {
        Monotone3Sat::parse("(!x1 + !x2 + !x3)(x2 + x4 + x5)(!x4 + !x1 + !x3)").unwrap()
    }

    #[test]
    fn construction_matches_figure_2() {
        let red = reduce(&paper_formula());
        let db = &red.instance.db;
        // 2(m+n) = 2(3+5) = 16 relations.
        assert_eq!(db.relation_count(), 16);
        // Output: m+1 distinct tuples (Figure 2's table).
        let view = dap_relalg::eval(&red.instance.query, db).unwrap();
        assert_eq!(view.len(), 4);
        assert!(view.contains(&tuple(["c1", "F"])));
        assert!(view.contains(&tuple(["T", "c2"])));
        assert!(view.contains(&tuple(["c3", "F"])));
        assert!(view.contains(&tuple(["T", "F"])));
        // The query is projection-free: a JU query.
        let fp = dap_relalg::OpFootprint::of(&red.instance.query);
        assert!(fp.join && fp.union_ && !fp.project && !fp.select);
    }

    #[test]
    fn satisfying_assignment_is_side_effect_free() {
        let red = reduce(&paper_formula());
        let model = dpll::solve(&red.formula.to_cnf()).expect("satisfiable");
        let deletions = red.encode(&model);
        let inst =
            DeletionInstance::build(&red.instance.query, &red.instance.db, &red.instance.target)
                .unwrap();
        assert!(inst.deletes_target(&deletions));
        assert!(inst.side_effects(&deletions).is_empty());
    }

    #[test]
    fn solver_round_trip_matches_dpll() {
        let mut rng = StdRng::seed_from_u64(22);
        for trial in 0..15 {
            let f = random_monotone_3sat(&mut rng, 4, 3 + trial % 4);
            let red = reduce(&f);
            let sat = dpll::is_satisfiable(&f.to_cnf());
            let sol = side_effect_free(
                &red.instance.query,
                &red.instance.db,
                &red.instance.target,
                &ExactOptions::default(),
            )
            .unwrap();
            assert_eq!(sat, sol.is_some(), "SAT ⟺ side-effect-free, formula {f}");
            if let Some(sol) = sol {
                let assignment = red.decode(&sol.deletions);
                assert!(
                    red.formula.eval(&assignment),
                    "decoded assignment satisfies {f}"
                );
            }
        }
    }

    #[test]
    fn unsat_formula_has_no_side_effect_free_deletion() {
        let f = Monotone3Sat::parse("(x1 + x1 + x1)(!x1 + !x1 + !x1)").unwrap();
        let red = reduce(&f);
        let sol = side_effect_free(
            &red.instance.query,
            &red.instance.db,
            &red.instance.target,
            &ExactOptions::default(),
        )
        .unwrap();
        assert!(sol.is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let red = reduce(&paper_formula());
        let assignment = vec![true, false, true, false, true];
        assert_eq!(red.decode(&red.encode(&assignment)), assignment);
    }
}
