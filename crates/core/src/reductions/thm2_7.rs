//! Theorem 2.7 — hitting set ≤ₚ minimum source deletion for JU queries
//! **with renaming** (the paper notes hardness without renaming is open).
//!
//! After padding the sets to a uniform size `k`: one unary relation
//! `R_i(A) = {(a)}` per element, and per set `S_i = {x_{i1}, …, x_{ik}}` the
//! branch
//!
//! ```text
//! Q_i = δ_{A→A1}(R_{i1}) ⋈ … ⋈ δ_{A→Ak}(R_{ik})
//! ```
//!
//! The view is the single tuple `(a, …, a)`; each branch is one witness, so
//! deleting the tuple is exactly hitting every set.

use crate::reductions::ReducedInstance;
use dap_relalg::{Database, Query, Relation, Tid, Tuple, Value};
use dap_setcover::HittingSet;
use std::collections::BTreeSet;

/// The reduced instance of Theorem 2.7.
#[derive(Clone, Debug)]
pub struct Thm27 {
    /// The (padded, `k`-uniform) hitting-set instance.
    pub hitting_set: HittingSet,
    /// The uniform set size after padding.
    pub k: usize,
    /// The reduced deletion instance.
    pub instance: ReducedInstance,
}

/// Relation name for element `i`'s gadget.
pub fn element_rel_name(element: usize) -> String {
    format!("R{}", element + 1)
}

/// Build the Theorem 2.7 instance, padding `hs` to uniform set size first
/// (the padding preserves the optimum; see
/// [`HittingSet::pad_to_uniform`]).
pub fn reduce(hs: &HittingSet) -> Thm27 {
    let k = hs.sets.iter().map(BTreeSet::len).max().unwrap_or(1);
    let padded = hs.pad_to_uniform(k);
    let relations: Vec<Relation> = (0..padded.num_elements)
        .map(|i| {
            Relation::new(
                element_rel_name(i),
                dap_relalg::schema(["A"]),
                vec![Tuple::new([Value::str("a")])],
            )
            .expect("unary tuple")
        })
        .collect();
    let branches: Vec<Query> = padded
        .sets
        .iter()
        .map(|set| {
            Query::join_all(set.iter().enumerate().map(|(pos, &elem)| {
                Query::scan(element_rel_name(elem))
                    .rename([("A".to_string(), format!("A{}", pos + 1))])
            }))
        })
        .collect();
    let db = Database::from_relations(relations).expect("distinct names");
    let query = Query::union_all(branches);
    let target = Tuple::new(vec![Value::str("a"); k]);
    Thm27 {
        hitting_set: padded,
        k,
        instance: ReducedInstance { db, query, target },
    }
}

impl Thm27 {
    /// The `Tid` of element `i`'s single tuple `(a)`.
    pub fn element_tid(&self, element: usize) -> Tid {
        Tid::new(element_rel_name(element), 0)
    }

    /// Encode a hitting set as a deletion set.
    pub fn encode(&self, hitting: &BTreeSet<usize>) -> BTreeSet<Tid> {
        hitting.iter().map(|&i| self.element_tid(i)).collect()
    }

    /// Decode a deletion set into chosen elements.
    pub fn decode(&self, deletions: &BTreeSet<Tid>) -> BTreeSet<usize> {
        (0..self.hitting_set.num_elements)
            .filter(|&i| deletions.contains(&self.element_tid(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deletion::source_side_effect::min_source_deletion;
    use crate::deletion::DeletionInstance;
    use dap_setcover::{exact_hitting_set, random_hitting_set};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> HittingSet {
        HittingSet::new(
            4,
            vec![
                BTreeSet::from([0, 1]),
                BTreeSet::from([1, 2, 3]),
                BTreeSet::from([0, 3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_shape() {
        let red = reduce(&small_instance());
        // Padding to k=3 adds fresh elements for the two 2-element sets.
        assert_eq!(red.k, 3);
        assert_eq!(red.hitting_set.num_elements, 6);
        assert_eq!(red.instance.db.relation_count(), 6);
        // The query uses join, union and rename — no projection.
        let fp = dap_relalg::OpFootprint::of(&red.instance.query);
        assert!(fp.join && fp.union_ && fp.rename && !fp.project);
        // View = single k-ary all-a tuple.
        let view = dap_relalg::eval(&red.instance.query, &red.instance.db).unwrap();
        assert_eq!(view.len(), 1);
        assert!(view.contains(&red.instance.target));
        assert_eq!(red.instance.target.arity(), 3);
    }

    #[test]
    fn optima_transfer_exactly() {
        let hs = small_instance();
        let red = reduce(&hs);
        let optimal = exact_hitting_set(&hs).len();
        // Padding preserves the optimum.
        assert_eq!(exact_hitting_set(&red.hitting_set).len(), optimal);
        let sol = min_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
            .unwrap();
        assert_eq!(sol.source_cost(), optimal);
        // Decode is a valid hitting set of the padded instance.
        let decoded = red.decode(&sol.deletions);
        assert!(red.hitting_set.is_hitting(&decoded));
    }

    #[test]
    fn encoded_hitting_set_deletes_the_tuple() {
        let hs = small_instance();
        let red = reduce(&hs);
        let optimal = exact_hitting_set(&red.hitting_set);
        let deletions = red.encode(&optimal);
        let inst =
            DeletionInstance::build(&red.instance.query, &red.instance.db, &red.instance.target)
                .unwrap();
        assert!(inst.deletes_target(&deletions));
        // The view has a single tuple, so no side effects are possible —
        // exactly why this reduction targets SOURCE minimality.
        assert!(inst.side_effects(&deletions).is_empty());
        assert_eq!(red.decode(&deletions), optimal);
    }

    #[test]
    fn equivalence_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(27);
        for _ in 0..8 {
            let hs = random_hitting_set(&mut rng, 6, 4, 3);
            let red = reduce(&hs);
            let optimal = exact_hitting_set(&hs).len();
            let sol =
                min_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
                    .unwrap();
            assert_eq!(sol.source_cost(), optimal, "instance {hs}");
        }
    }
}
