//! # dap-core — deletion propagation & annotation placement through views
//!
//! The primary contribution of Buneman, Khanna & Tan, *"On Propagation of
//! Deletions and Annotations Through Views"* (PODS 2002), implemented in
//! full:
//!
//! * **View side-effect deletion** (§2.1, Thms 2.1–2.4): delete a view
//!   tuple killing as few other view tuples as possible;
//! * **Source side-effect deletion** (§2.2, Thms 2.5–2.9): delete a view
//!   tuple with as few source deletions as possible, including the
//!   chain-join min-cut special case (Thm 2.6) and the greedy `H_n`
//!   approximation;
//! * **Annotation placement** (§3, Thms 3.2–3.4): place a source annotation
//!   reaching a given view location with minimum spread;
//! * **The dichotomy** ([`dichotomy`]): the paper's three complexity tables
//!   and a dispatcher routing each instance to the right algorithm;
//! * **The hardness reductions** ([`reductions`]): executable constructions
//!   of Thms 2.1, 2.2, 2.5, 2.7 and 3.2 with encode/decode/verify
//!   round-trips, and the paper's Figures 1–3 regenerated exactly
//!   ([`figures`]).
//!
//! ```
//! use dap_core::dichotomy::{delete_min_source, place_annotation};
//! use dap_provenance::ViewLoc;
//! use dap_relalg::{parse_database, parse_query, tuple};
//!
//! let db = parse_database(
//!     "relation UserGroup(user, grp) { (ann, staff), (bob, staff), (bob, dev) }
//!      relation GroupFile(grp, file) { (staff, report), (dev, main) }",
//! ).unwrap();
//! let q = parse_query(
//!     "project(join(scan UserGroup, scan GroupFile), [user, file])",
//! ).unwrap();
//!
//! let (deletion, _) = delete_min_source(&q, &db, &tuple(["bob", "report"])).unwrap();
//! assert_eq!(deletion.source_cost(), 1);
//!
//! let (placement, _) = place_annotation(
//!     &q, &db, &ViewLoc::new(tuple(["ann", "report"]), "user"),
//! ).unwrap();
//! assert!(placement.is_side_effect_free());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deletion;
pub mod dichotomy;
pub mod error;
pub mod figures;
pub mod ilp;
pub mod placement;
pub mod reductions;

/// The scoped-thread parallel runtime (re-exported from `dap-relalg`,
/// where the plan-construction hot path lives): [`ParPool`] and its
/// deterministic sharding helpers drive the batched deletion dispatchers
/// and the branch-and-bound fan-out in this crate.
pub use dap_relalg::{par, ParPool};
pub use deletion::{Deletion, DeletionContext, DeletionInstance, WitnessIndex};
pub use dichotomy::{
    complexity, delete_min_source, delete_min_source_apply_many, delete_min_source_many,
    delete_min_source_many_with, delete_min_view_side_effects,
    delete_min_view_side_effects_apply_many, delete_min_view_side_effects_many,
    delete_min_view_side_effects_many_with, format_paper_table, paper_table, place_annotation,
    place_annotations, place_annotations_with, Complexity, Problem, SolverKind,
};
pub use error::{CoreError, Result};
pub use ilp::{IlpObjective, IlpOptions, IlpRequest};
pub use placement::generic::PlacementIndex;
pub use placement::Placement;
