//! Measure the batched annotated-evaluation placement path against the
//! legacy per-candidate multipass path and emit `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release -p dap-bench --bin report_engine
//! ```
//!
//! The workload is the `engine_vs_multipass` shape at the default Table-3
//! sizes (|S| ≈ 50, 200, 800) with 12 candidate source locations per
//! target; the acceptance bar is a ≥3× speedup of the batched path,
//! asserted on the largest instance. Set `DAP_BENCH_NO_ASSERT=1` to make
//! the run report-only (CI does: a noisy shared runner must not fail the
//! build on a wall-clock ratio — the artifact still records it).
//!
//! The multipass baseline is a `legacy-oracles` item, so this binary needs
//! `--features legacy-oracles`; without it a stub explains how to rerun.

#[cfg(feature = "legacy-oracles")]
use dap_bench::{
    generic_placement_workload, median_time, render_speedup_json, speedup_ratio, SpeedupRow,
};
#[cfg(feature = "legacy-oracles")]
use dap_core::placement::generic::{
    min_side_effect_placement, multipass_min_side_effect_placement,
};
#[cfg(feature = "legacy-oracles")]
const SIZES: [(usize, usize, usize); 3] = [(2, 12, 2), (8, 12, 8), (33, 12, 33)];
#[cfg(feature = "legacy-oracles")]
const RUNS: usize = 9;

#[cfg(not(feature = "legacy-oracles"))]
fn main() {
    eprintln!(
        "report_engine compares against the feature-gated multipass baseline; rerun with:\n\
         cargo run --release -p dap-bench --features legacy-oracles --bin report_engine"
    );
    std::process::exit(2);
}

#[cfg(feature = "legacy-oracles")]
fn main() {
    println!("==============================================================");
    println!(" engine_vs_multipass — batched placement vs per-candidate path");
    println!("==============================================================\n");
    println!(
        "{:>8} {:>12} {:>16} {:>16} {:>10}",
        "|S|", "candidates", "multipass", "batched engine", "speedup"
    );

    let mut rows: Vec<SpeedupRow> = Vec::new();
    for (users, groups, files) in SIZES {
        let w = generic_placement_workload(users, groups, files);
        // Warm both paths once (page-in, allocator) before timing.
        multipass_min_side_effect_placement(&w.query, &w.db, &w.target).expect("solves");
        min_side_effect_placement(&w.query, &w.db, &w.target).expect("solves");
        let mut slow_sol = None;
        let slow = median_time(RUNS, || {
            slow_sol = Some(
                multipass_min_side_effect_placement(&w.query, &w.db, &w.target).expect("solves"),
            );
        });
        let mut fast_sol = None;
        let fast = median_time(RUNS, || {
            fast_sol = Some(min_side_effect_placement(&w.query, &w.db, &w.target).expect("solves"));
        });
        let (slow_sol, fast_sol) = (slow_sol.unwrap(), fast_sol.unwrap());
        assert_eq!(
            slow_sol.cost(),
            fast_sol.cost(),
            "paths must agree on the optimum"
        );
        let speedup = speedup_ratio(slow, fast);
        println!(
            "{:>8} {:>12} {:>16?} {:>16?} {:>9.1}x",
            w.db.tuple_count(),
            groups,
            slow,
            fast,
            speedup
        );
        rows.push((w.db.tuple_count(), groups, slow, fast, speedup));
    }

    let json = render_speedup_json(
        "engine_vs_multipass",
        ["tuples", "candidates", "multipass_ns", "engine_ns"],
        &rows,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");

    let largest = rows.last().expect("non-empty");
    if std::env::var_os("DAP_BENCH_NO_ASSERT").is_none() {
        assert!(
            largest.4 >= 3.0,
            "batched engine must be >=3x faster than multipass at the largest \
             Table-3 size (measured {:.1}x)",
            largest.4
        );
    }
    println!(
        "acceptance: batched engine is {:.1}x faster at |S|={} (bar: 3x)",
        largest.4, largest.0
    );
}
