//! Measure the scoped-thread parallel runtime against the sequential code
//! paths on the two sharded hot paths and emit `BENCH_parallel.json`:
//!
//! * **plan_build** — cold-start `MaterializedPlan::<WitnessesAnn>`
//!   construction (`build_with`), sequential pool vs the auto pool;
//! * **solve_many** — the batched view-deletion dispatcher
//!   (`delete_min_view_side_effects_many_with`) over a target list,
//!   sequential pool vs the auto pool (per-thread stamped indexes).
//!
//! ```text
//! cargo run --release -p dap-bench --bin report_parallel
//! ```
//!
//! Every row **asserts identical results** between the sequential and
//! parallel runs (the runtime's determinism contract), and also times a
//! one-thread pool (`par1_ns`) to confirm `DAP_THREADS=1` stays within
//! noise of the sequential entry point — it *is* the sequential code path.
//!
//! The acceptance bar (≥3× at the largest size for both phases) only
//! applies on hardware with ≥4 threads; the JSON records `hw_threads` so
//! a single-core runner produces an honest artifact instead of a fake
//! ratio. `DAP_BENCH_NO_ASSERT=1` makes the run report-only either way.

use dap_bench::{pj_multiwitness_workload, speedup_ratio};
use dap_core::dichotomy::delete_min_view_side_effects_many_with;
use dap_provenance::WitnessesAnn;
use dap_relalg::{eval, MaterializedPlan, ParPool, Tuple};
use std::time::{Duration, Instant};

/// `(users, groups, files)` triples for the plan-build rows: the join
/// materializes `users · groups · files` annotated pairs.
const BUILD_SIZES: [(usize, usize, usize); 3] = [(16, 6, 16), (24, 8, 24), (32, 8, 32)];
/// Sizes for the batched-solve rows (exact searches grow fast in
/// `groups`; targets stay moderate so the sequential baseline finishes).
const SOLVE_SIZES: [(usize, usize, usize); 3] = [(8, 4, 8), (12, 5, 12), (16, 6, 16)];
/// Targets per batched-solve row.
const TARGETS: usize = 16;
const RUNS: usize = 9;

/// One measured comparison row.
struct Row {
    phase: &'static str,
    size: usize,
    seq: Duration,
    par: Duration,
    par1: Duration,
    speedup: f64,
}

/// Median wall time of `runs` executions.
fn median<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn render_json(hw_threads: usize, par_threads: usize, rows: &[Row]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"hw_threads\": {hw_threads},\n  \
         \"par_threads\": {par_threads},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"phase\": \"{}\", \"size\": {}, \"seq_ns\": {}, \"par_ns\": {}, \
             \"par1_ns\": {}, \"speedup\": {:.2}, \"threads1_ratio\": {:.2}, \
             \"identical\": true}}{}\n",
            row.phase,
            row.size,
            row.seq.as_nanos(),
            row.par.as_nanos(),
            row.par1.as_nanos(),
            row.speedup,
            speedup_ratio(row.par1, row.seq),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let min_for = |phase: &str| {
        rows.iter()
            .filter(|r| r.phase == phase)
            .map(|r| r.speedup)
            .fold(f64::INFINITY, f64::min)
    };
    out.push_str(&format!(
        "  ],\n  \"min_speedup_plan_build\": {:.2},\n  \"min_speedup_solve_many\": {:.2}\n}}\n",
        min_for("plan_build"),
        min_for("solve_many")
    ));
    out
}

fn main() {
    let par = ParPool::auto();
    let seq = ParPool::sequential();
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("==============================================================");
    println!(" parallel_scaling — ParPool sharding vs the sequential paths");
    println!("==============================================================\n");
    println!(
        "hardware threads: {hw_threads}; parallel pool: {} threads\n",
        par.threads()
    );
    println!(
        "{:>12} {:>8} {:>14} {:>14} {:>14} {:>9}",
        "phase", "size", "sequential", "parallel", "threads=1", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();

    for (users, groups, files) in BUILD_SIZES {
        let w = pj_multiwitness_workload(users, groups, files);
        // Identical results first: same tuples, same witness bases.
        let s = MaterializedPlan::<WitnessesAnn>::build_with(&w.query, &w.db, seq)
            .expect("builds")
            .snapshot();
        let p = MaterializedPlan::<WitnessesAnn>::build_with(&w.query, &w.db, par)
            .expect("builds")
            .snapshot();
        assert_eq!(s.tuples(), p.tuples(), "parallel build diverged (tuples)");
        assert_eq!(
            s.annotations(),
            p.annotations(),
            "parallel build diverged (annotations)"
        );
        let time_pool = |pool: ParPool| {
            median(RUNS, || {
                let plan = MaterializedPlan::<WitnessesAnn>::build_with(&w.query, &w.db, pool)
                    .expect("builds");
                std::hint::black_box(plan.len());
            })
        };
        let (seq_t, par_t, par1_t) = (time_pool(seq), time_pool(par), time_pool(ParPool::new(1)));
        let size = users * groups * files;
        let speedup = speedup_ratio(seq_t, par_t);
        println!(
            "{:>12} {:>8} {:>14?} {:>14?} {:>14?} {:>8.2}x",
            "plan_build", size, seq_t, par_t, par1_t, speedup
        );
        rows.push(Row {
            phase: "plan_build",
            size,
            seq: seq_t,
            par: par_t,
            par1: par1_t,
            speedup,
        });
    }

    for (users, groups, files) in SOLVE_SIZES {
        let w = pj_multiwitness_workload(users, groups, files);
        let view = eval(&w.query, &w.db).expect("evaluates");
        let targets: Vec<Tuple> = view.tuples.iter().take(TARGETS).cloned().collect();
        let s =
            delete_min_view_side_effects_many_with(&w.query, &w.db, &targets, seq).expect("solves");
        let p =
            delete_min_view_side_effects_many_with(&w.query, &w.db, &targets, par).expect("solves");
        assert_eq!(s, p, "parallel batched solve diverged");
        let time_pool = |pool: ParPool| {
            median(RUNS, || {
                let sols = delete_min_view_side_effects_many_with(&w.query, &w.db, &targets, pool)
                    .expect("solves");
                std::hint::black_box(sols.len());
            })
        };
        let (seq_t, par_t, par1_t) = (time_pool(seq), time_pool(par), time_pool(ParPool::new(1)));
        let size = users * files;
        let speedup = speedup_ratio(seq_t, par_t);
        println!(
            "{:>12} {:>8} {:>14?} {:>14?} {:>14?} {:>8.2}x",
            "solve_many", size, seq_t, par_t, par1_t, speedup
        );
        rows.push(Row {
            phase: "solve_many",
            size,
            seq: seq_t,
            par: par_t,
            par1: par1_t,
            speedup,
        });
    }

    let json = render_json(hw_threads, par.threads(), &rows);
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");

    let assertions_on = std::env::var_os("DAP_BENCH_NO_ASSERT").is_none();
    // threads=1 must be the sequential path (within noise) everywhere.
    if assertions_on {
        for row in &rows {
            let ratio = speedup_ratio(row.par1, row.seq);
            assert!(
                (0.5..=2.0).contains(&ratio),
                "threads=1 should match the sequential path (phase {}, size {}: {ratio:.2}x); \
                 it is the same code path, so a large gap means a measurement problem",
                row.phase,
                row.size
            );
        }
    }
    if hw_threads < 4 {
        println!(
            "acceptance: skipped the >=3x bar — {hw_threads} hardware thread(s) available \
             (the bar applies at >=4); rows record the honest ratios"
        );
        return;
    }
    let largest_of = |phase: &str| {
        rows.iter()
            .rev()
            .find(|r| r.phase == phase)
            .expect("rows exist")
    };
    for phase in ["plan_build", "solve_many"] {
        let row = largest_of(phase);
        if assertions_on {
            assert!(
                row.speedup >= 3.0,
                "{phase} must be >=3x faster in parallel at the largest size \
                 (measured {:.2}x on {hw_threads} hardware threads)",
                row.speedup
            );
        }
        println!(
            "acceptance: {phase} parallel speedup {:.2}x at size {} (bar: 3x)",
            row.speedup, row.size
        );
    }
}
