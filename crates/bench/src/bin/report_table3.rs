//! Regenerate **Table 3** (§3.1, side-effect-free annotation): complexity
//! rows plus measured evidence — the PJ reduction's combined-complexity
//! blow-up, SJU/SPU polynomial scaling, and Corollary 3.1's witness series.
//!
//! ```text
//! cargo run --release -p dap-bench --bin report_table3
//! ```

use dap_bench::{median_time, sju_placement_workload, spu_placement_workload};
use dap_core::placement::generic::min_side_effect_placement;
use dap_core::placement::sju::sju_placement;
use dap_core::placement::spu::spu_placement;
use dap_core::reductions::thm3_2;
use dap_core::{format_paper_table, Problem};
use dap_provenance::why_provenance;
use dap_sat::{dpll, Clause, Cnf, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn connected_3cnf(seed: u64, n: usize, m: usize) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(m);
    let mut prev: Vec<usize> = (0..3).collect();
    for _ in 0..m {
        let mut vars = vec![prev[rng.gen_range(0..prev.len())]];
        while vars.len() < 3 {
            let v = rng.gen_range(0..n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        clauses.push(Clause::new(vars.iter().map(|&v| Lit {
            var: v,
            positive: rng.gen_bool(0.5),
        })));
        prev = vars;
    }
    Cnf::new(n, clauses)
}

fn main() {
    println!("==============================================================");
    println!(" Table 3 — side-effect-free annotation placement (paper §3.1)");
    println!("==============================================================\n");
    println!("{}", format_paper_table(Problem::AnnotationPlacement));

    println!("measured evidence (medians of 5 runs)\n");

    // --- NP-hard row: PJ via Theorem 3.2 -----------------------------------
    println!("Queries involving PJ — Thm 3.2 instances (connected 3SAT):");
    println!(
        "{:>8} {:>10} {:>14} {:>10}",
        "clauses", "|S|", "median time", "DPLL agree"
    );
    for m in [2usize, 3, 4, 5] {
        let f = connected_3cnf(20, 4 + m, m);
        let red = thm3_2::reduce(&f).expect("connected");
        let mut agree = true;
        let t = median_time(5, || {
            let best = min_side_effect_placement(
                &red.instance.query,
                &red.instance.db,
                &red.target_location,
            )
            .expect("solves");
            agree &= best.is_side_effect_free() == dpll::is_satisfiable(&f);
        });
        println!(
            "{:>8} {:>10} {:>14?} {:>10}",
            m,
            red.instance.db.tuple_count(),
            t,
            if agree { "yes" } else { "NO" }
        );
        assert!(agree, "Thm 3.2 must track satisfiability");
    }

    // --- P row: SJU via Theorem 3.4 -----------------------------------------
    println!("\nSJU — Thm 3.4 branch counting:");
    println!("{:>8} {:>14}", "|S|", "median time");
    for size in [50usize, 200, 800, 3200] {
        let w = sju_placement_workload(21, size);
        let t = median_time(5, || {
            let _ = sju_placement(&w.query, &w.db, &w.target).expect("solves");
        });
        println!("{:>8} {:>14?}", w.db.tuple_count(), t);
    }

    // --- P row: SPU via Theorem 3.3 -----------------------------------------
    println!("\nSPU — Thm 3.3 linear scan (always side-effect-free):");
    println!("{:>8} {:>14}", "|S|", "median time");
    for size in [200usize, 800, 3200, 12800] {
        let w = spu_placement_workload(22, size);
        let t = median_time(5, || {
            let sol = spu_placement(&w.query, &w.db, &w.target).expect("solves");
            assert!(sol.is_side_effect_free());
        });
        println!("{:>8} {:>14?}", w.db.tuple_count(), t);
    }

    // --- Corollary 3.1: why/where-provenance both blow up on PJ -------------
    println!("\nCorollary 3.1 — witness computation on the Thm 3.2 instances:");
    println!(
        "{:>8} {:>12} {:>14}",
        "clauses", "#witnesses", "median time"
    );
    for m in [2usize, 3, 4] {
        let f = connected_3cnf(23, 4 + m, m);
        let red = thm3_2::reduce(&f).expect("connected");
        let mut count = 0usize;
        let t = median_time(5, || {
            let why = why_provenance(&red.instance.query, &red.instance.db).expect("computes");
            count = why.total_witnesses();
        });
        println!("{:>8} {:>12} {:>14?}", m, count, t);
    }

    println!("\nshape check: the PJ row's time and witness counts grow exponentially");
    println!("with the number of clause relations (combined complexity); SJU and SPU");
    println!("stay polynomial in |S| — and JU, NP-hard for deletion, is now in P.");
}
