//! Regenerate **Table 2** (§2.2, minimum source deletion): complexity rows,
//! measured runtimes, greedy-vs-exact approximation ratios (the `H_n` story)
//! and the Theorem 2.6 chain-join min-cut special case.
//!
//! ```text
//! cargo run --release -p dap-bench --bin report_table2
//! ```

use dap_bench::{chain_workload, median_time, sj_workload, spu_workload};
use dap_core::deletion::chain::chain_min_source_deletion;
use dap_core::deletion::source_side_effect::{
    greedy_source_deletion, min_source_deletion, sj_source_deletion, spu_source_deletion,
};
use dap_core::reductions::{thm2_5, thm2_7};
use dap_core::{format_paper_table, Problem};
use dap_setcover::{exact_hitting_set, harmonic, random_hitting_set};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("==============================================================");
    println!(" Table 2 — finding the minimum source deletions (paper §2.2)");
    println!("==============================================================\n");
    println!("{}", format_paper_table(Problem::SourceSideEffect));

    println!("measured evidence (medians of 5 runs)\n");

    // --- PJ via Theorem 2.5 --------------------------------------------------
    println!("Queries involving PJ — Thm 2.5 instances (hitting set, k = 2):");
    println!(
        "{:>6} {:>8} {:>14} {:>16}",
        "n", "|S|", "median time", "optimum = HS opt"
    );
    for n in [3usize, 4, 5] {
        let mut rng = StdRng::seed_from_u64(10);
        let hs = random_hitting_set(&mut rng, n, n, 2);
        let red = thm2_5::reduce(&hs);
        let expected = exact_hitting_set(&hs).len();
        let mut got = usize::MAX;
        let t = median_time(5, || {
            got = min_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
                .expect("solves")
                .source_cost();
        });
        println!(
            "{:>6} {:>8} {:>14?} {:>16}",
            n,
            red.instance.db.tuple_count(),
            t,
            if got == expected { "yes" } else { "NO" }
        );
        assert_eq!(got, expected);
    }

    // --- JU via Theorem 2.7: exact vs greedy ratio --------------------------
    println!("\nQueries involving JU — Thm 2.7 instances (hitting set, k = 3):");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "n", "m", "exact time", "greedy time", "ratio", "≤ H_3?"
    );
    let h3 = harmonic(3);
    for n in [8usize, 12, 16, 20] {
        let mut rng = StdRng::seed_from_u64(11);
        let hs = random_hitting_set(&mut rng, n, n, 3);
        let red = thm2_7::reduce(&hs);
        let mut exact_cost = 0usize;
        let te = median_time(5, || {
            exact_cost =
                min_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
                    .expect("solves")
                    .source_cost();
        });
        let mut greedy_cost = 0usize;
        let tg = median_time(5, || {
            greedy_cost =
                greedy_source_deletion(&red.instance.query, &red.instance.db, &red.instance.target)
                    .expect("solves")
                    .source_cost();
        });
        let ratio = greedy_cost as f64 / exact_cost as f64;
        println!(
            "{:>6} {:>8} {:>12?} {:>12?} {:>8.3} {:>8}",
            n,
            hs.sets.len(),
            te,
            tg,
            ratio,
            if ratio <= h3 + 1e-9 { "yes" } else { "NO" }
        );
        assert!(ratio <= h3 + 1e-9, "greedy must respect its H_k bound");
    }

    // --- Theorem 2.6: chain joins are polynomial via min-cut ----------------
    println!("\nChain joins (Thm 2.6) — min-cut vs exact hypergraph, same optimum:");
    println!(
        "{:>10} {:>8} {:>14} {:>16} {:>8}",
        "k × width", "|S|", "min-cut time", "hypergraph time", "equal?"
    );
    for (layers, width) in [(3usize, 6usize), (4, 6), (5, 6), (4, 10)] {
        let w = chain_workload(12, layers, width);
        let mut cut_cost = 0usize;
        let tc = median_time(5, || {
            cut_cost = chain_min_source_deletion(&w.query, &w.db, &w.target)
                .expect("chain")
                .source_cost();
        });
        let mut hyper_cost = 0usize;
        let th = median_time(5, || {
            hyper_cost = min_source_deletion(&w.query, &w.db, &w.target)
                .expect("solves")
                .source_cost();
        });
        println!(
            "{:>10} {:>8} {:>14?} {:>16?} {:>8}",
            format!("{layers}×{width}"),
            w.db.tuple_count(),
            tc,
            th,
            if cut_cost == hyper_cost { "yes" } else { "NO" }
        );
        assert_eq!(cut_cost, hyper_cost);
    }

    // --- P rows --------------------------------------------------------------
    println!("\nSPU — Thm 2.8 unique deletion:");
    println!("{:>8} {:>14}", "|S|", "median time");
    for size in [200usize, 800, 3200, 12800] {
        let w = spu_workload(13, size);
        let t = median_time(5, || {
            let _ = spu_source_deletion(&w.query, &w.db, &w.target).expect("solves");
        });
        println!("{:>8} {:>14?}", w.db.tuple_count(), t);
    }
    println!("\nSJ — Thm 2.9 single-component deletion:");
    println!("{:>8} {:>14}", "|S|", "median time");
    for size in [100usize, 400, 1600, 6400] {
        let w = sj_workload(14, size);
        let t = median_time(5, || {
            let sol = sj_source_deletion(&w.query, &w.db, &w.target).expect("solves");
            assert_eq!(sol.source_cost(), 1);
        });
        println!("{:>8} {:>14?}", w.db.tuple_count(), t);
    }

    println!("\nshape check: exact PJ/JU rows trend exponentially; greedy stays");
    println!("polynomial within its H_k ratio; chains and SPU/SJ are polynomial.");
}
